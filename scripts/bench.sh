#!/usr/bin/env bash
# Mint a committed perf baseline (BENCH_<n>.json) — docs/BENCHMARKS.md.
#
#   scripts/bench.sh [OUT.json] [--no-compare] [--no-ledger]
#
# Runs the full suite in committed mode (release build, long windows),
# then — release discipline — hard-fails if the fresh numbers regress
# against the latest committed BENCH_*.json before replacing it. Pass
# --no-compare when minting on a different machine than the previous
# baseline (cross-host medians are not comparable; the comparator
# would warn about that anyway). Each minting run is also appended to
# the durable run ledger (.poat/ledger.poatlgr) so the perf trajectory
# is queryable with `repro report` and `bench-compare --ledger`
# (docs/OBSERVABILITY.md); --no-ledger skips that.
set -euo pipefail
cd "$(dirname "$0")/.."

out=""
do_compare=1
ledger=".poat/ledger.poatlgr"
for a in "$@"; do
  case "$a" in
    --no-compare) do_compare=0 ;;
    --no-ledger) ledger="" ;;
    -h|--help) sed -n '2,15p' "$0"; exit 0 ;;
    *) out="$a" ;;
  esac
done

# shellcheck disable=SC2012
latest="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)"
if [[ -z "$out" ]]; then
  # Default: the next number in the BENCH_<n>.json sequence, so the
  # committed trajectory accumulates instead of being overwritten.
  if [[ -n "$latest" ]]; then
    n="${latest#BENCH_}"
    n="${n%.json}"
    out="BENCH_$((n + 1)).json"
  else
    out="BENCH_1.json"
  fi
fi

echo "==> cargo build --release -p poat-bench (offline)"
cargo build --release -p poat-bench --locked --offline

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "==> bench-run --mode committed"
if [[ -n "$ledger" ]]; then
  ./target/release/bench-run --mode committed --out "$tmp" --ledger "$ledger"
else
  ./target/release/bench-run --mode committed --out "$tmp"
fi

if [[ "$do_compare" == 1 && -n "$latest" ]]; then
  echo "==> bench-compare $latest (hard-fail on regression)"
  ./target/release/bench-compare "$latest" "$tmp"
fi

mv "$tmp" "$out"
trap - EXIT
echo "==> baseline written to $out — commit it with the change it certifies"

#!/usr/bin/env bash
# Tier-1 gate: build, test, docs — fully offline.
#
# The workspace is hermetic: every external dependency is a vendored
# stand-in under vendor/ and the lockfile is committed, so `--locked
# --offline` must always succeed. A failure here means a path
# dependency or the lockfile drifted, not that the network is down.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (workspace, offline)"
cargo build --release --workspace --locked --offline

echo "==> cargo build --examples (offline)"
cargo build --release --examples --locked --offline

echo "==> cargo test (workspace, offline)"
cargo test --workspace --locked --offline -q

echo "==> cargo doc (no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --locked --offline

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> poat-analyze (architectural invariants, see docs/ANALYZER.md)"
cargo run -p poat-analyzer --bin poat-analyze --locked --offline -- --deny-warnings
# Machine-readable findings artifact for downstream CI consumers (a
# clean tree yields an empty findings list with zeroed counters).
mkdir -p target
cargo run -p poat-analyzer --bin poat-analyze --locked --offline -- \
  --json --deny-warnings > target/poat-analyze.json
test -s target/poat-analyze.json
grep -q '"findings"' target/poat-analyze.json

echo "==> repro --trace smoke (offline)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
ledger="$trace_dir/ledger.poatlgr"
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  fig9a --quick --trace "$trace_dir/trace.json" --ledger "$ledger" >/dev/null
test -s "$trace_dir/trace.json"
grep -q '"traceEvents"' "$trace_dir/trace.json"
grep -q '"polb_miss"' "$trace_dir/trace.json"
grep -q '"pot_walk"' "$trace_dir/trace.json"

echo "==> repro report + flamegraph smoke (offline)"
# Second run into the same ledger (with the profiler on), then the
# cross-run loop must close: `repro report` sees both records and the
# collapsed-stack export is a real multi-frame flamegraph
# (docs/OBSERVABILITY.md).
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  fig9a --quick --ledger "$ledger" --flame "$trace_dir/profile.folded" >/dev/null
test -s "$trace_dir/profile.folded"
grep -q ';' "$trace_dir/profile.folded"
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  report --ledger "$ledger" | tee "$trace_dir/report.txt"
grep -q '2 records in' "$trace_dir/report.txt"
grep -q 'run000002' "$trace_dir/report.txt"

echo "==> repro trace-roundtrip smoke (offline)"
# Quick-scale trace save -> load -> simulate round trip: the loaded
# trace must equal the recorded one, both must simulate bit-identically
# on every core, and the encoding must stay within its 12 B/op budget
# (DESIGN.md "Trace encoding"). Exits non-zero on any mismatch.
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  trace-roundtrip --scale quick --dir "$trace_dir"

echo "==> repro crash-sweep smoke (offline)"
# Quick-scale crash campaign, evenly-spaced point sample to bound CI
# time; exits non-zero on any recovery-invariant violation
# (EXPERIMENTS.md, "Crash-point sweep"). The full per-point sweep runs
# in the harness e2e tests and via `repro crash-sweep --scale quick`.
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  crash-sweep --scale quick --max-points 40 --ledger "$ledger"

echo "==> repro serve smoke (offline)"
# Serve mode end to end (docs/OBSERVABILITY.md): submit two quick jobs
# into a temp spool, drain them with a serve session, then the observer
# CLIs must see both completed with recorded metrics in the durable
# catalog.
spool="$trace_dir/spool"
catalog="$trace_dir/catalog.poatcat"
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  submit LL:ALL pipelined quick --spool "$spool"
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  submit BST:RANDOM ideal quick --spool "$spool"
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  serve --spool "$spool" --catalog "$catalog" --drain
test -s "$catalog"
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  jobs --spool "$spool" --catalog "$catalog" | tee "$trace_dir/jobs.txt"
grep -q '0 pending, 0 running, 2 completed, 0 failed' "$trace_dir/jobs.txt"
cargo run --release -p poat-harness --bin repro --locked --offline -- \
  catalog query --catalog "$catalog" --metric sim.result.cycles \
  | tee "$trace_dir/catalog_query.txt"
grep -q '2 job(s) matched' "$trace_dir/catalog_query.txt"
# Both jobs project a real cycle count (a bare `-` would mean a job
# completed without metrics).
[[ "$(grep -c 'completed' "$trace_dir/catalog_query.txt")" -ge 2 ]]
! grep -E 'completed.* -$' "$trace_dir/catalog_query.txt"

echo "==> bench smoke + comparator (non-blocking, offline)"
# Smoke-scale pass over the full suite: proves every benchmark body
# still runs, then diffs against the latest committed BENCH_*.json.
# --warn-only because CI machines are arbitrarily loaded and smoke
# windows are short — regressions print but do not fail the gate.
# Release runs enforce for real via scripts/bench.sh, which hard-fails
# on regression before a new baseline is minted (docs/BENCHMARKS.md).
cargo run --release -p poat-bench --bin bench-run --locked --offline -- \
  --mode smoke --out "$trace_dir/bench_smoke.json" --ledger "$ledger"
bench_baseline="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)"
if [[ -n "$bench_baseline" ]]; then
  cargo run --release -p poat-bench --bin bench-compare --locked --offline -- \
    "$bench_baseline" "$trace_dir/bench_smoke.json" --warn-only
fi
# Ledger round trip: the baseline read back out of the bench-run record
# just appended must compare clean against the identical report file.
cargo run --release -p poat-bench --bin bench-compare --locked --offline -- \
  --ledger "$ledger" "$trace_dir/bench_smoke.json"

if [[ -n "${POAT_BENCH_FULL_BUDGET:-}" && "${POAT_BENCH_FULL_BUDGET}" != 0 ]]; then
  echo "==> full-scale matrix budget (opt-in via POAT_BENCH_FULL_BUDGET)"
  # Full-scale Fig. 9 matrix under its wall-clock budget
  # (budget/fig9_full_matrix, docs/BENCHMARKS.md). Minutes of runtime,
  # so it only runs when a caller exports POAT_BENCH_FULL_BUDGET=1 —
  # default CI stays fast. --filter skips the sampled microbenchmarks;
  # the budget check alone exercises the sharded full-scale replay path.
  POAT_BENCH_FULL_BUDGET="$POAT_BENCH_FULL_BUDGET" \
    cargo run --release -p poat-bench --bin bench-run --locked --offline -- \
    --mode smoke --filter fig9_full_matrix --out "$trace_dir/bench_full.json"
  grep -q '"budget/fig9_full_matrix"' "$trace_dir/bench_full.json"
fi

echo "==> ci.sh: all green"

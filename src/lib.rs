// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat — Persistent Object Address Translation
//!
//! A full-system reproduction of *"Hardware Supported Persistent Object
//! Address Translation"* (Wang, Sambasivam, Solihin, Tuck — MICRO'17).
//!
//! The paper proposes treating NVML-style ObjectIDs (`pool_id | offset`)
//! as a hardware-translated address space: new `nvld`/`nvst` instructions
//! translate ObjectIDs through a **Persistent Object Look-aside Buffer**
//! (POLB) backed by a **Persistent Object Table** (POT), eliminating the
//! software `oid_direct` translation that dominates persistent-object
//! workloads.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — ObjectId types, POLB (Pipelined & Parallel), POT
//! * [`nvm`] — simulated NVM device, persistence model, virtual memory
//! * [`pmem`] — NVML-like runtime (pools, allocator, transactions, trace)
//! * [`sim`] — cycle-level in-order and out-of-order cores + caches
//! * [`workloads`] — the paper's six microbenchmarks and TPC-C
//! * [`harness`] — experiment runners regenerating every table and figure
//!   of the evaluation, plus four ablation studies
//! * [`telemetry`] — metrics registry and the event-level tracing
//!   subsystem (`docs/TRACING.md`)
//!
//! ## Quickstart
//!
//! ```
//! use poat::pmem::{Runtime, RuntimeConfig};
//!
//! # fn main() -> Result<(), poat::pmem::PmemError> {
//! let mut rt = Runtime::new(RuntimeConfig::default());
//! let pool = rt.pool_create("data", 1 << 20)?;
//! let oid = rt.pmalloc(pool, 16)?;
//! rt.write_u64(oid, 42)?;
//! assert_eq!(rt.read_u64(oid)?, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use poat_core as core;
pub use poat_harness as harness;
pub use poat_nvm as nvm;
pub use poat_pmem as pmem;
pub use poat_sim as sim;
pub use poat_telemetry as telemetry;
pub use poat_workloads as workloads;

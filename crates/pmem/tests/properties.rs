//! Property-based tests for the runtime: allocator soundness and
//! translation-mode equivalence.

use std::collections::HashMap;

use poat_core::ObjectId;
use poat_pmem::{PmemError, Runtime, RuntimeConfig, TranslationMode};
use proptest::prelude::*;

proptest! {
    /// Live allocations never overlap, survive arbitrary alloc/free
    /// interleavings, and freed blocks are recycled.
    #[test]
    fn allocator_soundness(
        ops in prop::collection::vec((any::<bool>(), 8u64..200), 1..200),
    ) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 20).unwrap();
        let mut live: Vec<(ObjectId, u64)> = Vec::new();
        let mut stamp = 0u64;
        let mut contents: HashMap<u64, u64> = HashMap::new();
        for (do_alloc, size) in ops {
            if do_alloc || live.is_empty() {
                match rt.pmalloc(pool, size) {
                    Ok(oid) => {
                        // Overlap check against every live block.
                        for &(other, osz) in &live {
                            let (a0, a1) = (oid.offset() as u64, oid.offset() as u64 + size);
                            let (b0, b1) = (other.offset() as u64, other.offset() as u64 + osz);
                            prop_assert!(a1 <= b0 || b1 <= a0, "overlap {oid} vs {other}");
                        }
                        stamp += 1;
                        rt.write_u64(oid, stamp).unwrap();
                        contents.insert(oid.raw(), stamp);
                        live.push((oid, size));
                    }
                    Err(PmemError::PoolFull { .. }) => {}
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            } else {
                let (oid, _) = live.swap_remove(0);
                contents.remove(&oid.raw());
                rt.pfree(oid).unwrap();
            }
            // All live contents intact after each step.
            for &(oid, _) in &live {
                prop_assert_eq!(rt.read_u64(oid).unwrap(), contents[&oid.raw()]);
            }
        }
    }

    /// Software and hardware translation modes compute identical data:
    /// the same operation sequence yields byte-identical object contents
    /// (only the emitted instruction stream differs).
    #[test]
    fn modes_are_data_equivalent(
        values in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let mut results = Vec::new();
        for mode in [TranslationMode::Software, TranslationMode::Hardware] {
            let mut rt = Runtime::new(RuntimeConfig {
                mode,
                ..RuntimeConfig::default()
            });
            let pool = rt.pool_create("p", 1 << 18).unwrap();
            let mut oids = Vec::new();
            rt.tx_begin(pool).unwrap();
            for &v in &values {
                let oid = rt.tx_pmalloc(16).unwrap();
                rt.write_u64(oid, v).unwrap();
                oids.push(oid);
            }
            rt.tx_end().unwrap();
            let read: Vec<u64> = oids.iter().map(|&o| rt.read_u64(o).unwrap()).collect();
            results.push((oids, read));
        }
        prop_assert_eq!(&results[0].0, &results[1].0, "same allocation layout");
        prop_assert_eq!(&results[0].1, &results[1].1, "same data");
    }

    /// Whatever interleaving of committed transactions ran before a
    /// crash, recovery reproduces exactly the committed values.
    #[test]
    fn committed_history_is_exactly_preserved(
        history in prop::collection::vec((0usize..4, any::<u64>()), 1..20),
        crash in any::<u64>(),
    ) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("h", 1 << 18).unwrap();
        let cells: Vec<ObjectId> = (0..4).map(|_| rt.pmalloc(pool, 8).unwrap()).collect();
        let mut expect = [0u64; 4];
        for (i, &c) in cells.iter().enumerate() {
            rt.write_u64(c, 0).unwrap();
            rt.persist(c, 8).unwrap();
            expect[i] = 0;
        }
        for (idx, v) in history {
            rt.tx_begin(pool).unwrap();
            rt.tx_add_range(cells[idx], 8).unwrap();
            rt.write_u64(cells[idx], v).unwrap();
            rt.tx_end().unwrap();
            expect[idx] = v;
        }
        let mut rt = rt.crash_and_recover(crash).unwrap();
        for (i, &c) in cells.iter().enumerate() {
            prop_assert_eq!(rt.read_u64(c).unwrap(), expect[i]);
        }
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-pmem — the NVML-style persistent-object runtime
//!
//! A from-scratch reimplementation of the reduced NVM-Library interface the
//! paper builds on (Table 1): pools, a persistent allocator, software
//! ObjectID translation (`oid_direct` with a last-value predictor in front
//! of a hash map), durability (`persist` = clwb + sfence), and write-ahead
//! undo-log transactions with crash recovery.
//!
//! Beyond being a working persistent-memory library over the simulated NVM
//! of `poat-nvm`, the runtime doubles as the **trace front-end** of the
//! evaluation (the role Pin plays in the paper, §5.1): every API call emits
//! its dynamic instructions into a [`trace::Trace`] that `poat-sim`'s
//! in-order and out-of-order core models replay. Switching
//! [`TranslationMode`] regenerates the program the way recompiling against
//! the hardware-accelerated library would (BASE ↔ OPT), and switching off
//! failure safety produces the `_NTX` variants.
//!
//! ## Example: a persistent linked list node (paper Figure 4)
//!
//! ```
//! use poat_pmem::{Runtime, RuntimeConfig};
//!
//! # fn main() -> Result<(), poat_pmem::PmemError> {
//! let mut rt = Runtime::new(RuntimeConfig::default());
//! let pool = rt.pool_create("list", 1 << 16)?;
//!
//! // node { value: u64, next: OID }
//! let node = rt.pmalloc(pool, 16)?;
//! let head = rt.deref(node, None)?;
//! rt.write_u64_at(&head, 0, 42)?;                       // value
//! rt.write_u64_at(&head, 8, poat_core::ObjectId::NULL.raw())?; // next
//! rt.persist(node, 16)?;
//!
//! let (value, _) = rt.read_u64_at(&head, 0)?;
//! assert_eq!(value, 42);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `mmap` module opts back in with a
// scoped `allow` for the two read-only mapping syscalls it wraps (every
// unsafe block there carries a SAFETY justification; see docs/ANALYZER.md
// rule R2). Everything else in the crate still refuses unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod costs;
pub mod error;
pub mod faultpoint;
pub mod inspect;
pub mod log;
#[allow(unsafe_code)]
pub mod mmap;
pub mod pool;
pub mod runtime;
pub mod trace;
pub mod trace_io;
pub mod translate;

pub use error::PmemError;
pub use faultpoint::{CrashPoint, InjectMode, PointOutcome};
pub use inspect::PoolReport;
pub use poat_nvm::{BoundaryKind, FaultPlan};
pub use pool::PoolMode;
pub use runtime::{MachineState, PRef, Runtime, RuntimeConfig, RuntimeStats, TranslationMode};
pub use trace::{ChunkBounds, OpId, Trace, TraceOp, TraceSummary};
pub use translate::XlatStats;

//! The persistent-object runtime (the paper's Table 1 API).
//!
//! [`Runtime`] is the process-level library state: the open-pool table, the
//! software translation structures (predictor + hash map), the hardware
//! POT image, and the instruction trace being emitted. It supports two
//! code-generation modes:
//!
//! * [`TranslationMode::Software`] — the BASE configurations: every
//!   dereference calls `oid_direct` (emitting its ≈17/≈97-instruction
//!   cost), after which field accesses are regular loads/stores at the
//!   translated virtual address.
//! * [`TranslationMode::Hardware`] — the OPT configurations: dereferences
//!   are free and every field access is a single `nvld`/`nvst` that the
//!   simulated POLB/POT translate.
//!
//! Failure safety (undo logging + `persist`) can be disabled to produce the
//! `_NTX` configurations of the paper (Table 7).

use std::collections::HashMap;

use poat_core::{ObjectId, PoolId, Pot, VirtAddr, CACHE_LINE_BYTES, PAGE_BYTES};
use poat_nvm::{BoundaryKind, FaultPlan, NvMemory, PageTable};

use crate::costs;
use crate::error::PmemError;
use crate::pool::{header, OpenPool, PoolDirectory, PoolMode, POOL_MAGIC};
use crate::trace::{OpId, Trace, TraceOp};
use crate::translate::{SoftTranslator, XlatStats};

/// How ObjectID dereferences are compiled (paper Table 7: BASE vs OPT).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TranslationMode {
    /// BASE: software `oid_direct` before every dereference.
    Software,
    /// OPT: hardware `nvld`/`nvst` per access.
    Hardware,
}

/// Construction parameters for a [`Runtime`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// NVM device capacity in bytes.
    pub nvm_capacity: u64,
    /// Seed for the process' address-space randomization.
    pub aslr_seed: u64,
    /// BASE (software) or OPT (hardware) translation.
    pub mode: TranslationMode,
    /// Whether `persist` and the transaction API are active. When false
    /// (the `_NTX` configurations) they become no-ops and pools are created
    /// without a log area.
    pub failure_safety: bool,
    /// Per-pool undo-log area size in bytes (ignored when `failure_safety`
    /// is false).
    pub pool_log_bytes: u64,
    /// Hardware POT capacity (paper default: 16384 entries).
    pub pot_entries: usize,
    /// Software translation-map capacity.
    pub xlat_slots: usize,
    /// Whether `oid_direct` uses the last-value predictor (disable for
    /// the predictor ablation; BASE then pays the full look-up always).
    pub last_value_predictor: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            nvm_capacity: 2 << 30,
            aslr_seed: 1,
            mode: TranslationMode::Software,
            failure_safety: true,
            pool_log_bytes: 8192,
            pot_entries: 16384,
            xlat_slots: 16384,
            last_value_predictor: true,
        }
    }
}

impl RuntimeConfig {
    /// The BASE configuration (software translation, failure safety on).
    pub fn base() -> Self {
        Self::default()
    }

    /// The OPT configuration (hardware translation, failure safety on).
    pub fn opt() -> Self {
        RuntimeConfig {
            mode: TranslationMode::Hardware,
            ..Self::default()
        }
    }

    /// Disables failure safety (the `_NTX` variants).
    pub fn without_failure_safety(mut self) -> Self {
        self.failure_safety = false;
        self
    }
}

/// Counters over a runtime's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Pools created.
    pub pools_created: u64,
    /// Pools re-opened.
    pub pools_opened: u64,
    /// Successful `pmalloc`/`tx_pmalloc` calls.
    pub pmallocs: u64,
    /// Successful `pfree` calls (including deferred transactional frees).
    pub pfrees: u64,
    /// Transactions begun.
    pub tx_begun: u64,
    /// Transactions committed.
    pub tx_committed: u64,
    /// Transactions aborted (explicitly or by recovery).
    pub tx_aborted: u64,
    /// `persist` calls executed.
    pub persists: u64,
    /// Undo records applied (aborts + recovery).
    pub undo_applied: u64,
    /// Crash-recovery passes executed.
    pub recoveries: u64,
    /// Pools whose interrupted creation was rolled back by recovery.
    pub creations_rolled_back: u64,
}

/// In-flight transaction bookkeeping (volatile; the durable state is the
/// pool's log area).
#[derive(Clone, Debug)]
pub(crate) struct TxState {
    /// Pool whose log area holds this transaction's records.
    pub pool: PoolId,
    /// Ranges snapshotted by `tx_add_range` (persisted at commit).
    pub data_records: Vec<(ObjectId, u32)>,
    /// Frees deferred to commit.
    pub frees: Vec<ObjectId>,
    /// Next free byte in the log area.
    pub tail: u32,
}

/// A dereferenced persistent object: the handle through which fields are
/// read and written.
///
/// In software mode a `PRef` is the result of an `oid_direct` call (the
/// translated address); in hardware mode it is just the ObjectID (the
/// translation happens inside each `nvld`/`nvst`). Either way, the workload
/// code is identical — which is the programmability point of the paper.
#[derive(Clone, Copy, Debug)]
pub struct PRef {
    pub(crate) oid: ObjectId,
    pub(crate) va: VirtAddr,
    pub(crate) dep: Option<OpId>,
    /// True for handle-based library-internal references (the pool base is
    /// already in a register, as NVML's `pop` pointer is), which access
    /// memory with plain loads/stores in *both* modes — no `oid_direct`
    /// and no `nvld`/`nvst`.
    pub(crate) direct: bool,
}

impl PRef {
    /// The ObjectID this handle refers to.
    pub fn oid(&self) -> ObjectId {
        self.oid
    }

    /// The translated virtual address (for diagnostics).
    pub fn va(&self) -> VirtAddr {
        self.va
    }
}

/// Exported machine state the timing simulator needs alongside a trace.
#[derive(Clone, Debug)]
pub struct MachineState {
    /// The hardware POT image at end of run (pool → virtual base).
    pub pot: Pot,
    /// The page table (virtual page → physical frame).
    pub page_table: PageTable,
}

/// The persistent-object runtime. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Runtime {
    pub(crate) cfg: RuntimeConfig,
    pub(crate) mem: NvMemory,
    pub(crate) dir: PoolDirectory,
    pub(crate) open: HashMap<u32, OpenPool>,
    pub(crate) pot: Pot,
    pub(crate) xlat: SoftTranslator,
    pub(crate) trace: Trace,
    pub(crate) stats: RuntimeStats,
    pub(crate) tx: Option<TxState>,
    aslr_epoch: u64,
}

impl Runtime {
    /// Creates a runtime over a fresh NVM device.
    pub fn new(cfg: RuntimeConfig) -> Self {
        let mem = NvMemory::new(cfg.nvm_capacity, cfg.aslr_seed);
        Runtime {
            pot: Pot::new(cfg.pot_entries),
            xlat: SoftTranslator::with_predictor(cfg.xlat_slots, cfg.last_value_predictor),
            mem,
            dir: PoolDirectory::new(),
            open: HashMap::new(),
            trace: Trace::new(),
            stats: RuntimeStats::default(),
            tx: None,
            aslr_epoch: 0,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Pool management (paper Table 1, "Pool Management")
    // ------------------------------------------------------------------

    /// Effective per-pool log-area size for the current configuration.
    fn log_bytes(&self) -> u64 {
        if self.cfg.failure_safety {
            self.cfg.pool_log_bytes
        } else {
            0
        }
    }

    /// `pool_create(name, size)`: creates and maps a pool.
    ///
    /// `size` is rounded up to whole pages and must leave room for the
    /// header, the log area, and at least one allocation.
    ///
    /// # Errors
    ///
    /// [`PmemError::PoolExists`] if the name is taken, or
    /// [`PmemError::Nvm`] if memory runs out.
    pub fn pool_create(&mut self, name: &str, size: u64) -> Result<PoolId, PmemError> {
        self.pool_create_with_mode(name, size, PoolMode::ReadWrite)
    }

    /// `pool_create(name, size, mode)` with the Table 1 `mode` argument:
    /// a pool created [`PoolMode::ReadOnly`] can be initialized here (the
    /// header format is part of creation) but rejects all subsequent
    /// writes, allocations, and transactions.
    ///
    /// # Errors
    ///
    /// As [`pool_create`](Self::pool_create).
    pub fn pool_create_with_mode(
        &mut self,
        name: &str,
        size: u64,
        mode: PoolMode,
    ) -> Result<PoolId, PmemError> {
        if self.dir.contains(name) {
            return Err(PmemError::PoolExists(name.to_owned()));
        }
        let min = header::SIZE_BYTES as u64 + self.log_bytes() + 64;
        let size = size.max(min).div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let (base, frames) = self.mem.map_new(size)?;
        let id = self.dir.register(name, size, frames, mode);
        // Map read-write during creation so the header can be formatted;
        // the requested mode takes effect below.
        self.install_mapping(id, base, size, self.log_bytes(), PoolMode::ReadWrite)?;
        self.trace.push(TraceOp::Exec {
            n: costs::POOL_OPEN_EXEC,
        });

        // Format the header through the pool handle (direct path): this
        // cost is identical in BASE and OPT, as in NVML. Two-phase
        // creation commit: every field is made durable first, then the
        // magic is written and persisted on its own. Frames arrive
        // zeroed, so until the second persist the pool reads as
        // unformatted (magic 0) and recovery rolls the creation back —
        // no torn mixture of the two states is ever observable.
        let h = self.direct_ref(id, 0)?;
        self.write_u64_at(&h, header::SIZE, size)?;
        self.write_u64_at(&h, header::ROOT_OFF, 0)?;
        self.write_u64_at(&h, header::ROOT_SIZE, 0)?;
        let data_start = header::SIZE_BYTES as u64 + self.log_bytes();
        self.write_u64_at(&h, header::BUMP, data_start)?;
        self.write_u64_at(&h, header::FREE_HEAD, 0)?;
        self.write_u64_at(&h, header::LOG_BYTES, self.log_bytes())?;
        // faultpoint: crash-sweep pool-create (header fields durable before magic)
        self.raw_persist_direct(id, 0, header::SIZE_BYTES as u64)?;
        self.write_u64_at(&h, header::MAGIC, POOL_MAGIC)?;
        // faultpoint: crash-sweep pool-create (magic publish)
        self.raw_persist_direct(id, header::MAGIC, 8)?;
        self.open.get_mut(&id.raw()).expect("just installed").mode = mode;
        self.stats.pools_created += 1;
        Ok(id)
    }

    /// `pool_open(name)`: reopens a previously created pool, mapping it at
    /// a (new, randomized) base. Idempotent if already open.
    ///
    /// # Errors
    ///
    /// [`PmemError::PoolNotFound`] if the name was never created.
    pub fn pool_open(&mut self, name: &str) -> Result<PoolId, PmemError> {
        let meta = self
            .dir
            .by_name(name)
            .ok_or_else(|| PmemError::PoolNotFound(name.to_owned()))?
            .clone();
        if self.open.contains_key(&meta.id.raw()) {
            return Ok(meta.id);
        }
        let base = self.mem.map_frames(&meta.frames)?;
        // The log-area size is read from the durable header, not the
        // current config: a pool created with logging keeps its log area.
        // Permissions are re-checked against the directory (Table 1).
        self.install_mapping(meta.id, base, meta.size, 0, meta.mode)?;
        let h = self.direct_ref(meta.id, 0)?;
        let (magic, _) = self.read_u64_at(&h, header::MAGIC)?;
        if magic != POOL_MAGIC {
            // The magic is persisted last during creation (two-phase
            // commit), so a missing magic means the creation never
            // committed. Undo the partial install and report it;
            // recovery rolls such pools back entirely.
            self.open.remove(&meta.id.raw());
            self.pot.remove(meta.id);
            self.xlat.remove(meta.id);
            self.mem.unmap(base)?;
            return Err(PmemError::PoolUnformatted(name.to_owned()));
        }
        let (log_bytes, _) = self.read_u64_at(&h, header::LOG_BYTES)?;
        self.open
            .get_mut(&meta.id.raw())
            .expect("just installed")
            .log_bytes = log_bytes;
        self.trace.push(TraceOp::Exec {
            n: costs::POOL_OPEN_EXEC,
        });
        self.stats.pools_opened += 1;
        Ok(meta.id)
    }

    fn install_mapping(
        &mut self,
        id: PoolId,
        base: VirtAddr,
        size: u64,
        log_bytes: u64,
        mode: PoolMode,
    ) -> Result<(), PmemError> {
        self.open.insert(
            id.raw(),
            OpenPool {
                id,
                base,
                size,
                log_bytes,
                mode,
            },
        );
        // Both tables are sized from `RuntimeConfig`; running out means
        // the configuration cannot hold another open pool. Undo the
        // partial install so the runtime stays consistent.
        if self.pot.insert(id, base).is_err() {
            self.open.remove(&id.raw());
            return Err(PmemError::XlatTableFull);
        }
        if let Err(e) = self.xlat.insert(id, base) {
            self.pot.remove(id);
            self.open.remove(&id.raw());
            return Err(e);
        }
        Ok(())
    }

    /// `pool_close(pool)`: unmaps the pool from the address space. Its
    /// contents stay durable and it can be re-opened later.
    ///
    /// # Errors
    ///
    /// [`PmemError::PoolNotOpen`] if it is not open, or
    /// [`PmemError::NestedTransaction`] if a transaction is using it.
    pub fn pool_close(&mut self, pool: PoolId) -> Result<(), PmemError> {
        if matches!(&self.tx, Some(tx) if tx.pool == pool) {
            return Err(PmemError::NestedTransaction);
        }
        let p = self
            .open
            .remove(&pool.raw())
            .ok_or(PmemError::PoolNotOpen(ObjectId::new(pool, 0)))?;
        self.mem.unmap(p.base)?;
        self.pot.remove(pool);
        self.xlat.remove(pool);
        Ok(())
    }

    /// Permanently deletes a pool: closes it if open, removes it from the
    /// durable directory, and releases its NVM frames (the `pmempool rm`
    /// operation). The pool's id is never reused; every ObjectID into it
    /// becomes permanently invalid.
    ///
    /// # Errors
    ///
    /// [`PmemError::PoolNotFound`] if no pool has this name;
    /// [`PmemError::NestedTransaction`] if an active transaction logs into
    /// it.
    pub fn pool_delete(&mut self, name: &str) -> Result<(), PmemError> {
        let meta = self
            .dir
            .by_name(name)
            .ok_or_else(|| PmemError::PoolNotFound(name.to_owned()))?
            .clone();
        if self.open.contains_key(&meta.id.raw()) {
            self.pool_close(meta.id)?;
        }
        let meta = self.dir.unregister(name).expect("checked above");
        self.mem.release_frames(&meta.frames);
        Ok(())
    }

    /// `pool_root(pool, size)`: returns the pool's root object, allocating
    /// it on first use.
    ///
    /// # Errors
    ///
    /// Propagates allocation and access failures.
    pub fn pool_root(&mut self, pool: PoolId, size: u64) -> Result<ObjectId, PmemError> {
        let h = self.direct_ref(pool, 0)?;
        let (off, _) = self.read_u64_at(&h, header::ROOT_OFF)?;
        if off != 0 {
            return Ok(ObjectId::new(pool, off as u32));
        }
        let root = self.pmalloc(pool, size)?;
        let h = self.direct_ref(pool, 0)?;
        self.write_u64_at(&h, header::ROOT_OFF, root.offset() as u64)?;
        self.write_u64_at(&h, header::ROOT_SIZE, size)?;
        // faultpoint: crash-sweep root-install (root off/size published together)
        self.raw_persist_direct(pool, 0, header::SIZE_BYTES as u64)?;
        Ok(root)
    }

    // ------------------------------------------------------------------
    // Dereference + typed access (the data path being accelerated)
    // ------------------------------------------------------------------

    pub(crate) fn pool_of(&self, oid: ObjectId) -> Result<OpenPool, PmemError> {
        let pool = oid.pool().ok_or(PmemError::InvalidObjectId(oid))?;
        self.open
            .get(&pool.raw())
            .copied()
            .ok_or(PmemError::PoolNotOpen(oid))
    }

    /// Dereferences an ObjectID, producing a handle for field accesses.
    ///
    /// In software (BASE) mode this emits the `oid_direct` instruction
    /// cost; in hardware (OPT) mode it is free. `dep` names the trace op
    /// that produced the ObjectID (e.g. the load of a `next` field), so the
    /// out-of-order model sees the true pointer-chasing critical path.
    ///
    /// # Errors
    ///
    /// [`PmemError::InvalidObjectId`] for NULL or out-of-pool references,
    /// [`PmemError::PoolNotOpen`] if the pool is not mapped.
    pub fn deref(&mut self, oid: ObjectId, dep: Option<OpId>) -> Result<PRef, PmemError> {
        let p = self.pool_of(oid)?;
        if (oid.offset() as u64) >= p.size {
            return Err(PmemError::InvalidObjectId(oid));
        }
        match self.cfg.mode {
            TranslationMode::Hardware => Ok(PRef {
                oid,
                va: p.base.offset(oid.offset() as u64),
                dep,
                direct: false,
            }),
            TranslationMode::Software => {
                let (va, xdep) = self
                    .xlat
                    .translate(oid, dep, &mut self.trace)
                    .ok_or(PmemError::PoolNotOpen(oid))?;
                Ok(PRef {
                    oid,
                    va,
                    dep: Some(xdep),
                    direct: false,
                })
            }
        }
    }

    /// A library-internal reference reached through an in-register pool
    /// handle (NVML's `pop` pointer): plain loads/stores, no translation,
    /// in both modes. Used by the allocator and pool-header code.
    pub(crate) fn direct_ref(&mut self, pool: PoolId, offset: u32) -> Result<PRef, PmemError> {
        let p = self.pool_of(ObjectId::new(pool, 0))?;
        if (offset as u64) >= p.size {
            return Err(PmemError::InvalidObjectId(ObjectId::new(pool, offset)));
        }
        Ok(PRef {
            oid: ObjectId::new(pool, offset),
            va: p.base.offset(offset as u64),
            dep: None,
            direct: true,
        })
    }

    fn check_range(&self, r: &PRef, off: u32, len: u32) -> Result<ObjectId, PmemError> {
        let p = self.pool_of(r.oid)?;
        let end = r.oid.offset() as u64 + off as u64 + len as u64;
        if end > p.size {
            return Err(PmemError::InvalidObjectId(r.oid));
        }
        Ok(ObjectId::new(p.id, r.oid.offset() + off))
    }

    pub(crate) fn check_writable(&self, oid: ObjectId) -> Result<(), PmemError> {
        let p = self.pool_of(oid)?;
        if p.mode == PoolMode::ReadOnly {
            return Err(PmemError::ReadOnlyPool(p.id.raw()));
        }
        Ok(())
    }

    fn emit_access(
        &mut self,
        oid: ObjectId,
        va: VirtAddr,
        dep: Option<OpId>,
        store: bool,
        direct: bool,
    ) -> OpId {
        let hardware = !direct && self.cfg.mode == TranslationMode::Hardware;
        let op = match (hardware, store) {
            (true, false) => TraceOp::NvLoad { oid, va, dep },
            (true, true) => TraceOp::NvStore { oid, va, dep },
            (false, false) => TraceOp::Load { va, dep },
            (false, true) => TraceOp::Store { va, dep },
        };
        self.trace.push(op)
    }

    /// Reads the `u64` field at byte offset `off` of the object.
    ///
    /// Returns the value and the id of the emitted load, for threading as a
    /// dependency into subsequent dereferences.
    ///
    /// # Errors
    ///
    /// [`PmemError::InvalidObjectId`] if the access leaves the pool.
    pub fn read_u64_at(&mut self, r: &PRef, off: u32) -> Result<(u64, OpId), PmemError> {
        let oid = self.check_range(r, off, 8)?;
        let va = r.va.offset(off as u64);
        let v = self.mem.read_u64(va)?;
        let id = self.emit_access(oid, va, r.dep, false, r.direct);
        Ok((v, id))
    }

    /// Writes the `u64` field at byte offset `off` of the object.
    ///
    /// # Errors
    ///
    /// [`PmemError::InvalidObjectId`] if the access leaves the pool.
    pub fn write_u64_at(&mut self, r: &PRef, off: u32, v: u64) -> Result<OpId, PmemError> {
        self.check_writable(r.oid)?;
        let oid = self.check_range(r, off, 8)?;
        let va = r.va.offset(off as u64);
        self.mem.write_u64(va, v)?;
        Ok(self.emit_access(oid, va, r.dep, true, r.direct))
    }

    /// Reads `buf.len()` bytes starting at offset `off`, emitting one
    /// memory operation per 8 bytes (the word-copy loop a compiler emits).
    ///
    /// # Errors
    ///
    /// [`PmemError::InvalidObjectId`] if the access leaves the pool.
    pub fn read_bytes_at(&mut self, r: &PRef, off: u32, buf: &mut [u8]) -> Result<OpId, PmemError> {
        let oid = self.check_range(r, off, buf.len() as u32)?;
        let va = r.va.offset(off as u64);
        self.mem.read(va, buf)?;
        let mut last = 0;
        for w in 0..(buf.len() as u64).div_ceil(8) {
            last = self.emit_access(
                oid.add((w * 8) as u32),
                va.offset(w * 8),
                r.dep,
                false,
                r.direct,
            );
        }
        Ok(last)
    }

    /// Writes `data` starting at offset `off` (one op per 8 bytes).
    ///
    /// # Errors
    ///
    /// [`PmemError::InvalidObjectId`] if the access leaves the pool.
    pub fn write_bytes_at(&mut self, r: &PRef, off: u32, data: &[u8]) -> Result<OpId, PmemError> {
        self.check_writable(r.oid)?;
        let oid = self.check_range(r, off, data.len() as u32)?;
        let va = r.va.offset(off as u64);
        self.mem.write(va, data)?;
        let mut last = 0;
        for w in 0..(data.len() as u64).div_ceil(8) {
            last = self.emit_access(
                oid.add((w * 8) as u32),
                va.offset(w * 8),
                r.dep,
                true,
                r.direct,
            );
        }
        Ok(last)
    }

    /// Convenience: dereference + read a `u64` in one call.
    ///
    /// # Errors
    ///
    /// See [`deref`](Self::deref) and [`read_u64_at`](Self::read_u64_at).
    pub fn read_u64(&mut self, oid: ObjectId) -> Result<u64, PmemError> {
        let r = self.deref(oid, None)?;
        Ok(self.read_u64_at(&r, 0)?.0)
    }

    /// Convenience: dereference + write a `u64` in one call.
    ///
    /// # Errors
    ///
    /// See [`deref`](Self::deref) and [`write_u64_at`](Self::write_u64_at).
    pub fn write_u64(&mut self, oid: ObjectId, v: u64) -> Result<(), PmemError> {
        let r = self.deref(oid, None)?;
        self.write_u64_at(&r, 0, v)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Durability (paper Table 1, "Durability")
    // ------------------------------------------------------------------

    /// Emits clwb-per-line + fence for `[va, va+len)`.
    ///
    /// Every `clwb` and `fence` is one persist boundary of the armed
    /// [`FaultPlan`] (if any): when the plan trips, the simulated process
    /// "dies" here with [`PmemError::InjectedCrash`], which the
    /// crash-point sweep turns into a device crash + recovery.
    fn persist_lines(&mut self, va: VirtAddr, len: u64) -> Result<(), PmemError> {
        if self.mem.crash_pending() {
            return Err(PmemError::InjectedCrash);
        }
        let mut line = va.line_base();
        while line.raw() < va.raw() + len {
            self.mem.clwb(line)?;
            self.trace.push(TraceOp::Clwb { va: line });
            if self.mem.crash_pending() {
                return Err(PmemError::InjectedCrash);
            }
            line = line.offset(CACHE_LINE_BYTES);
        }
        self.mem.fence();
        self.trace.push(TraceOp::Fence);
        if self.mem.crash_pending() {
            return Err(PmemError::InjectedCrash);
        }
        Ok(())
    }

    /// Persist without the NTX gate — used internally for log records,
    /// which must be durable whenever failure safety is on. Translates
    /// the ObjectID like any dereference.
    pub(crate) fn raw_persist(&mut self, oid: ObjectId, len: u64) -> Result<(), PmemError> {
        if !self.cfg.failure_safety || len == 0 {
            return Ok(());
        }
        let r = self.deref(oid, None)?;
        self.persist_lines(r.va, len)
    }

    /// Persist through an already-dereferenced handle: the caller holds
    /// the translated pointer (as C library code does after writing), so
    /// no new translation is charged. NTX-gated like all persists.
    pub(crate) fn persist_at(&mut self, r: &PRef, off: u32, len: u64) -> Result<(), PmemError> {
        if !self.cfg.failure_safety || len == 0 {
            return Ok(());
        }
        self.check_range(r, off, len as u32)?;
        self.persist_lines(r.va.offset(off as u64), len)
    }

    /// Persist of handle-reachable metadata (pool header, allocator
    /// blocks): no translation, mirroring NVML persisting via `pop`.
    pub(crate) fn raw_persist_direct(
        &mut self,
        pool: PoolId,
        offset: u32,
        len: u64,
    ) -> Result<(), PmemError> {
        if !self.cfg.failure_safety || len == 0 {
            return Ok(());
        }
        let r = self.direct_ref(pool, offset)?;
        self.persist_lines(r.va, len)
    }

    /// `persist(oid, size)`: makes `[oid, oid+size)` durable (clwb per
    /// line + sfence). A no-op in the `_NTX` configurations.
    ///
    /// # Errors
    ///
    /// [`PmemError::InvalidObjectId`] / [`PmemError::PoolNotOpen`] as for
    /// any dereference.
    pub fn persist(&mut self, oid: ObjectId, size: u64) -> Result<(), PmemError> {
        if !self.cfg.failure_safety {
            return Ok(());
        }
        self.stats.persists += 1;
        self.raw_persist(oid, size)
    }

    // ------------------------------------------------------------------
    // Workload compute emission
    // ------------------------------------------------------------------

    /// Emits `n` non-memory instructions (the workload's own compute).
    pub fn exec(&mut self, n: u32) {
        if n > 0 {
            self.trace.push(TraceOp::Exec { n });
        }
    }

    /// Emits a conditional branch.
    pub fn branch(&mut self, mispredicted: bool) {
        self.trace.push(TraceOp::Branch { mispredicted });
    }

    // ------------------------------------------------------------------
    // Crash / recovery
    // ------------------------------------------------------------------

    /// Simulates a power failure and a subsequent process restart.
    ///
    /// All volatile state is lost: unpersisted cache lines (randomly, per
    /// `crash_seed`), the address-space layout (pools re-mapped at new
    /// randomized bases), the predictor, POT, and POLB contents, and any
    /// in-flight transaction. Every pool in the durable directory is then
    /// re-opened and its undo log replayed ([`RuntimeStats::recoveries`]).
    pub fn crash_and_recover(mut self, crash_seed: u64) -> Result<Runtime, PmemError> {
        self.aslr_epoch += 1;
        let new_seed = self
            .cfg
            .aslr_seed
            .wrapping_mul(0x1234_5678_9ABC_DEF1)
            .wrapping_add(self.aslr_epoch);
        self.mem.crash(crash_seed, new_seed);
        let mut rt = Runtime {
            cfg: self.cfg.clone(),
            mem: self.mem,
            dir: self.dir,
            open: HashMap::new(),
            pot: Pot::new(self.cfg.pot_entries),
            xlat: SoftTranslator::with_predictor(
                self.cfg.xlat_slots,
                self.cfg.last_value_predictor,
            ),
            trace: Trace::new(),
            stats: self.stats,
            tx: None,
            aslr_epoch: self.aslr_epoch,
        };
        rt.recover()?;
        Ok(rt)
    }

    /// Reopens every pool and rolls back uncommitted transactions —
    /// and uncommitted pool *creations* (a pool whose header magic never
    /// became durable is unregistered and its frames released).
    pub(crate) fn recover(&mut self) -> Result<(), PmemError> {
        self.stats.recoveries += 1;
        let names: Vec<String> = self.dir.iter().map(|m| m.name.clone()).collect();
        for name in &names {
            match self.pool_open(name) {
                Ok(_) => {}
                Err(PmemError::PoolUnformatted(_)) => {
                    let meta = self.dir.unregister(name).expect("listed above");
                    self.mem.release_frames(&meta.frames);
                    self.stats.creations_rolled_back += 1;
                }
                Err(e) => return Err(e),
            }
        }
        let mut pools: Vec<PoolId> = self
            .open
            .values()
            .filter(|p| p.log_bytes > 0)
            .map(|p| p.id)
            .collect();
        pools.sort();
        for pool in pools {
            self.apply_undo(pool)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fault injection (crash-point sweep support)
    // ------------------------------------------------------------------

    /// Arms a [`FaultPlan`] on the underlying device. Subsequent persist
    /// boundaries count toward the plan; when it trips, the next persist
    /// returns [`PmemError::InjectedCrash`].
    pub fn arm_fault_plan(&mut self, plan: FaultPlan) {
        self.mem.arm_faults(plan);
    }

    /// Persist boundaries (clwb + fence) executed since the last arming.
    pub fn persist_boundaries(&self) -> u64 {
        self.mem.persist_boundaries()
    }

    /// The kind of every boundary seen since arming, in order (recorded
    /// only when the armed plan asked for it).
    pub fn boundary_kinds(&self) -> Vec<BoundaryKind> {
        self.mem.boundary_kinds().to_vec()
    }

    /// Whether an armed crash point has tripped (the process should stop
    /// and [`crash_and_recover`](Self::crash_and_recover)).
    pub fn fault_tripped(&self) -> bool {
        self.mem.crash_pending()
    }

    /// A pool's full current contents, read straight from the memory
    /// system with no trace traffic: state digests and diagnostics.
    ///
    /// # Errors
    ///
    /// [`PmemError::PoolNotOpen`] if the pool is not mapped.
    pub fn pool_bytes(&mut self, pool: PoolId) -> Result<Vec<u8>, PmemError> {
        let p = self.pool_of(ObjectId::new(pool, 0))?;
        let mut buf = vec![0u8; p.size as usize];
        self.mem.read(p.base, &mut buf)?;
        Ok(buf)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes the recorded trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Runtime counters.
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// Software-translation counters (drives Table 2).
    pub fn xlat_stats(&self) -> XlatStats {
        self.xlat.stats()
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Whether a transaction is currently active.
    pub fn in_transaction(&self) -> bool {
        self.tx.is_some()
    }

    /// Exports the machine state the timing simulator needs.
    pub fn machine_state(&self) -> MachineState {
        MachineState {
            pot: self.pot.clone(),
            page_table: self.mem.page_table().clone(),
        }
    }

    /// Number of currently open pools.
    pub fn open_pools(&self) -> usize {
        self.open.len()
    }

    /// The ids of all currently open pools (unordered).
    pub fn open_pool_ids(&self) -> Vec<PoolId> {
        self.open.values().map(|p| p.id).collect()
    }

    /// The durable pool directory (read-only view).
    pub fn dir(&self) -> &PoolDirectory {
        &self.dir
    }

    /// The usable data capacity of an open pool (size minus header/log).
    pub fn pool_data_capacity(&self, pool: PoolId) -> Option<u64> {
        self.open
            .get(&pool.raw())
            .map(|p| p.size - p.data_start() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        rt.write_u64(oid, 0xFEED).unwrap();
        assert_eq!(rt.read_u64(oid).unwrap(), 0xFEED);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        rt.pool_create("p", 1 << 16).unwrap();
        assert!(matches!(
            rt.pool_create("p", 1 << 16),
            Err(PmemError::PoolExists(_))
        ));
    }

    #[test]
    fn open_unknown_pool_fails() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        assert!(matches!(
            rt.pool_open("nope"),
            Err(PmemError::PoolNotFound(_))
        ));
    }

    #[test]
    fn close_then_reopen_preserves_data() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 32).unwrap();
        rt.write_u64(oid, 7).unwrap();
        rt.pool_close(pool).unwrap();
        assert!(matches!(rt.read_u64(oid), Err(PmemError::PoolNotOpen(_))));
        let pool2 = rt.pool_open("p").unwrap();
        assert_eq!(pool2, pool, "pool id is stable across reopen");
        assert_eq!(rt.read_u64(oid).unwrap(), 7);
    }

    #[test]
    fn root_object_is_stable() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let r1 = rt.pool_root(pool, 128).unwrap();
        let r2 = rt.pool_root(pool, 128).unwrap();
        assert_eq!(r1, r2);
        rt.write_u64(r1, 5).unwrap();
        assert_eq!(rt.read_u64(r2).unwrap(), 5);
    }

    #[test]
    fn software_mode_emits_translation_then_loads() {
        let mut rt = Runtime::new(RuntimeConfig::base());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 16).unwrap();
        rt.take_trace();
        let r = rt.deref(oid, None).unwrap();
        let (_, _) = rt.read_u64_at(&r, 0).unwrap();
        let s = rt.trace().summary();
        assert!(s.loads >= 3, "predictor globals + data load, got {s:?}");
        assert_eq!(s.nvloads, 0);
    }

    #[test]
    fn hardware_mode_emits_single_nvld() {
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 16).unwrap();
        rt.take_trace();
        let r = rt.deref(oid, None).unwrap();
        rt.read_u64_at(&r, 0).unwrap();
        let s = rt.trace().summary();
        assert_eq!(s.nvloads, 1);
        assert_eq!(s.loads, 0);
        assert_eq!(s.instructions, 1, "one nvld replaces the whole oid_direct");
    }

    #[test]
    fn bounds_checked_access() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 14).unwrap();
        let oid = rt.pmalloc(pool, 16).unwrap();
        let r = rt.deref(oid, None).unwrap();
        assert!(matches!(
            rt.read_u64_at(&r, u32::MAX - 16),
            Err(PmemError::InvalidObjectId(_))
        ));
    }

    #[test]
    fn null_deref_rejected() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        assert!(matches!(
            rt.deref(ObjectId::NULL, None),
            Err(PmemError::InvalidObjectId(_))
        ));
    }

    #[test]
    fn bytes_roundtrip_and_ops() {
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        let r = rt.deref(oid, None).unwrap();
        rt.take_trace();
        rt.write_bytes_at(&r, 0, b"hello persistent!").unwrap();
        let mut buf = [0u8; 17];
        rt.read_bytes_at(&r, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello persistent!");
        let s = rt.trace().summary();
        assert_eq!(s.nvstores, 3, "17 bytes = 3 word stores");
        assert_eq!(s.nvloads, 3);
    }

    #[test]
    fn persist_is_noop_without_failure_safety() {
        let mut rt = Runtime::new(RuntimeConfig::base().without_failure_safety());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 16).unwrap();
        rt.write_u64(oid, 1).unwrap();
        rt.take_trace();
        rt.persist(oid, 8).unwrap();
        assert_eq!(rt.trace().summary().clwbs, 0);
        assert_eq!(rt.stats().persists, 0);
    }

    #[test]
    fn persist_emits_clwb_per_line_plus_fence() {
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 256).unwrap();
        rt.take_trace();
        rt.persist(oid, 200).unwrap();
        let s = rt.trace().summary();
        assert!(s.clwbs >= 4, "200 bytes spans at least 4 lines: {s:?}");
        assert_eq!(s.fences, 1);
    }

    #[test]
    fn machine_state_contains_pool_mapping() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let st = rt.machine_state();
        let base = st.pot.lookup(pool).unwrap();
        assert!(st.page_table.translate(base).is_some());
    }

    #[test]
    fn pool_delete_releases_everything() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("gone", 1 << 14).unwrap();
        let oid = rt.pmalloc(pool, 16).unwrap();
        rt.write_u64(oid, 3).unwrap();
        rt.pool_delete("gone").unwrap();
        assert!(matches!(rt.read_u64(oid), Err(PmemError::PoolNotOpen(_))));
        assert!(matches!(
            rt.pool_open("gone"),
            Err(PmemError::PoolNotFound(_))
        ));
        assert!(matches!(
            rt.pool_delete("gone"),
            Err(PmemError::PoolNotFound(_))
        ));
        // The name is reusable; the id is not recycled.
        let again = rt.pool_create("gone", 1 << 14).unwrap();
        assert_ne!(again, pool);
        // And deleted pools never come back through crash recovery.
        let rt2 = rt.crash_and_recover(3).unwrap();
        assert_eq!(rt2.open_pools(), 1);
    }

    #[test]
    fn pools_remap_at_different_bases_across_runs() {
        let mut a = Runtime::new(RuntimeConfig {
            aslr_seed: 1,
            ..RuntimeConfig::default()
        });
        let mut b = Runtime::new(RuntimeConfig {
            aslr_seed: 2,
            ..RuntimeConfig::default()
        });
        let pa = a.pool_create("p", 1 << 16).unwrap();
        let pb = b.pool_create("p", 1 << 16).unwrap();
        assert_eq!(pa, pb);
        assert_ne!(
            a.machine_state().pot.lookup(pa),
            b.machine_state().pot.lookup(pb),
            "ASLR: same pool, different base"
        );
    }
}

//! Runtime error type.

use std::fmt;

use poat_core::ObjectId;
use poat_nvm::NvmError;

/// Errors returned by the persistent-object runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmemError {
    /// `pool_open` on a name that was never created.
    PoolNotFound(String),
    /// `pool_create` on a name that already exists.
    PoolExists(String),
    /// The referenced pool is not currently open in this process.
    PoolNotOpen(ObjectId),
    /// Allocation failed: the pool has no free block of the needed size.
    PoolFull {
        /// The pool that is full.
        pool: u32,
        /// The allocation size that failed.
        requested: u64,
    },
    /// An ObjectID was NULL or referenced memory outside its pool.
    InvalidObjectId(ObjectId),
    /// A transactional call outside a transaction.
    NotInTransaction,
    /// `tx_begin` while a transaction is already active.
    NestedTransaction,
    /// The undo log pool ran out of space.
    LogFull,
    /// An underlying memory-system failure.
    Nvm(NvmError),
    /// `pfree` on an ObjectID that is not the start of a live allocation.
    BadFree(ObjectId),
    /// A write, allocation, or transaction on a pool opened read-only.
    ReadOnlyPool(u32),
    /// The software translation table (or hardware POT) cannot hold
    /// another open pool; raise the capacity in `RuntimeConfig`.
    XlatTableFull,
    /// `pool_open` found a pool whose creation never committed (the
    /// header magic was not durable): recovery rolls such pools back.
    PoolUnformatted(String),
    /// An armed fault plan tripped at a persist boundary: the simulated
    /// process "died" here. Crash the device and recover to continue.
    InjectedCrash,
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::PoolNotFound(n) => write!(f, "pool {n:?} not found"),
            PmemError::PoolExists(n) => write!(f, "pool {n:?} already exists"),
            PmemError::PoolNotOpen(oid) => write!(f, "pool of {oid} is not open"),
            PmemError::PoolFull { pool, requested } => {
                write!(
                    f,
                    "pool {pool} cannot satisfy allocation of {requested} bytes"
                )
            }
            PmemError::InvalidObjectId(oid) => write!(f, "invalid ObjectID {oid}"),
            PmemError::NotInTransaction => write!(f, "no transaction is active"),
            PmemError::NestedTransaction => write!(f, "transaction already active"),
            PmemError::LogFull => write!(f, "undo log is full"),
            PmemError::Nvm(e) => write!(f, "memory system: {e}"),
            PmemError::BadFree(oid) => write!(f, "free of non-allocated {oid}"),
            PmemError::ReadOnlyPool(p) => write!(f, "pool {p} is read-only"),
            PmemError::XlatTableFull => {
                write!(
                    f,
                    "translation table full: too many open pools for the configured capacity"
                )
            }
            PmemError::PoolUnformatted(n) => {
                write!(f, "pool {n:?} exists but its creation never committed")
            }
            PmemError::InjectedCrash => write!(f, "injected crash point reached"),
        }
    }
}

impl std::error::Error for PmemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmemError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvmError> for PmemError {
    fn from(e: NvmError) -> Self {
        PmemError::Nvm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let errs: Vec<PmemError> = vec![
            PmemError::PoolNotFound("x".into()),
            PmemError::PoolExists("x".into()),
            PmemError::PoolNotOpen(ObjectId::NULL),
            PmemError::PoolFull {
                pool: 1,
                requested: 64,
            },
            PmemError::InvalidObjectId(ObjectId::NULL),
            PmemError::NotInTransaction,
            PmemError::NestedTransaction,
            PmemError::LogFull,
            PmemError::Nvm(NvmError::OutOfMemory),
            PmemError::BadFree(ObjectId::NULL),
            PmemError::ReadOnlyPool(3),
            PmemError::XlatTableFull,
            PmemError::PoolUnformatted("x".into()),
            PmemError::InjectedCrash,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn nvm_error_converts_and_sources() {
        use std::error::Error;
        let e: PmemError = NvmError::OutOfMemory.into();
        assert!(e.source().is_some());
    }
}

//! Write-ahead undo logging (paper §2.1.4, "Failure Safety").
//!
//! Each pool carries a log area (see [`crate::pool`]). A transaction:
//!
//! 1. `tx_begin(pool)` — marks the pool's log active (persisted);
//! 2. `tx_add_range(oid, size)` — snapshots the *pre-modification* bytes
//!    into the log and persists them **before** the caller modifies the
//!    range (write-ahead);
//! 3. `tx_pmalloc` / `tx_pfree` — allocation with an undo record; frees
//!    are deferred to commit so an abort can keep the data;
//! 4. `tx_end()` — persists every snapshotted range's current (modified)
//!    data, durably flips the log's status word to COMMITTED (the single
//!    commit point), performs the deferred frees, then truncates the log
//!    back to IDLE.
//!
//! The log state lives in one packed status word (see
//! [`crate::pool::log_status`]), so every transition is a single-word
//! store — atomic even under a torn-line crash. Recovery (and `tx_abort`)
//! replays an ACTIVE log backwards: data snapshots are restored,
//! transactional allocations are freed. A COMMITTED log is instead rolled
//! *forward*: the deferred frees are redone idempotently, so a crash
//! between the commit point and log truncation can never leave a block
//! simultaneously live and on the free list. The paper notes that
//! logging code itself translates ObjectIDs and benefits from hardware
//! translation (§6.2) — here, every log access goes through the same
//! dereference path as user data, so that effect is reproduced.

use poat_core::{ObjectId, PoolId};

use crate::costs;
use crate::error::PmemError;
use crate::pool::{header, log_layout, log_status};
use crate::runtime::{Runtime, TxState};
use crate::trace::TraceOp;

/// Undo-record kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecordKind {
    /// A pre-image snapshot of `len` bytes at `oid`.
    Data = 1,
    /// `oid` was allocated inside the transaction (undo = free it).
    Alloc = 2,
    /// `oid` will be freed at commit (undo = nothing).
    FreeIntent = 3,
}

impl RecordKind {
    fn from_u64(v: u64) -> Option<Self> {
        match v {
            1 => Some(RecordKind::Data),
            2 => Some(RecordKind::Alloc),
            3 => Some(RecordKind::FreeIntent),
            _ => None,
        }
    }
}

const RECORD_HEADER_BYTES: u32 = 24;

fn round8(n: u32) -> u32 {
    n.div_ceil(8) * 8
}

impl Runtime {
    /// The pool-relative offset of byte `rel` of the log area.
    fn log_off(rel: u32) -> u32 {
        header::SIZE_BYTES + rel
    }

    /// `tx_begin(pool)`: starts a transaction whose undo records live in
    /// `pool`'s log area. A no-op in the `_NTX` configurations.
    ///
    /// # Errors
    ///
    /// [`PmemError::NestedTransaction`] if one is already active;
    /// [`PmemError::PoolNotOpen`] if the pool is not mapped.
    pub fn tx_begin(&mut self, pool: PoolId) -> Result<(), PmemError> {
        if !self.cfg.failure_safety {
            return Ok(());
        }
        if self.tx.is_some() {
            return Err(PmemError::NestedTransaction);
        }
        self.check_writable(ObjectId::new(pool, 0))?;
        let p = self.pool_of(ObjectId::new(pool, 0))?;
        debug_assert!(p.log_bytes > 0, "pool created without a log area");
        self.trace.push(TraceOp::Exec {
            n: costs::TX_BEGIN_EXEC,
        });
        let log = self.deref(ObjectId::new(pool, Self::log_off(0)), None)?;
        let status = log_status::encode(log_status::ACTIVE, log_layout::RECORDS);
        self.write_u64_at(&log, log_layout::STATUS, status)?;
        // faultpoint: crash-sweep tx-begin (ACTIVE status publish)
        self.persist_at(&log, log_layout::STATUS, 8)?;
        self.tx = Some(TxState {
            pool,
            data_records: Vec::new(),
            frees: Vec::new(),
            tail: log_layout::RECORDS,
        });
        self.stats.tx_begun += 1;
        Ok(())
    }

    fn tx_state(&self) -> Result<&TxState, PmemError> {
        self.tx.as_ref().ok_or(PmemError::NotInTransaction)
    }

    /// Appends a record header (+ optional pre-image already copied) and
    /// durably advances the tail.
    fn append_record(
        &mut self,
        kind: RecordKind,
        oid: ObjectId,
        len: u32,
    ) -> Result<u32, PmemError> {
        let tx = self.tx_state()?;
        let pool = tx.pool;
        let tail = tx.tail;
        let entry = RECORD_HEADER_BYTES + round8(len);
        let log_bytes = self.pool_of(ObjectId::new(pool, 0))?.log_bytes as u32;
        if tail + entry > log_bytes {
            return Err(PmemError::LogFull);
        }
        let log = self.deref(ObjectId::new(pool, Self::log_off(0)), None)?;
        self.write_u64_at(&log, tail, kind as u64)?;
        self.write_u64_at(&log, tail + 8, oid.raw())?;
        self.write_u64_at(&log, tail + 16, len as u64)?;
        if len > 0 {
            // Copy the pre-image: real word loads from the object, word
            // stores into the log (this is the logging traffic §6.2 talks
            // about).
            let src = self.deref(oid, None)?;
            let mut buf = vec![0u8; len as usize];
            self.read_bytes_at(&src, 0, &mut buf)?;
            self.write_bytes_at(&log, tail + RECORD_HEADER_BYTES, &buf)?;
        }
        // faultpoint: crash-sweep record-append (record bytes durable before tail)
        self.persist_at(&log, tail, (RECORD_HEADER_BYTES + len) as u64)?;
        // The record is invisible until the tail advance is durable.
        let new_tail = tail + entry;
        let status = log_status::encode(log_status::ACTIVE, new_tail);
        self.write_u64_at(&log, log_layout::STATUS, status)?;
        // faultpoint: crash-sweep record-append (tail advance publish)
        self.persist_at(&log, log_layout::STATUS, 8)?;
        self.tx.as_mut().expect("checked above").tail = new_tail;
        Ok(new_tail)
    }

    /// `tx_add_range(oid, size)`: snapshots `[oid, oid+size)` into the undo
    /// log. Call **before** modifying the range. A no-op in `_NTX`.
    ///
    /// # Errors
    ///
    /// [`PmemError::NotInTransaction`] outside a transaction;
    /// [`PmemError::LogFull`] if the log area cannot hold the snapshot.
    pub fn tx_add_range(&mut self, oid: ObjectId, size: u32) -> Result<(), PmemError> {
        if !self.cfg.failure_safety {
            return Ok(());
        }
        self.tx_state()?;
        self.trace.push(TraceOp::Exec {
            n: costs::TX_ADD_EXEC,
        });
        // Bounds-check the range against its pool.
        let p = self.pool_of(oid)?;
        if oid.offset() as u64 + size as u64 > p.size {
            return Err(PmemError::InvalidObjectId(oid));
        }
        self.append_record(RecordKind::Data, oid, size)?;
        self.tx
            .as_mut()
            .expect("checked above")
            .data_records
            .push((oid, size));
        Ok(())
    }

    /// `tx_pmalloc(size)`: allocates in the transaction's pool, recording
    /// an undo record so a crash or abort rolls the allocation back.
    ///
    /// # Errors
    ///
    /// [`PmemError::NotInTransaction`] outside a transaction; otherwise as
    /// [`Runtime::pmalloc`]. Without failure safety this degenerates to a
    /// plain `pmalloc` **only if** a pool was implied by a preceding
    /// `tx_begin`; the `_NTX` workloads call `pmalloc` directly instead.
    pub fn tx_pmalloc(&mut self, size: u64) -> Result<ObjectId, PmemError> {
        let pool = self.tx_state()?.pool;
        self.tx_pmalloc_in(pool, size)
    }

    /// Like [`tx_pmalloc`](Self::tx_pmalloc), but allocating in an
    /// explicit pool (an extension over Table 1 used by structures whose
    /// one transaction creates nodes in several pools, e.g. B+Tree
    /// splits). The undo record still lives in the transaction's log.
    ///
    /// # Errors
    ///
    /// [`PmemError::NotInTransaction`] outside a transaction; otherwise as
    /// [`Runtime::pmalloc`].
    pub fn tx_pmalloc_in(&mut self, pool: PoolId, size: u64) -> Result<ObjectId, PmemError> {
        self.tx_state()?;
        let oid = self.pmalloc(pool, size)?;
        self.append_record(RecordKind::Alloc, oid, 0)?;
        Ok(oid)
    }

    /// `tx_pfree(oid)`: schedules a free for commit time. If the
    /// transaction aborts, the object is kept.
    ///
    /// # Errors
    ///
    /// [`PmemError::NotInTransaction`] outside a transaction.
    pub fn tx_pfree(&mut self, oid: ObjectId) -> Result<(), PmemError> {
        self.tx_state()?;
        self.append_record(RecordKind::FreeIntent, oid, 0)?;
        self.tx.as_mut().expect("checked above").frees.push(oid);
        Ok(())
    }

    /// `tx_end()`: commits — persists all snapshotted ranges' current data,
    /// durably flips the status word to COMMITTED (the commit point),
    /// performs the deferred frees, then truncates the log. A no-op in
    /// `_NTX`.
    ///
    /// The frees run strictly *after* the commit point: if they ran first
    /// and the process crashed before committing, recovery would undo the
    /// transaction and resurrect ObjectIDs whose blocks already sit on
    /// the free list. After the commit point, recovery redoes any frees
    /// that did not complete (see `apply_undo`).
    ///
    /// # Errors
    ///
    /// [`PmemError::NotInTransaction`] outside a transaction.
    pub fn tx_end(&mut self) -> Result<(), PmemError> {
        if !self.cfg.failure_safety {
            return Ok(());
        }
        let tx = self.tx.take().ok_or(PmemError::NotInTransaction)?;
        self.trace.push(TraceOp::Exec {
            n: costs::TX_END_EXEC,
        });
        for (oid, len) in &tx.data_records {
            // faultpoint: crash-sweep tx-end (logged ranges durable before COMMITTED)
            self.raw_persist(*oid, *len as u64)?;
        }
        let log = self.deref(ObjectId::new(tx.pool, Self::log_off(0)), None)?;
        let committed = log_status::encode(log_status::COMMITTED, tx.tail);
        self.write_u64_at(&log, log_layout::STATUS, committed)?;
        // faultpoint: crash-sweep tx-end (COMMITTED status publish)
        self.persist_at(&log, log_layout::STATUS, 8)?;
        for oid in &tx.frees {
            self.pfree(*oid)?;
        }
        let idle = log_status::encode(log_status::IDLE, log_layout::RECORDS);
        self.write_u64_at(&log, log_layout::STATUS, idle)?;
        // faultpoint: crash-sweep tx-end (IDLE status retire)
        self.persist_at(&log, log_layout::STATUS, 8)?;
        self.stats.tx_committed += 1;
        Ok(())
    }

    /// `tx_abort()`: rolls the transaction back immediately by replaying
    /// its undo log, exactly as crash recovery would.
    ///
    /// # Errors
    ///
    /// [`PmemError::NotInTransaction`] outside a transaction.
    pub fn tx_abort(&mut self) -> Result<(), PmemError> {
        if !self.cfg.failure_safety {
            return Ok(());
        }
        let tx = self.tx.take().ok_or(PmemError::NotInTransaction)?;
        self.apply_undo(tx.pool)?;
        self.stats.tx_aborted += 1;
        Ok(())
    }

    /// Replays a pool's undo log if a transaction was interrupted.
    /// Returns the number of records applied.
    ///
    /// An ACTIVE log is applied *backwards*: pre-images are restored and
    /// transactional allocations rolled back. A COMMITTED log is applied
    /// *forwards*: deferred frees that did not complete before the crash
    /// are redone, skipping blocks already on the free list so the replay
    /// is idempotent.
    pub(crate) fn apply_undo(&mut self, pool: PoolId) -> Result<u64, PmemError> {
        let log = self.deref(ObjectId::new(pool, Self::log_off(0)), None)?;
        let (status, _) = self.read_u64_at(&log, log_layout::STATUS)?;
        let (state, tail) = log_status::decode(status);
        if state == log_status::IDLE {
            return Ok(0);
        }
        let log_bytes = self.pool_of(ObjectId::new(pool, 0))?.log_bytes as u32;
        let tail = tail.min(log_bytes);

        // Walk forward to index the records.
        let mut records = Vec::new();
        let mut off = log_layout::RECORDS;
        while off + RECORD_HEADER_BYTES <= tail {
            let (kind, _) = self.read_u64_at(&log, off)?;
            let (oid_raw, _) = self.read_u64_at(&log, off + 8)?;
            let (len, _) = self.read_u64_at(&log, off + 16)?;
            let Some(kind) = RecordKind::from_u64(kind) else {
                break; // torn/garbage record: everything after is invalid
            };
            records.push((off, kind, ObjectId::from_raw(oid_raw), len as u32));
            off += RECORD_HEADER_BYTES + round8(len as u32);
        }

        let mut applied = 0u64;
        if state == log_status::ACTIVE {
            // Roll back: apply in reverse.
            for &(off, kind, oid, len) in records.iter().rev() {
                match kind {
                    RecordKind::Data => {
                        let mut buf = vec![0u8; len as usize];
                        let log = self.deref(ObjectId::new(pool, Self::log_off(0)), None)?;
                        self.read_bytes_at(&log, off + RECORD_HEADER_BYTES, &mut buf)?;
                        let dst = self.deref(oid, None)?;
                        self.write_bytes_at(&dst, 0, &buf)?;
                        // faultpoint: crash-sweep recovery (pre-image restore durable)
                        self.persist_at(&dst, 0, len as u64)?;
                    }
                    RecordKind::Alloc => {
                        self.pfree(oid)?;
                    }
                    RecordKind::FreeIntent => {}
                }
                self.stats.undo_applied += 1;
                applied += 1;
            }
        } else {
            // Roll forward: redo the deferred frees of a committed
            // transaction. A free that completed before the crash left
            // its block on the free list — skip it.
            for &(_, kind, oid, _) in &records {
                if kind != RecordKind::FreeIntent {
                    continue;
                }
                if !self.block_is_free(oid)? {
                    self.pfree(oid)?;
                    self.stats.undo_applied += 1;
                    applied += 1;
                }
            }
        }

        let log = self.deref(ObjectId::new(pool, Self::log_off(0)), None)?;
        let idle = log_status::encode(log_status::IDLE, log_layout::RECORDS);
        self.write_u64_at(&log, log_layout::STATUS, idle)?;
        // faultpoint: crash-sweep recovery (IDLE status retire)
        self.persist_at(&log, log_layout::STATUS, 8)?;
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{Runtime, RuntimeConfig};
    use crate::PmemError;

    fn rt() -> (Runtime, poat_core::PoolId) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        (rt, pool)
    }

    #[test]
    fn commit_makes_updates_durable() {
        let (mut rt, pool) = rt();
        let oid = rt.pmalloc(pool, 16).unwrap();
        rt.write_u64(oid, 1).unwrap();
        rt.persist(oid, 8).unwrap();
        rt.tx_begin(pool).unwrap();
        rt.tx_add_range(oid, 8).unwrap();
        rt.write_u64(oid, 2).unwrap();
        rt.tx_end().unwrap();
        for seed in 0..8 {
            let rt2 = rt.clone().crash_and_recover(seed).unwrap();
            let mut rt2 = rt2;
            assert_eq!(rt2.read_u64(oid).unwrap(), 2, "seed {seed}");
        }
    }

    #[test]
    fn crash_mid_transaction_rolls_back() {
        let (mut rt, pool) = rt();
        let oid = rt.pmalloc(pool, 16).unwrap();
        rt.write_u64(oid, 1).unwrap();
        rt.persist(oid, 8).unwrap();
        rt.tx_begin(pool).unwrap();
        rt.tx_add_range(oid, 8).unwrap();
        rt.write_u64(oid, 2).unwrap();
        rt.persist(oid, 8).unwrap(); // even if the new value hit media...
                                     // no tx_end: crash
        for seed in 0..8 {
            let mut rt2 = rt.clone().crash_and_recover(seed).unwrap();
            assert_eq!(rt2.read_u64(oid).unwrap(), 1, "seed {seed}: undo restores");
        }
    }

    #[test]
    fn abort_restores_pre_images_in_reverse() {
        let (mut rt, pool) = rt();
        let a = rt.pmalloc(pool, 16).unwrap();
        let b = rt.pmalloc(pool, 16).unwrap();
        rt.write_u64(a, 10).unwrap();
        rt.write_u64(b, 20).unwrap();
        rt.tx_begin(pool).unwrap();
        rt.tx_add_range(a, 8).unwrap();
        rt.write_u64(a, 11).unwrap();
        rt.tx_add_range(b, 8).unwrap();
        rt.write_u64(b, 21).unwrap();
        // Second snapshot of `a` after modification: undo must apply in
        // reverse so the *first* (oldest) image wins.
        rt.tx_add_range(a, 8).unwrap();
        rt.write_u64(a, 12).unwrap();
        rt.tx_abort().unwrap();
        assert_eq!(rt.read_u64(a).unwrap(), 10);
        assert_eq!(rt.read_u64(b).unwrap(), 20);
        assert!(!rt.in_transaction());
    }

    #[test]
    fn tx_pmalloc_rolled_back_on_crash() {
        let (mut rt, pool) = rt();
        rt.tx_begin(pool).unwrap();
        let oid = rt.tx_pmalloc(32).unwrap();
        rt.write_u64(oid, 5).unwrap();
        let mut rt2 = rt.crash_and_recover(0).unwrap();
        // The allocation was undone: the same block is handed out again.
        let again = rt2.pmalloc(pool, 32).unwrap();
        assert_eq!(again, oid, "rolled-back block is reusable");
    }

    #[test]
    fn tx_pfree_keeps_data_on_abort() {
        let (mut rt, pool) = rt();
        let oid = rt.pmalloc(pool, 16).unwrap();
        rt.write_u64(oid, 9).unwrap();
        rt.tx_begin(pool).unwrap();
        rt.tx_pfree(oid).unwrap();
        rt.tx_abort().unwrap();
        assert_eq!(rt.read_u64(oid).unwrap(), 9, "free was deferred");
        // And on commit the free actually happens.
        rt.tx_begin(pool).unwrap();
        rt.tx_pfree(oid).unwrap();
        rt.tx_end().unwrap();
        let re = rt.pmalloc(pool, 16).unwrap();
        assert_eq!(re, oid);
    }

    #[test]
    fn nested_transactions_rejected() {
        let (mut rt, pool) = rt();
        rt.tx_begin(pool).unwrap();
        assert!(matches!(
            rt.tx_begin(pool),
            Err(PmemError::NestedTransaction)
        ));
    }

    #[test]
    fn tx_ops_outside_transaction_rejected() {
        let (mut rt, pool) = rt();
        let oid = rt.pmalloc(pool, 16).unwrap();
        assert!(matches!(
            rt.tx_add_range(oid, 8),
            Err(PmemError::NotInTransaction)
        ));
        assert!(matches!(rt.tx_pmalloc(8), Err(PmemError::NotInTransaction)));
        assert!(matches!(rt.tx_pfree(oid), Err(PmemError::NotInTransaction)));
        assert!(matches!(rt.tx_end(), Err(PmemError::NotInTransaction)));
    }

    #[test]
    fn log_full_detected() {
        let mut r = Runtime::new(RuntimeConfig {
            pool_log_bytes: 256,
            ..RuntimeConfig::default()
        });
        let pool = r.pool_create("p", 1 << 16).unwrap();
        let oid = r.pmalloc(pool, 4096).unwrap();
        r.tx_begin(pool).unwrap();
        assert!(matches!(r.tx_add_range(oid, 4096), Err(PmemError::LogFull)));
    }

    #[test]
    fn ntx_mode_transactions_are_free() {
        let mut r = Runtime::new(RuntimeConfig::base().without_failure_safety());
        let pool = r.pool_create("p", 1 << 16).unwrap();
        let oid = r.pmalloc(pool, 16).unwrap();
        r.take_trace();
        r.tx_begin(pool).unwrap();
        r.tx_add_range(oid, 8).unwrap();
        r.tx_end().unwrap();
        assert!(r.trace().is_empty(), "NTX emits no logging traffic");
        assert_eq!(r.stats().tx_begun, 0);
    }

    #[test]
    fn cross_pool_transaction() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let p1 = rt.pool_create("p1", 1 << 16).unwrap();
        let p2 = rt.pool_create("p2", 1 << 16).unwrap();
        let a = rt.pmalloc(p1, 16).unwrap();
        let b = rt.pmalloc(p2, 16).unwrap();
        rt.write_u64(a, 1).unwrap();
        rt.write_u64(b, 2).unwrap();
        rt.persist(a, 8).unwrap();
        rt.persist(b, 8).unwrap();
        // Log lives in p1 but covers an update in p2.
        rt.tx_begin(p1).unwrap();
        rt.tx_add_range(a, 8).unwrap();
        rt.tx_add_range(b, 8).unwrap();
        rt.write_u64(a, 10).unwrap();
        rt.write_u64(b, 20).unwrap();
        let mut rt2 = rt.crash_and_recover(1).unwrap();
        assert_eq!(rt2.read_u64(a).unwrap(), 1);
        assert_eq!(rt2.read_u64(b).unwrap(), 2);
    }
}

//! Pool inspection and consistency checking — the `pmempool`-style
//! tooling a persistent-memory library ships with.
//!
//! [`Runtime::inspect_pool`] walks a pool's on-media structures (header,
//! allocator blocks, free list, undo-log area) and returns a
//! [`PoolReport`]; [`PoolReport::problems`] lists any structural
//! inconsistencies found. Inspection reads through the normal access
//! paths, so it works on any open pool — including read-only ones — and
//! after crash recovery.

use std::fmt;

use poat_core::{ObjectId, PoolId};

use crate::alloc::BLOCK_HEADER_BYTES;
use crate::error::PmemError;
use crate::pool::{header, log_layout, log_status, PoolMode, POOL_MAGIC};
use crate::runtime::Runtime;

/// What `inspect_pool` found in one pool.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// The pool's id.
    pub pool: PoolId,
    /// Its name in the durable directory.
    pub name: String,
    /// Access mode.
    pub mode: PoolMode,
    /// Total size in bytes.
    pub size: u64,
    /// Undo-log area size in bytes.
    pub log_bytes: u64,
    /// Header magic as read from media.
    pub magic: u64,
    /// Root object offset (0 = none).
    pub root_offset: u64,
    /// Bump pointer (first never-allocated offset).
    pub bump: u64,
    /// Blocks currently on the free list.
    pub free_blocks: u64,
    /// Bytes on the free list (block totals).
    pub free_bytes: u64,
    /// Live (allocated) blocks.
    pub live_blocks: u64,
    /// Bytes in live blocks (block totals).
    pub live_bytes: u64,
    /// Whether the undo log is marked active (an interrupted transaction
    /// that recovery would roll back).
    pub log_active: bool,
    /// Valid records currently in the log area.
    pub log_records: u64,
    /// Structural problems found (empty = consistent).
    pub problems: Vec<String>,
}

impl PoolReport {
    /// Whether the pool passed every structural check.
    pub fn is_consistent(&self) -> bool {
        self.problems.is_empty()
    }
}

impl fmt::Display for PoolReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pool {:>4}  {:<20} {:?}",
            self.pool, self.name, self.mode
        )?;
        writeln!(
            f,
            "  size {} B, log {} B, root @ {:#x}, bump @ {:#x}",
            self.size, self.log_bytes, self.root_offset, self.bump
        )?;
        writeln!(
            f,
            "  live: {} blocks / {} B   free: {} blocks / {} B",
            self.live_blocks, self.live_bytes, self.free_blocks, self.free_bytes
        )?;
        writeln!(
            f,
            "  log: {}, {} records",
            if self.log_active { "ACTIVE" } else { "clean" },
            self.log_records
        )?;
        if self.problems.is_empty() {
            write!(f, "  consistent")
        } else {
            for p in &self.problems {
                writeln!(f, "  PROBLEM: {p}")?;
            }
            Ok(())
        }
    }
}

impl Runtime {
    /// Walks `pool`'s on-media structures and reports their state.
    ///
    /// # Errors
    ///
    /// [`PmemError::PoolNotOpen`] if the pool is not mapped.
    pub fn inspect_pool(&mut self, pool: PoolId) -> Result<PoolReport, PmemError> {
        let p = self.pool_of(ObjectId::new(pool, 0))?;
        let name = self
            .dir()
            .by_id(pool)
            .map(|m| m.name.clone())
            .unwrap_or_else(|| "<unregistered>".to_owned());
        let mut problems = Vec::new();

        let h = self.direct_ref(pool, 0)?;
        let (magic, _) = self.read_u64_at(&h, header::MAGIC)?;
        if magic != POOL_MAGIC {
            problems.push(format!("bad magic {magic:#x}"));
        }
        let (hdr_size, _) = self.read_u64_at(&h, header::SIZE)?;
        if hdr_size != p.size {
            problems.push(format!("header size {hdr_size} != mapping size {}", p.size));
        }
        let (root_offset, _) = self.read_u64_at(&h, header::ROOT_OFF)?;
        let (bump, _) = self.read_u64_at(&h, header::BUMP)?;
        let (free_head, _) = self.read_u64_at(&h, header::FREE_HEAD)?;
        let (log_bytes, _) = self.read_u64_at(&h, header::LOG_BYTES)?;

        let data_start = header::SIZE_BYTES as u64 + log_bytes;
        if bump < data_start || bump > p.size {
            problems.push(format!("bump {bump:#x} outside data area"));
        }
        if root_offset != 0 && (root_offset < data_start || root_offset >= p.size) {
            problems.push(format!("root offset {root_offset:#x} outside data area"));
        }

        // Collect the free list (bounded by the block count to catch
        // cycles).
        let mut free_offsets = std::collections::HashSet::new();
        let mut free_bytes = 0u64;
        let mut cur = free_head;
        let max_blocks = (p.size / BLOCK_HEADER_BYTES as u64) + 1;
        while cur != 0 {
            if cur < data_start || cur >= bump {
                problems.push(format!("free-list entry {cur:#x} outside allocated region"));
                break;
            }
            if !free_offsets.insert(cur) {
                problems.push(format!("free-list cycle at {cur:#x}"));
                break;
            }
            if free_offsets.len() as u64 > max_blocks {
                problems.push("free list longer than possible".to_owned());
                break;
            }
            let b = self.direct_ref(pool, cur as u32)?;
            let (bsize, _) = self.read_u64_at(&b, 0)?;
            free_bytes += bsize;
            let (next, _) = self.read_u64_at(&b, BLOCK_HEADER_BYTES)?;
            cur = next;
        }

        // Walk all blocks from the data area to the bump pointer.
        let mut block_offsets = std::collections::HashSet::new();
        let mut live_blocks = 0u64;
        let mut live_bytes = 0u64;
        let mut off = data_start;
        while off + BLOCK_HEADER_BYTES as u64 <= bump {
            let b = self.direct_ref(pool, off as u32)?;
            let (bsize, _) = self.read_u64_at(&b, 0)?;
            if bsize < BLOCK_HEADER_BYTES as u64 + 8 || off + bsize > bump {
                problems.push(format!("corrupt block header at {off:#x}: size {bsize}"));
                break;
            }
            block_offsets.insert(off);
            if !free_offsets.contains(&off) {
                live_blocks += 1;
                live_bytes += bsize;
            }
            off += bsize;
        }
        if off != bump && problems.is_empty() {
            problems.push(format!("block walk ended at {off:#x}, bump is {bump:#x}"));
        }
        // Cross-checks between the free list, the block walk, and the
        // root (only meaningful when the walk itself completed): every
        // free-list entry must be a real block boundary, and the root
        // payload must start right past a block header — a dangling
        // ObjectID in either place means crash recovery left garbage.
        if off == bump {
            for f in &free_offsets {
                if !block_offsets.contains(f) {
                    problems.push(format!("free-list entry {f:#x} is not a block boundary"));
                }
            }
            if root_offset != 0
                && !block_offsets.contains(&(root_offset - BLOCK_HEADER_BYTES as u64))
            {
                problems.push(format!(
                    "root {root_offset:#x} does not start a block payload"
                ));
            }
        }

        // Log state.
        let (mut log_active, mut log_records) = (false, 0u64);
        if log_bytes > 0 {
            let log = self.direct_ref(pool, header::SIZE_BYTES)?;
            let (status, _) = self.read_u64_at(&log, log_layout::STATUS)?;
            let (state, tail) = log_status::decode(status);
            let tail = tail as u64;
            log_active = state != log_status::IDLE;
            if state > log_status::COMMITTED {
                problems.push(format!("log state corrupt: {state}"));
            }
            if tail != 0 && (tail < log_layout::RECORDS as u64 || tail > log_bytes) {
                problems.push(format!("log tail {tail:#x} outside log area"));
            } else if tail >= log_layout::RECORDS as u64 {
                // Count record headers without touching their payloads.
                let mut r = log_layout::RECORDS as u64;
                while r + 24 <= tail {
                    let (kind, _) = self.read_u64_at(&log, r as u32)?;
                    if !(1..=3).contains(&kind) {
                        problems.push(format!("log record {r:#x} has bad kind {kind}"));
                        break;
                    }
                    let (len, _) = self.read_u64_at(&log, r as u32 + 16)?;
                    log_records += 1;
                    r += 24 + len.div_ceil(8) * 8;
                }
            }
        }

        Ok(PoolReport {
            pool,
            name,
            mode: p.mode,
            size: p.size,
            log_bytes,
            magic,
            root_offset,
            bump,
            free_blocks: free_offsets.len() as u64,
            free_bytes,
            live_blocks,
            live_bytes,
            log_active,
            log_records,
            problems,
        })
    }

    /// Inspects every open pool (id order).
    ///
    /// # Errors
    ///
    /// Propagates inspection failures.
    pub fn inspect_all(&mut self) -> Result<Vec<PoolReport>, PmemError> {
        let mut ids: Vec<PoolId> = self.open_pool_ids();
        ids.sort();
        ids.into_iter().map(|p| self.inspect_pool(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeConfig;

    #[test]
    fn fresh_pool_is_consistent_and_empty() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let rep = rt.inspect_pool(pool).unwrap();
        assert!(rep.is_consistent(), "{:?}", rep.problems);
        assert_eq!(rep.live_blocks, 0);
        assert_eq!(rep.free_blocks, 0);
        assert_eq!(rep.magic, POOL_MAGIC);
        assert!(!rep.log_active);
        assert!(!rep.to_string().is_empty());
    }

    #[test]
    fn block_accounting_tracks_alloc_and_free() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let a = rt.pmalloc(pool, 100).unwrap();
        let _b = rt.pmalloc(pool, 100).unwrap();
        let _c = rt.pmalloc(pool, 100).unwrap();
        rt.pfree(a).unwrap();
        let rep = rt.inspect_pool(pool).unwrap();
        assert!(rep.is_consistent(), "{:?}", rep.problems);
        assert_eq!(rep.live_blocks, 2);
        assert_eq!(rep.free_blocks, 1);
        assert_eq!(
            rep.live_bytes + rep.free_bytes,
            rep.bump - (64 + rep.log_bytes)
        );
    }

    #[test]
    fn mid_transaction_log_is_visible() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 16).unwrap();
        rt.tx_begin(pool).unwrap();
        rt.tx_add_range(oid, 16).unwrap();
        let rep = rt.inspect_pool(pool).unwrap();
        assert!(rep.log_active);
        assert_eq!(rep.log_records, 1);
        rt.tx_end().unwrap();
        let rep = rt.inspect_pool(pool).unwrap();
        assert!(!rep.log_active);
        assert_eq!(rep.log_records, 0);
    }

    #[test]
    fn corruption_is_detected() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let a = rt.pmalloc(pool, 64).unwrap();
        // Overwrite the block header (simulates a stray write).
        let block = rt.direct_ref(pool, a.offset() - 8).unwrap();
        rt.write_u64_at(&block, 0, 3).unwrap();
        let rep = rt.inspect_pool(pool).unwrap();
        assert!(!rep.is_consistent());
        assert!(rep.problems.iter().any(|p| p.contains("corrupt block")));
    }

    #[test]
    fn inspect_all_covers_open_pools() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        rt.pool_create("a", 1 << 14).unwrap();
        rt.pool_create("b", 1 << 14).unwrap();
        let reps = rt.inspect_all().unwrap();
        assert_eq!(reps.len(), 2);
        assert!(reps.windows(2).all(|w| w[0].pool < w[1].pool));
    }

    #[test]
    fn read_only_pools_are_inspectable_but_not_writable() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt
            .pool_create_with_mode("ro", 1 << 14, PoolMode::ReadOnly)
            .unwrap();
        let rep = rt.inspect_pool(pool).unwrap();
        assert_eq!(rep.mode, PoolMode::ReadOnly);
        assert!(rep.is_consistent(), "{:?}", rep.problems);
        assert!(matches!(
            rt.pmalloc(pool, 8),
            Err(PmemError::ReadOnlyPool(_))
        ));
        assert!(matches!(rt.tx_begin(pool), Err(PmemError::ReadOnlyPool(_))));
    }
}

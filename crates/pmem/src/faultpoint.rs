//! Deterministic crash-point sweeping and fault injection — the campaign
//! engine behind the harness' `repro crash-sweep` subcommand.
//!
//! The persistence model makes every `clwb` and every `fence` a numbered
//! **persist boundary** (undo-log record appends are persists themselves,
//! so record boundaries are covered automatically). The engine:
//!
//! 1. [`enumerate_crash_points`] — runs a workload once with boundary
//!    recording armed and returns every boundary with its kind;
//! 2. [`run_crash_point`] — re-runs the workload with a crash armed at
//!    one boundary (optionally injecting torn lines or a dropped `clwb`),
//!    crashes the device when it trips, recovers, and scores the result
//!    with [`verify_recovery`] + [`state_digest`].
//!
//! Everything is seeded: the same `(point, seed, mode)` triple reproduces
//! the identical post-recovery state bit for bit, which is what makes
//! `--replay` useful for debugging a failing point.
//!
//! Campaign counters land in the global telemetry registry under
//! `pmem.faultpoint.*` (see `docs/METRICS.md`).

use poat_nvm::{BoundaryKind, FaultPlan};

use crate::error::PmemError;
use crate::runtime::Runtime;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// How a sweep perturbs the persistence stream at the crash point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InjectMode {
    /// Plain crash: each unpersisted line is lost or kept whole
    /// (seeded, 50/50).
    #[default]
    Clean,
    /// Torn crash: unpersisted lines land at 8-byte-word granularity,
    /// so a line can be half old, half new.
    Torn,
    /// Silently drops the Nth `clwb` (the point is interpreted as a
    /// *clwb-stream* ordinal, not a boundary ordinal), lets the workload
    /// run to completion — so later fences make the program believe the
    /// line is durable — and only then crashes. This *violates* the
    /// hardware persistence contract, so it is a negative control: the
    /// verifier is expected to be able to detect the damage, and
    /// detections are reported separately from violations.
    DropClwb,
}

impl InjectMode {
    /// Stable lower-case name (report rows, CLI flags).
    pub fn label(&self) -> &'static str {
        match self {
            InjectMode::Clean => "clean",
            InjectMode::Torn => "torn",
            InjectMode::DropClwb => "drop-clwb",
        }
    }
}

/// One enumerated crash point of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// 1-based persist-boundary ordinal (`clwb` and `fence` each count).
    pub index: u64,
    /// What kind of boundary this is.
    pub kind: BoundaryKind,
}

/// Outcome of crashing at one point and recovering.
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// Recovery-invariant violations (empty = consistent).
    pub violations: Vec<String>,
    /// FNV-1a digest of all pool contents after recovery (pools in id
    /// order; contents hold ObjectIDs, so the digest is ASLR-stable).
    pub digest: u64,
    /// Undo-log records applied (rolled back or redone) by recovery.
    pub undo_applied: u64,
    /// Whether the workload actually reached the armed point (false when
    /// the point ordinal exceeds the workload's boundary count).
    pub tripped: bool,
}

fn registry_counter(name: &str) -> poat_telemetry::Counter {
    poat_telemetry::global().counter(name)
}

/// Enumerates every persist boundary a workload crosses.
///
/// `build` constructs a fresh runtime (it must be deterministic: same
/// config, same ASLR seed); `workload` runs the scenario to completion.
///
/// # Errors
///
/// Propagates workload failures — the enumeration run is not supposed to
/// crash.
pub fn enumerate_crash_points<B, W>(build: B, mut workload: W) -> Result<Vec<CrashPoint>, PmemError>
where
    B: Fn() -> Runtime,
    W: FnMut(&mut Runtime) -> Result<(), PmemError>,
{
    let mut rt = build();
    rt.arm_fault_plan(FaultPlan {
        record_boundaries: true,
        ..FaultPlan::default()
    });
    workload(&mut rt)?;
    let points: Vec<CrashPoint> = rt
        .boundary_kinds()
        .iter()
        .enumerate()
        .map(|(i, &kind)| CrashPoint {
            index: i as u64 + 1,
            kind,
        })
        .collect();
    registry_counter("pmem.faultpoint.points").add(points.len() as u64);
    Ok(points)
}

/// Runs the workload with a crash armed at boundary `point`, crashes the
/// device with `crash_seed` when it trips, recovers, and scores the
/// post-recovery state.
///
/// Deterministic: the same `(point, crash_seed, mode)` triple on the same
/// `build`/`workload` pair produces a bit-identical [`PointOutcome`].
///
/// # Errors
///
/// Propagates workload failures other than the expected
/// [`PmemError::InjectedCrash`], and recovery failures.
pub fn run_crash_point<B, W>(
    build: B,
    mut workload: W,
    point: u64,
    crash_seed: u64,
    mode: InjectMode,
) -> Result<PointOutcome, PmemError>
where
    B: Fn() -> Runtime,
    W: FnMut(&mut Runtime) -> Result<(), PmemError>,
{
    let mut rt = build();
    let plan = match mode {
        InjectMode::Clean => FaultPlan {
            crash_after: Some(point),
            ..FaultPlan::default()
        },
        InjectMode::Torn => FaultPlan {
            crash_after: Some(point),
            torn_lines: true,
            ..FaultPlan::default()
        },
        // No early crash for the control: the workload must cross later
        // fences first, otherwise the dropped write-back is
        // indistinguishable from an ordinary unpersisted line and the
        // control cannot detect anything.
        InjectMode::DropClwb => FaultPlan {
            drop_clwb: Some(point),
            ..FaultPlan::default()
        },
    };
    rt.arm_fault_plan(plan);
    let undo_before = rt.stats().undo_applied;
    let tripped = match workload(&mut rt) {
        Err(PmemError::InjectedCrash) => true,
        Err(e) => return Err(e),
        Ok(()) => false,
    };
    if tripped {
        registry_counter("pmem.faultpoint.crashes").inc();
    }
    let mut rt = rt.crash_and_recover(crash_seed)?;
    let mut violations = verify_recovery(&mut rt)?;
    let digest = state_digest(&mut rt)?;
    if mode == InjectMode::DropClwb {
        // Structural checks alone rarely see a single reverted line (it
        // reads as a leak or a stale-but-valid link), so the control also
        // compares against a fault-free reference: the workload ran to
        // completion, so any durable-state divergence proves the dropped
        // write-back — which the program fenced — damaged the media.
        let mut reference = build();
        workload(&mut reference)?;
        let mut reference = reference.crash_and_recover(crash_seed)?;
        let expected = state_digest(&mut reference)?;
        if digest != expected {
            violations.push(format!(
                "durable state diverged from the fault-free run \
                 ({digest:016x} != {expected:016x})"
            ));
        }
    }
    if !violations.is_empty() {
        // Dropped clwbs legitimately corrupt state (the control proves
        // the verifier can see it); clean/torn crashes must never.
        let series = match mode {
            InjectMode::DropClwb => "pmem.faultpoint.detections",
            _ => "pmem.faultpoint.violations",
        };
        registry_counter(series).add(violations.len() as u64);
    }
    let undo_applied = rt.stats().undo_applied - undo_before;
    poat_telemetry::global()
        .histogram("pmem.faultpoint.undo_applied")
        .record(undo_applied);
    Ok(PointOutcome {
        violations,
        digest,
        undo_applied,
        tripped,
    })
}

/// Counts a deterministic re-execution of a single crash point (the
/// harness' `--replay` path) in the campaign telemetry.
pub fn record_replay() {
    registry_counter("pmem.faultpoint.replays").inc();
}

/// The reusable recovery-invariant verifier: structural consistency of
/// every open pool (header, allocator free list ⊆ block boundaries, root
/// reachable and block-aligned, undo log idle — see
/// [`Runtime::inspect_pool`]) plus runtime-level post-recovery checks.
///
/// Returns one human-readable line per violation (empty = consistent).
///
/// # Errors
///
/// Propagates inspection failures.
pub fn verify_recovery(rt: &mut Runtime) -> Result<Vec<String>, PmemError> {
    let mut violations = Vec::new();
    for rep in rt.inspect_all()? {
        for p in &rep.problems {
            violations.push(format!("pool {} ({}): {p}", rep.pool, rep.name));
        }
        if rep.log_active {
            violations.push(format!(
                "pool {} ({}): undo log not idle after recovery",
                rep.pool, rep.name
            ));
        }
    }
    if rt.in_transaction() {
        violations.push("transaction still active after recovery".to_owned());
    }
    Ok(violations)
}

/// FNV-1a digest over the contents of every open pool, in pool-id order.
///
/// Pool contents reference objects by ObjectID (never by virtual
/// address), so the digest is independent of the post-crash ASLR layout:
/// two recoveries of the same crash agree bit for bit.
///
/// # Errors
///
/// Propagates pool-read failures.
pub fn state_digest(rt: &mut Runtime) -> Result<u64, PmemError> {
    let mut ids = rt.open_pool_ids();
    ids.sort();
    let mut h = FNV_OFFSET;
    let mix = |h: &mut u64, b: u8| {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    };
    for id in ids {
        for b in id.raw().to_le_bytes() {
            mix(&mut h, b);
        }
        for b in rt.pool_bytes(id)? {
            mix(&mut h, b);
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig};

    fn build() -> Runtime {
        Runtime::new(RuntimeConfig {
            aslr_seed: 42,
            ..RuntimeConfig::default()
        })
    }

    /// A workload touching every crash-sensitive protocol: pool creation,
    /// root allocation, bump + free-list allocation, transactional
    /// updates, transactional alloc, and deferred frees.
    fn churn(rt: &mut Runtime) -> Result<(), PmemError> {
        let pool = rt.pool_create("p", 1 << 16)?;
        let root = rt.pool_root(pool, 16)?;
        let a = rt.pmalloc(pool, 24)?;
        rt.write_u64(a, 0xA)?;
        rt.persist(a, 8)?;
        rt.tx_begin(pool)?;
        rt.tx_add_range(root, 16)?;
        rt.write_u64(root, a.raw())?;
        rt.tx_end()?;
        rt.tx_begin(pool)?;
        let b = rt.tx_pmalloc(24)?;
        rt.write_u64(b, 0xB)?;
        rt.persist(b, 8)?;
        rt.tx_add_range(root, 8)?;
        rt.write_u64(root, b.raw())?;
        rt.tx_pfree(a)?;
        rt.tx_end()?;
        let c = rt.pmalloc(pool, 40)?;
        rt.pfree(c)?;
        Ok(())
    }

    #[test]
    fn enumeration_is_stable_and_fence_terminated() {
        let points = enumerate_crash_points(build, churn).unwrap();
        let again = enumerate_crash_points(build, churn).unwrap();
        assert_eq!(points, again);
        assert!(points.len() > 20, "expected a rich boundary stream");
        assert_eq!(
            points.last().unwrap().kind,
            poat_nvm::BoundaryKind::Fence,
            "every persist ends with a fence"
        );
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i as u64 + 1);
        }
    }

    /// The tentpole regression test: sweeping *every* crash point under
    /// both clean and torn injection must find zero invariant violations.
    /// Pre-fix, this fails: the old pmalloc/pfree persist ordering, the
    /// frees-before-commit `tx_end`, the two-word ACTIVE/TAIL log status,
    /// and the non-atomic `pool_create` each corrupt some point.
    #[test]
    fn full_sweep_clean_and_torn_has_no_violations() {
        let points = enumerate_crash_points(build, churn).unwrap();
        for mode in [InjectMode::Clean, InjectMode::Torn] {
            for p in &points {
                for seed in [1u64, 7] {
                    let out = run_crash_point(build, churn, p.index, seed, mode).unwrap();
                    assert!(out.tripped, "point {} never tripped", p.index);
                    assert!(
                        out.violations.is_empty(),
                        "point {} ({:?}, {} seed {seed}): {:?}",
                        p.index,
                        p.kind,
                        mode.label(),
                        out.violations
                    );
                }
            }
        }
    }

    #[test]
    fn replay_is_bit_for_bit_deterministic() {
        let points = enumerate_crash_points(build, churn).unwrap();
        let mid = points[points.len() / 2].index;
        for mode in [InjectMode::Clean, InjectMode::Torn, InjectMode::DropClwb] {
            let a = run_crash_point(build, churn, mid, 9, mode).unwrap();
            let b = run_crash_point(build, churn, mid, 9, mode).unwrap();
            assert_eq!(a.digest, b.digest, "{}", mode.label());
            assert_eq!(a.violations, b.violations);
            assert_eq!(a.undo_applied, b.undo_applied);
        }
    }

    /// The negative control has teeth: dropping write-backs the program
    /// later fences over must be *detectable* by the verifier somewhere
    /// in the stream — otherwise the invariant checks are vacuous.
    #[test]
    fn drop_clwb_control_is_detectable() {
        let points = enumerate_crash_points(build, churn).unwrap();
        let clwbs = points
            .iter()
            .filter(|p| p.kind == poat_nvm::BoundaryKind::Clwb)
            .count() as u64;
        assert!(clwbs > 10);
        let mut detections = 0;
        for n in 1..=clwbs {
            for seed in [1u64, 7] {
                let out = run_crash_point(build, churn, n, seed, InjectMode::DropClwb).unwrap();
                assert!(!out.tripped, "the control runs to completion");
                detections += out.violations.len();
            }
        }
        assert!(detections > 0, "no dropped clwb was ever detected");
    }

    #[test]
    fn point_beyond_end_runs_to_completion() {
        let points = enumerate_crash_points(build, churn).unwrap();
        let out = run_crash_point(
            build,
            churn,
            points.len() as u64 + 100,
            3,
            InjectMode::Clean,
        )
        .unwrap();
        assert!(!out.tripped);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn interrupted_pool_create_is_rolled_back() {
        // Crash inside the first persist of pool_create: the magic is
        // still zero, so recovery must unregister the pool entirely.
        let out = run_crash_point(build, churn, 1, 5, InjectMode::Clean).unwrap();
        assert!(out.tripped);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // And the name is recreatable afterwards (fresh engine run, but
        // verify directly too).
        let mut rt = build();
        rt.arm_fault_plan(poat_nvm::FaultPlan {
            crash_after: Some(1),
            ..Default::default()
        });
        assert!(matches!(
            rt.pool_create("p", 1 << 16),
            Err(PmemError::InjectedCrash)
        ));
        let mut rt = rt.crash_and_recover(5).unwrap();
        assert_eq!(rt.stats().creations_rolled_back, 1);
        assert!(!rt.dir().contains("p"), "uncommitted creation unregistered");
        rt.pool_create("p", 1 << 16).unwrap();
    }

    #[test]
    fn committed_tx_redo_is_idempotent_across_double_crash() {
        // Crash during recovery-adjacent windows: crash once at each
        // point, recover, then crash the recovered runtime again with
        // nothing pending — state must be stable (idempotent redo).
        let points = enumerate_crash_points(build, churn).unwrap();
        let stride = (points.len() / 8).max(1);
        for p in points.iter().step_by(stride) {
            let mut rt = build();
            rt.arm_fault_plan(poat_nvm::FaultPlan {
                crash_after: Some(p.index),
                ..Default::default()
            });
            match churn(&mut rt) {
                Err(PmemError::InjectedCrash) | Ok(()) => {}
                Err(e) => panic!("unexpected {e}"),
            }
            let mut once = rt.crash_and_recover(11).unwrap();
            let d1 = state_digest(&mut once).unwrap();
            let mut twice = once.crash_and_recover(13).unwrap();
            let d2 = state_digest(&mut twice).unwrap();
            assert_eq!(d1, d2, "point {}: second recovery changed state", p.index);
            assert!(verify_recovery(&mut twice).unwrap().is_empty());
        }
    }
}

//! The per-pool persistent allocator (`pmalloc`/`pfree`, paper §2.1.2).
//!
//! Objects are carved out of a pool's data area by a bump pointer plus a
//! LIFO first-fit free list. Every block is preceded by an 8-byte header
//! holding the block's total size; a free block reuses its first payload
//! word as the free-list link. Allocator metadata is reached through the
//! pool *handle* (NVML's `pop` pointer), so it costs plain loads/stores in
//! both BASE and OPT; only the user-supplied ObjectID of `pfree` needs a
//! translation, exactly as in NVML.
//!
//! Blocks are not split or coalesced: the paper's workloads allocate
//! uniform node sizes per structure, for which first-fit reuse is exact.
//! Allocator metadata is persisted whenever failure safety is enabled.

use poat_core::{ObjectId, PoolId};

use crate::costs;
use crate::error::PmemError;
use crate::pool::header;
use crate::runtime::Runtime;
use crate::trace::TraceOp;

/// Bytes of the per-block header (total block size).
pub const BLOCK_HEADER_BYTES: u32 = 8;

/// Allocation granularity: blocks are multiples of a cache line, so no
/// two allocations share a 64-byte persist unit (NVML's allocator uses
/// the same minimum granularity).
pub const BLOCK_GRANULE: u64 = 64;

fn block_total(size: u64) -> u64 {
    (BLOCK_HEADER_BYTES as u64 + size.max(8)).div_ceil(BLOCK_GRANULE) * BLOCK_GRANULE
}

impl Runtime {
    /// `pmalloc(pool, size)`: allocates `size` bytes in `pool`, returning
    /// the ObjectID of the first byte.
    ///
    /// # Errors
    ///
    /// [`PmemError::PoolFull`] when neither the free list nor the bump
    /// region can satisfy the request; [`PmemError::PoolNotOpen`] if the
    /// pool is not mapped.
    pub fn pmalloc(&mut self, pool: PoolId, size: u64) -> Result<ObjectId, PmemError> {
        let total = block_total(size);
        self.check_writable(ObjectId::new(pool, 0))?;
        let p = self.pool_of(ObjectId::new(pool, 0))?;
        self.trace.push(TraceOp::Exec {
            n: costs::PMALLOC_EXEC,
        });

        let h = self.direct_ref(pool, 0)?;
        // First-fit walk of the free list.
        let (mut cur, _) = self.read_u64_at(&h, header::FREE_HEAD)?;
        let mut prev: u64 = 0;
        let mut prev_dep = None;
        while cur != 0 {
            let mut block = self.direct_ref(pool, cur as u32)?;
            block.dep = prev_dep;
            let (bsize, _) = self.read_u64_at(&block, 0)?;
            let (next, ndep) = self.read_u64_at(&block, BLOCK_HEADER_BYTES)?;
            self.branch(false);
            if bsize >= total {
                // Unlink.
                if prev == 0 {
                    self.write_u64_at(&h, header::FREE_HEAD, next)?;
                    self.raw_persist_direct(pool, header::FREE_HEAD, 8)?;
                } else {
                    let pb = self.direct_ref(pool, prev as u32)?;
                    self.write_u64_at(&pb, BLOCK_HEADER_BYTES, next)?;
                    self.raw_persist_direct(pool, prev as u32 + BLOCK_HEADER_BYTES, 8)?;
                }
                self.stats.pmallocs += 1;
                return Ok(ObjectId::new(pool, cur as u32 + BLOCK_HEADER_BYTES));
            }
            prev = cur;
            prev_dep = Some(ndep);
            cur = next;
        }

        // Bump allocation.
        let (bump, _) = self.read_u64_at(&h, header::BUMP)?;
        if bump + total > p.size {
            return Err(PmemError::PoolFull {
                pool: pool.raw(),
                requested: size,
            });
        }
        // The block header must be durable before the bump advance
        // exposes it: the reverse order can crash with the new bump
        // durable but the header lost, leaving a corrupt block in the
        // walkable region. (A crash after the header persist merely
        // leaves an invisible formatted block past the old bump.)
        let block_off = bump as u32;
        let block = self.direct_ref(pool, block_off)?;
        self.write_u64_at(&block, 0, total)?;
        self.raw_persist_direct(pool, block_off, 8)?;
        self.write_u64_at(&h, header::BUMP, bump + total)?;
        self.raw_persist_direct(pool, header::BUMP, 8)?;
        self.stats.pmallocs += 1;
        Ok(ObjectId::new(pool, block_off + BLOCK_HEADER_BYTES))
    }

    /// `pfree(oid)`: returns the allocation at `oid` to its pool's free
    /// list.
    ///
    /// # Errors
    ///
    /// [`PmemError::BadFree`] if `oid` does not look like the start of a
    /// live allocation (block header missing or out of range).
    pub fn pfree(&mut self, oid: ObjectId) -> Result<(), PmemError> {
        self.check_writable(oid)?;
        let p = self.pool_of(oid)?;
        self.trace.push(TraceOp::Exec {
            n: costs::PFREE_EXEC,
        });
        let data_start = p.data_start();
        if oid.offset() < data_start + BLOCK_HEADER_BYTES {
            return Err(PmemError::BadFree(oid));
        }
        // The user-supplied ObjectID is translated once (as oid_direct /
        // nvld would); block and header metadata then go through the pool
        // handle.
        self.deref(oid, None)?;
        let block_off = oid.offset() - BLOCK_HEADER_BYTES;
        let block = self.direct_ref(p.id, block_off)?;
        let (bsize, _) = self.read_u64_at(&block, 0)?;
        if bsize < BLOCK_HEADER_BYTES as u64 + 8 || block_off as u64 + bsize > p.size {
            return Err(PmemError::BadFree(oid));
        }
        // Push onto the free list (link through the first payload word).
        // The link must be durable before the head is even *written*:
        // while the head line is dirty, any persist boundary may evict it
        // to media, and a crash that keeps the new head but loses the
        // link leaves the free list pointing through garbage.
        let h = self.direct_ref(p.id, 0)?;
        let (head, _) = self.read_u64_at(&h, header::FREE_HEAD)?;
        self.write_u64_at(&block, BLOCK_HEADER_BYTES, head)?;
        self.raw_persist_direct(p.id, oid.offset(), 8)?;
        self.write_u64_at(&h, header::FREE_HEAD, block_off as u64)?;
        self.raw_persist_direct(p.id, header::FREE_HEAD, 8)?;
        self.stats.pfrees += 1;
        Ok(())
    }

    /// Whether the block behind `oid` currently sits on its pool's free
    /// list (bounded walk). Committed-transaction redo uses this to keep
    /// deferred frees idempotent across repeated recoveries.
    pub(crate) fn block_is_free(&mut self, oid: ObjectId) -> Result<bool, PmemError> {
        let p = self.pool_of(oid)?;
        if oid.offset() < p.data_start() + BLOCK_HEADER_BYTES {
            return Err(PmemError::BadFree(oid));
        }
        let block_off = (oid.offset() - BLOCK_HEADER_BYTES) as u64;
        let h = self.direct_ref(p.id, 0)?;
        let (mut cur, _) = self.read_u64_at(&h, header::FREE_HEAD)?;
        let max_blocks = p.size / BLOCK_GRANULE + 1;
        let mut steps = 0u64;
        while cur != 0 && steps <= max_blocks {
            if cur == block_off {
                return Ok(true);
            }
            let b = self.direct_ref(p.id, cur as u32)?;
            let (next, _) = self.read_u64_at(&b, BLOCK_HEADER_BYTES)?;
            cur = next;
            steps += 1;
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{Runtime, RuntimeConfig};
    use crate::PmemError;

    fn rt() -> (Runtime, poat_core::PoolId) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        (rt, pool)
    }

    #[test]
    fn allocations_are_disjoint() {
        let (mut rt, pool) = rt();
        let a = rt.pmalloc(pool, 32).unwrap();
        let b = rt.pmalloc(pool, 32).unwrap();
        assert_ne!(a, b);
        rt.write_u64(a, 1).unwrap();
        rt.write_u64(b, 2).unwrap();
        assert_eq!(rt.read_u64(a).unwrap(), 1);
        assert_eq!(rt.read_u64(b).unwrap(), 2);
        // 32-byte objects: payloads at least 40 bytes apart (header).
        let gap = (b.offset() - a.offset()) as u64;
        assert!(gap >= 40, "gap {gap}");
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let (mut rt, pool) = rt();
        let a = rt.pmalloc(pool, 64).unwrap();
        let _b = rt.pmalloc(pool, 64).unwrap();
        rt.pfree(a).unwrap();
        let c = rt.pmalloc(pool, 64).unwrap();
        assert_eq!(c, a, "first-fit reuses the freed block");
    }

    #[test]
    fn first_fit_skips_small_blocks() {
        let (mut rt, pool) = rt();
        let small = rt.pmalloc(pool, 16).unwrap();
        let big = rt.pmalloc(pool, 128).unwrap();
        let _pin = rt.pmalloc(pool, 8).unwrap();
        rt.pfree(small).unwrap();
        rt.pfree(big).unwrap();
        // Needs 100 bytes: the small block (head of LIFO list after big...
        // order: list head = big, then small). Allocate 100 → takes big.
        let c = rt.pmalloc(pool, 100).unwrap();
        assert_eq!(c, big);
        // And 16 still satisfiable from the small block.
        let d = rt.pmalloc(pool, 16).unwrap();
        assert_eq!(d, small);
    }

    #[test]
    fn pool_exhaustion_errors() {
        let mut r = Runtime::new(RuntimeConfig::default());
        let pool = r.pool_create("tiny", 4096 * 3).unwrap();
        let cap = r.pool_data_capacity(pool).unwrap();
        assert!(r.pmalloc(pool, cap).is_err(), "header must not fit");
        let mut got = 0u64;
        loop {
            match r.pmalloc(pool, 256) {
                Ok(_) => got += 1,
                Err(PmemError::PoolFull { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(got >= 2, "got {got}");
    }

    #[test]
    fn bad_free_detected() {
        let (mut rt, pool) = rt();
        let a = rt.pmalloc(pool, 32).unwrap();
        assert!(matches!(rt.pfree(a.add(8)), Err(PmemError::BadFree(_))));
        assert!(matches!(
            rt.pfree(poat_core::ObjectId::new(pool, 4)),
            Err(PmemError::BadFree(_))
        ));
    }

    #[test]
    fn zero_size_allocation_rounds_up() {
        let (mut rt, pool) = rt();
        let a = rt.pmalloc(pool, 0).unwrap();
        rt.write_u64(a, 9).unwrap();
        assert_eq!(rt.read_u64(a).unwrap(), 9);
    }

    #[test]
    fn many_alloc_free_cycles_stay_bounded() {
        let (mut rt, pool) = rt();
        let first = rt.pmalloc(pool, 48).unwrap();
        rt.pfree(first).unwrap();
        for _ in 0..1000 {
            let o = rt.pmalloc(pool, 48).unwrap();
            assert_eq!(o, first, "steady-state reuse, no growth");
            rt.pfree(o).unwrap();
        }
        assert_eq!(rt.stats().pmallocs, 1001);
        assert_eq!(rt.stats().pfrees, 1001);
    }

    #[test]
    fn allocator_survives_reopen() {
        let (mut rt, pool) = rt();
        let a = rt.pmalloc(pool, 32).unwrap();
        rt.pool_close(pool).unwrap();
        rt.pool_open("p").unwrap();
        let b = rt.pmalloc(pool, 32).unwrap();
        assert_ne!(a, b, "bump pointer was durable");
    }
}

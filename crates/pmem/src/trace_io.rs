//! Trace serialization: save a recorded instruction stream to disk and
//! replay it later without re-running the workload ("record once,
//! simulate many" — the workflow trace-driven simulators live by).
//!
//! The on-disk layout is the in-memory columnar encoding (see the
//! [`crate::trace`] module docs) with a fixed header in front, so
//! serialization is a straight copy of the two columns — no per-op
//! re-encoding on either side:
//!
//! ```text
//! magic "POATTRC2" (8 B) | op count (u64 LE) | payload length (u64 LE)
//! tag spine   (op count bytes)
//! payload     (payload length bytes)
//! ```
//!
//! Both [`save`] and [`load`] move the columns through a fixed-size
//! buffer (`CHUNK_BYTES`, 1 MiB), so I/O never stages a second whole-file
//! copy next to the trace: peak memory is the encoded trace plus one
//! chunk. [`load`] validates the whole stream eagerly (every varint,
//! flag combination, and dependency backreference) via
//! [`Trace::from_encoded`], so a loaded trace replays infallibly.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use crate::trace::{Trace, TraceCorruption};

const MAGIC: &[u8; 8] = b"POATTRC2";
const HEADER_BYTES: usize = 8 + 8 + 8;

/// Size of the staging buffer `save`/`load` stream the columns through.
/// 1 MiB keeps syscall counts low while bounding transient memory.
const CHUNK_BYTES: usize = 1 << 20;

/// Errors decoding a serialized trace.
#[derive(Debug)]
pub enum TraceDecodeError {
    /// The magic header did not match.
    BadMagic,
    /// The input ended before the header or columns were complete.
    Truncated,
    /// A tag byte carries flag bits undefined for its kind.
    BadTag(u8),
    /// The columns are internally inconsistent (bad varint, dangling
    /// dependency backreference, or leftover payload bytes).
    Corrupt(TraceCorruption),
    /// An underlying I/O failure (file read/write).
    Io(std::io::Error),
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "not a poat trace (bad magic)"),
            TraceDecodeError::Truncated => write!(f, "trace truncated"),
            TraceDecodeError::BadTag(t) => write!(f, "bad op tag {t:#04x}"),
            TraceDecodeError::Corrupt(c) => write!(f, "corrupt trace: {c:?}"),
            TraceDecodeError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for TraceDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceDecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceDecodeError {
    fn from(e: std::io::Error) -> Self {
        TraceDecodeError::Io(e)
    }
}

impl From<TraceCorruption> for TraceDecodeError {
    fn from(c: TraceCorruption) -> Self {
        match c {
            TraceCorruption::Truncated => TraceDecodeError::Truncated,
            TraceCorruption::BadTag(t) => TraceDecodeError::BadTag(t),
            other => TraceDecodeError::Corrupt(other),
        }
    }
}

fn header_for(trace: &Trace) -> ([u8; HEADER_BYTES], usize, usize) {
    let (tags, data) = trace.encoded_columns();
    let mut header = [0u8; HEADER_BYTES];
    header[..8].copy_from_slice(MAGIC);
    header[8..16].copy_from_slice(&(tags.len() as u64).to_le_bytes());
    header[16..24].copy_from_slice(&(data.len() as u64).to_le_bytes());
    (header, tags.len(), data.len())
}

/// Serializes a trace to its binary representation in memory.
pub fn to_bytes(trace: &Trace) -> Vec<u8> {
    let (header, tags_len, data_len) = header_for(trace);
    let (tags, data) = trace.encoded_columns();
    let mut out = Vec::with_capacity(HEADER_BYTES + tags_len + data_len);
    out.extend_from_slice(&header);
    out.extend_from_slice(tags);
    out.extend_from_slice(data);
    out
}

/// Decodes a trace from its binary representation, validating every op.
///
/// # Errors
///
/// [`TraceDecodeError`] on malformed input.
pub fn from_bytes(data: &[u8]) -> Result<Trace, TraceDecodeError> {
    if data.len() < HEADER_BYTES {
        return Err(TraceDecodeError::Truncated);
    }
    if &data[..8] != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let ops = u64::from_le_bytes(data[8..16].try_into().expect("8-byte slice"));
    let payload = u64::from_le_bytes(data[16..24].try_into().expect("8-byte slice"));
    let body = &data[HEADER_BYTES..];
    let (ops, payload) = columns_extent(ops, payload, body.len() as u64)?;
    let tags = body[..ops].to_vec();
    let payload = body[ops..ops + payload].to_vec();
    Ok(Trace::from_encoded(tags, payload)?)
}

/// Checks the header's column lengths against the available body bytes,
/// returning them as in-range `usize`s.
fn columns_extent(
    ops: u64,
    payload: u64,
    available: u64,
) -> Result<(usize, usize), TraceDecodeError> {
    let total = ops
        .checked_add(payload)
        .ok_or(TraceDecodeError::Truncated)?;
    if total > available {
        return Err(TraceDecodeError::Truncated);
    }
    if total < available {
        return Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData));
    }
    Ok((ops as usize, payload as usize))
}

/// Writes a trace to a file, streaming the columns in
/// `CHUNK_BYTES`-sized chunks.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> std::io::Result<()> {
    let (header, tags_len, data_len) = header_for(trace);
    let (tags, data) = trace.encoded_columns();
    let mut f = std::fs::File::create(path)?;
    f.write_all(&header)?;
    for chunk in tags.chunks(CHUNK_BYTES) {
        f.write_all(chunk)?;
    }
    for chunk in data.chunks(CHUNK_BYTES) {
        f.write_all(chunk)?;
    }
    poat_telemetry::global()
        .counter("pmem.trace.saved_bytes")
        .add((HEADER_BYTES + tags_len + data_len) as u64);
    Ok(())
}

/// Reads exactly `len` bytes into a fresh `Vec`, pulling from the reader
/// in [`CHUNK_BYTES`]-sized chunks so no second whole-column buffer is
/// ever staged.
fn read_column(f: &mut impl Read, len: usize) -> Result<Vec<u8>, TraceDecodeError> {
    let mut col = Vec::with_capacity(len);
    let mut buf = vec![0u8; CHUNK_BYTES.min(len.max(1))];
    while col.len() < len {
        let want = (len - col.len()).min(buf.len());
        let got = f.read(&mut buf[..want])?;
        if got == 0 {
            return Err(TraceDecodeError::Truncated);
        }
        col.extend_from_slice(&buf[..got]);
    }
    Ok(col)
}

/// Reads a trace from a file, streaming and validating it.
///
/// # Errors
///
/// [`TraceDecodeError`] on I/O failure or malformed contents.
pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceDecodeError> {
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; HEADER_BYTES];
    f.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceDecodeError::Truncated
        } else {
            TraceDecodeError::Io(e)
        }
    })?;
    if &header[..8] != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let ops = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    let payload = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
    let file_body = f
        .metadata()
        .map(|m| m.len().saturating_sub(HEADER_BYTES as u64))
        .unwrap_or(u64::MAX);
    let (ops_len, payload_len) = columns_extent(ops, payload, file_body)?;
    let tags = read_column(&mut f, ops_len)?;
    let data = read_column(&mut f, payload_len)?;
    let trace = Trace::from_encoded(tags, data)?;
    poat_telemetry::global()
        .counter("pmem.trace.loaded_bytes")
        .add((HEADER_BYTES + ops_len + payload_len) as u64);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig};
    use crate::trace::TraceOp;
    use poat_core::{ObjectId, VirtAddr};
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        rt.tx_begin(pool).unwrap();
        rt.tx_add_range(oid, 16).unwrap();
        rt.write_u64(oid, 9).unwrap();
        rt.tx_end().unwrap();
        rt.branch(true);
        rt.exec(7);
        rt.take_trace()
    }

    #[test]
    fn roundtrip_preserves_every_op() {
        let t = sample_trace();
        let decoded = from_bytes(&to_bytes(&t)).unwrap();
        assert!(t.ops().eq(decoded.ops()));
        assert_eq!(t.summary(), decoded.summary());
        assert_eq!(t, decoded);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("poat-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.poattrc");
        save(&t, &path).unwrap();
        let decoded = load(&path).unwrap();
        assert!(t.ops().eq(decoded.ops()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(matches!(
            from_bytes(b"short"),
            Err(TraceDecodeError::Truncated)
        ));
        assert!(matches!(
            from_bytes(b"NOTATRACE\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0"),
            Err(TraceDecodeError::BadMagic)
        ));
        // Header promises more column bytes than the body holds.
        let mut data = to_bytes(&sample_trace());
        data.truncate(data.len() - 3);
        assert!(matches!(
            from_bytes(&data),
            Err(TraceDecodeError::Truncated)
        ));
        // Extra bytes after the columns.
        let mut data = to_bytes(&sample_trace());
        data.push(0);
        assert!(matches!(
            from_bytes(&data),
            Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData))
        ));
        // Column lengths that overflow u64 when summed.
        let mut huge = MAGIC.to_vec();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes(&huge),
            Err(TraceDecodeError::Truncated)
        ));
    }

    #[test]
    fn bad_tag_bits_rejected() {
        // Corrupt the first tag byte: a Fence (kind 6) with an undefined
        // flag bit set. Find a fence in the sample trace's spine.
        let t = sample_trace();
        let mut data = to_bytes(&t);
        let spine = HEADER_BYTES..HEADER_BYTES + t.len();
        let fence_at = data[spine]
            .iter()
            .position(|&b| b == 6)
            .expect("sample trace fences");
        data[HEADER_BYTES + fence_at] = 6 | (1 << 3);
        assert!(matches!(
            from_bytes(&data),
            Err(TraceDecodeError::BadTag(t)) if t == 6 | (1 << 3)
        ));
    }

    #[test]
    fn truncated_payload_column_rejected_on_file_load() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("poat-trace-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.poattrc");
        let mut bytes = to_bytes(&t);
        bytes.truncate(bytes.len() - 1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(TraceDecodeError::Truncated)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An arbitrary *valid* op: deps are generated as backreferences
    /// relative to the op's position, so they always point at an earlier
    /// op (the `Trace::push` contract; forward deps are normalized away
    /// and so would not survive a round-trip comparison).
    fn arb_ops() -> impl Strategy<Value = Vec<TraceOp>> {
        prop::collection::vec(
            (
                0u8..8,
                any::<u64>(),
                any::<u64>(),
                any::<u32>(),
                any::<u64>(),
            ),
            0..200,
        )
        .prop_map(|raw| {
            let mut ops = Vec::with_capacity(raw.len());
            for (tag, a, b, n, d) in raw {
                let id = ops.len() as u64;
                let dep = if d % 3 == 0 || id == 0 {
                    None
                } else {
                    Some(id - 1 - (d % id.min(16)))
                };
                let op = match tag {
                    0 => TraceOp::Exec { n: n.max(1) },
                    1 => TraceOp::Load {
                        va: VirtAddr::new(a),
                        dep,
                    },
                    2 => TraceOp::Store {
                        va: VirtAddr::new(a),
                        dep,
                    },
                    3 => TraceOp::NvLoad {
                        oid: ObjectId::from_raw(b),
                        va: VirtAddr::new(a),
                        dep,
                    },
                    4 => TraceOp::NvStore {
                        oid: ObjectId::from_raw(b),
                        va: VirtAddr::new(a),
                        dep,
                    },
                    5 => TraceOp::Clwb {
                        va: VirtAddr::new(a),
                    },
                    6 => TraceOp::Fence,
                    _ => TraceOp::Branch {
                        mispredicted: n % 2 == 0,
                    },
                };
                ops.push(op);
            }
            ops
        })
    }

    proptest! {
        #[test]
        fn arbitrary_traces_roundtrip(ops in arb_ops()) {
            let t: Trace = ops.iter().copied().collect();
            // In-memory encode → decode.
            let decoded = from_bytes(&to_bytes(&t)).unwrap();
            prop_assert!(t.ops().eq(decoded.ops()));
            prop_assert_eq!(t.summary(), decoded.summary());
            // The decoded ops also match the (coalescing-normalized)
            // pushed sequence: re-pushing them reproduces the trace.
            let repushed: Trace = decoded.ops().collect();
            prop_assert_eq!(&repushed, &t);
        }

        #[test]
        fn truncating_any_prefix_never_panics(ops in arb_ops(), cut in 0usize..64) {
            let t: Trace = ops.iter().copied().collect();
            let mut bytes = to_bytes(&t);
            let keep = bytes.len().saturating_sub(cut);
            bytes.truncate(keep);
            // Must either decode (cut == 0) or error cleanly; never panic.
            let _ = from_bytes(&bytes);
        }
    }
}

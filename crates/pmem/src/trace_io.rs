//! Trace serialization: save a recorded instruction stream to disk and
//! replay it later without re-running the workload ("record once,
//! simulate many" — the workflow trace-driven simulators live by).
//!
//! The on-disk layout is the in-memory columnar encoding (see the
//! [`crate::trace`] module docs) with a fixed header in front, so
//! serialization is a straight copy of the two columns — no per-op
//! re-encoding on either side:
//!
//! ```text
//! magic "POATTRC2" (8 B) | op count (u64 LE) | payload length (u64 LE)
//! tag spine   (op count bytes)
//! payload     (payload length bytes)
//! ```
//!
//! Both [`save`] and [`load`] move the columns through a fixed-size
//! buffer (`CHUNK_BYTES`, 1 MiB), so I/O never stages a second whole-file
//! copy next to the trace: peak memory is the encoded trace plus one
//! chunk. [`load`] validates the whole stream eagerly (every varint,
//! flag combination, and dependency backreference) via
//! [`Trace::from_encoded`], so a loaded trace replays infallibly.
//!
//! The second, chunked layout (`POATTRC3`, written by [`save_chunked`])
//! exists for **zero-copy replay**: [`MmapTrace::open`] memory-maps the
//! file, verifies only chunk framing, lengths, and checksums up front
//! (the structural pass), and decodes ops lazily out of the mapping with
//! op-level validation fused into first touch — no second whole-column
//! buffer ever exists. Each chunk header carries the delta-decoder
//! snapshot at its start, so chunks double as the chunk-aligned work
//! units of sharded replay (see `Trace::chunk_bounds`). DESIGN.md §5a
//! specifies both byte layouts.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::mmap::Mapping;
use crate::trace::{get_varint, put_varint, CheckedOps, Trace, TraceCorruption, TraceOp};

const MAGIC: &[u8; 8] = b"POATTRC2";
const HEADER_BYTES: usize = 8 + 8 + 8;

/// Magic of the chunked, memory-mappable layout (see [`save_chunked`]).
const MAGIC_CHUNKED: &[u8; 8] = b"POATTRC3";
/// Fixed part of the chunked header: magic + chunk count + total ops.
const CHUNKED_HEADER_BYTES: usize = 8 + 8 + 8;

/// Default ops per chunk for [`save_chunked`]: big enough that chunk
/// headers are noise (< 0.01% of the file), small enough that full-scale
/// traces split into enough chunk-aligned shards to occupy the worker
/// pool.
pub const DEFAULT_CHUNK_OPS: usize = 1 << 20;

/// Size of the staging buffer `save`/`load` stream the columns through.
/// 1 MiB keeps syscall counts low while bounding transient memory.
const CHUNK_BYTES: usize = 1 << 20;

/// Errors decoding a serialized trace.
#[derive(Debug)]
pub enum TraceDecodeError {
    /// The magic header did not match.
    BadMagic,
    /// The input ended before the header or columns were complete.
    Truncated,
    /// A tag byte carries flag bits undefined for its kind.
    BadTag(u8),
    /// The columns are internally inconsistent (bad varint, dangling
    /// dependency backreference, or leftover payload bytes).
    Corrupt(TraceCorruption),
    /// A chunk's stored checksum does not match its bytes (chunked
    /// layout only; the index is the zero-based chunk).
    ChecksumMismatch(usize),
    /// An underlying I/O failure (file read/write).
    Io(std::io::Error),
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "not a poat trace (bad magic)"),
            TraceDecodeError::Truncated => write!(f, "trace truncated"),
            TraceDecodeError::BadTag(t) => write!(f, "bad op tag {t:#04x}"),
            TraceDecodeError::Corrupt(c) => write!(f, "corrupt trace: {c:?}"),
            TraceDecodeError::ChecksumMismatch(i) => {
                write!(f, "chunk {i} checksum mismatch")
            }
            TraceDecodeError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for TraceDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceDecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceDecodeError {
    fn from(e: std::io::Error) -> Self {
        TraceDecodeError::Io(e)
    }
}

impl From<TraceCorruption> for TraceDecodeError {
    fn from(c: TraceCorruption) -> Self {
        match c {
            TraceCorruption::Truncated => TraceDecodeError::Truncated,
            TraceCorruption::BadTag(t) => TraceDecodeError::BadTag(t),
            other => TraceDecodeError::Corrupt(other),
        }
    }
}

fn header_for(trace: &Trace) -> ([u8; HEADER_BYTES], usize, usize) {
    let (tags, data) = trace.encoded_columns();
    let mut header = [0u8; HEADER_BYTES];
    header[..8].copy_from_slice(MAGIC);
    header[8..16].copy_from_slice(&(tags.len() as u64).to_le_bytes());
    header[16..24].copy_from_slice(&(data.len() as u64).to_le_bytes());
    (header, tags.len(), data.len())
}

/// Serializes a trace to its binary representation in memory.
pub fn to_bytes(trace: &Trace) -> Vec<u8> {
    let (header, tags_len, data_len) = header_for(trace);
    let (tags, data) = trace.encoded_columns();
    let mut out = Vec::with_capacity(HEADER_BYTES + tags_len + data_len);
    out.extend_from_slice(&header);
    out.extend_from_slice(tags);
    out.extend_from_slice(data);
    out
}

/// Decodes a trace from its binary representation, validating every op.
///
/// # Errors
///
/// [`TraceDecodeError`] on malformed input.
pub fn from_bytes(data: &[u8]) -> Result<Trace, TraceDecodeError> {
    if data.len() < HEADER_BYTES {
        return Err(TraceDecodeError::Truncated);
    }
    if &data[..8] != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let ops = u64::from_le_bytes(data[8..16].try_into().expect("8-byte slice"));
    let payload = u64::from_le_bytes(data[16..24].try_into().expect("8-byte slice"));
    let body = &data[HEADER_BYTES..];
    let (ops, payload) = columns_extent(ops, payload, body.len() as u64)?;
    let tags = body[..ops].to_vec();
    let payload = body[ops..ops + payload].to_vec();
    Ok(Trace::from_encoded(tags, payload)?)
}

/// Checks the header's column lengths against the available body bytes,
/// returning them as in-range `usize`s.
fn columns_extent(
    ops: u64,
    payload: u64,
    available: u64,
) -> Result<(usize, usize), TraceDecodeError> {
    let total = ops
        .checked_add(payload)
        .ok_or(TraceDecodeError::Truncated)?;
    if total > available {
        return Err(TraceDecodeError::Truncated);
    }
    if total < available {
        return Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData));
    }
    Ok((ops as usize, payload as usize))
}

/// Writes a trace to a file, streaming the columns in
/// `CHUNK_BYTES`-sized chunks.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> std::io::Result<()> {
    let (header, tags_len, data_len) = header_for(trace);
    let (tags, data) = trace.encoded_columns();
    let mut f = std::fs::File::create(path)?;
    f.write_all(&header)?;
    for chunk in tags.chunks(CHUNK_BYTES) {
        f.write_all(chunk)?;
    }
    for chunk in data.chunks(CHUNK_BYTES) {
        f.write_all(chunk)?;
    }
    poat_telemetry::global()
        .counter("pmem.trace.saved_bytes")
        .add((HEADER_BYTES + tags_len + data_len) as u64);
    Ok(())
}

/// Reads exactly `len` bytes into a fresh `Vec`, pulling from the reader
/// in [`CHUNK_BYTES`]-sized chunks so no second whole-column buffer is
/// ever staged.
fn read_column(f: &mut impl Read, len: usize) -> Result<Vec<u8>, TraceDecodeError> {
    let mut col = Vec::with_capacity(len);
    let mut buf = vec![0u8; CHUNK_BYTES.min(len.max(1))];
    while col.len() < len {
        let want = (len - col.len()).min(buf.len());
        let got = f.read(&mut buf[..want])?;
        if got == 0 {
            return Err(TraceDecodeError::Truncated);
        }
        col.extend_from_slice(&buf[..got]);
    }
    Ok(col)
}

/// Reads a trace from a file, streaming and validating it. Accepts both
/// the flat legacy layout and the chunked layout (the latter is opened
/// via [`MmapTrace`] and materialized, so `load` stays the universal
/// eager reader).
///
/// # Errors
///
/// [`TraceDecodeError`] on I/O failure or malformed contents.
pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceDecodeError> {
    let path = path.as_ref();
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; HEADER_BYTES];
    f.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceDecodeError::Truncated
        } else {
            TraceDecodeError::Io(e)
        }
    })?;
    if &header[..8] == MAGIC_CHUNKED {
        drop(f);
        return MmapTrace::open(path)?.to_trace();
    }
    if &header[..8] != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let ops = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    let payload = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
    let file_body = f
        .metadata()
        .map(|m| m.len().saturating_sub(HEADER_BYTES as u64))
        .unwrap_or(u64::MAX);
    let (ops_len, payload_len) = columns_extent(ops, payload, file_body)?;
    let tags = read_column(&mut f, ops_len)?;
    let data = read_column(&mut f, payload_len)?;
    let trace = Trace::from_encoded(tags, data)?;
    poat_telemetry::global()
        .counter("pmem.trace.loaded_bytes")
        .add((HEADER_BYTES + ops_len + payload_len) as u64);
    Ok(trace)
}

// ---------------------------------------------------------------------
// Chunked layout + memory-mapped reader
// ---------------------------------------------------------------------
//
// The chunked layout splits the columns into independently decodable
// chunks so a reader can (a) validate *structure* — framing, lengths,
// checksums — without decoding a single op, and (b) decode any chunk
// without replaying the stream before it (each header carries the
// delta-decoder snapshot at its chunk start, mirroring
// `trace::ChunkBounds`):
//
// ```text
// magic "POATTRC3" (8 B) | chunk count (u64 LE) | total ops (u64 LE)
// per chunk:
//   ops (varint) | payload len (varint)
//   prev_va (varint) | prev_oid (varint)       -- delta bases at entry
//   checksum (u64 LE, FNV-1a over the four varints ++ tags ++ payload)
//   tag spine (ops bytes) | payload (payload-len bytes)
// ```
//
// This is the eyros discipline (SNIPPETS.md §2) applied to a columnar
// stream: offsets and lengths up front, bulk bytes addressed in place,
// so a memory-mapped file needs no second whole-column buffer.

/// FNV-1a 64 over the concatenation of `parts`.
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Serializes a trace into the chunked layout in memory (the byte-exact
/// content [`save_chunked`] writes).
pub fn to_chunked_bytes(trace: &Trace, ops_per_chunk: usize) -> Vec<u8> {
    let (tags, data) = trace.encoded_columns();
    let bounds = trace.chunk_bounds(ops_per_chunk);
    let mut out =
        Vec::with_capacity(CHUNKED_HEADER_BYTES + tags.len() + data.len() + bounds.len() * 24);
    out.extend_from_slice(MAGIC_CHUNKED);
    out.extend_from_slice(&(bounds.len() as u64).to_le_bytes());
    out.extend_from_slice(&(tags.len() as u64).to_le_bytes());
    for b in &bounds {
        let chunk_tags = &tags[b.first_op as usize..b.first_op as usize + b.ops];
        let chunk_data = &data[b.payload_off..b.payload_off + b.payload_len];
        let mut fields = Vec::with_capacity(40);
        put_varint(&mut fields, b.ops as u64);
        put_varint(&mut fields, b.payload_len as u64);
        put_varint(&mut fields, b.prev_va);
        put_varint(&mut fields, b.prev_oid);
        out.extend_from_slice(&fields);
        out.extend_from_slice(&fnv1a64(&[&fields, chunk_tags, chunk_data]).to_le_bytes());
        out.extend_from_slice(chunk_tags);
        out.extend_from_slice(chunk_data);
    }
    out
}

/// Writes a trace to a file in the chunked, memory-mappable layout,
/// streaming chunk by chunk (peak transient memory is one chunk's
/// header, never a second copy of the columns).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_chunked(
    trace: &Trace,
    path: impl AsRef<Path>,
    ops_per_chunk: usize,
) -> std::io::Result<()> {
    let (tags, data) = trace.encoded_columns();
    let bounds = trace.chunk_bounds(ops_per_chunk);
    let mut f = std::fs::File::create(path)?;
    let mut header = Vec::with_capacity(CHUNKED_HEADER_BYTES);
    header.extend_from_slice(MAGIC_CHUNKED);
    header.extend_from_slice(&(bounds.len() as u64).to_le_bytes());
    header.extend_from_slice(&(tags.len() as u64).to_le_bytes());
    f.write_all(&header)?;
    let mut written = header.len();
    for b in &bounds {
        let chunk_tags = &tags[b.first_op as usize..b.first_op as usize + b.ops];
        let chunk_data = &data[b.payload_off..b.payload_off + b.payload_len];
        let mut chunk_header = Vec::with_capacity(48);
        put_varint(&mut chunk_header, b.ops as u64);
        put_varint(&mut chunk_header, b.payload_len as u64);
        put_varint(&mut chunk_header, b.prev_va);
        put_varint(&mut chunk_header, b.prev_oid);
        let checksum = fnv1a64(&[&chunk_header, chunk_tags, chunk_data]);
        chunk_header.extend_from_slice(&checksum.to_le_bytes());
        f.write_all(&chunk_header)?;
        for piece in chunk_tags.chunks(CHUNK_BYTES) {
            f.write_all(piece)?;
        }
        for piece in chunk_data.chunks(CHUNK_BYTES) {
            f.write_all(piece)?;
        }
        written += chunk_header.len() + chunk_tags.len() + chunk_data.len();
    }
    poat_telemetry::global()
        .counter("pmem.trace.saved_bytes")
        .add(written as u64);
    Ok(())
}

/// One chunk's resolved location within the mapped file.
#[derive(Clone, Copy, Debug)]
struct ChunkRegion {
    /// Absolute op id of the chunk's first op.
    first_op: u64,
    /// Op (= tag byte) count.
    ops: usize,
    /// Byte offset of the tag spine within the file.
    tag_off: usize,
    /// Byte offset of the payload within the file.
    payload_off: usize,
    /// Payload byte length.
    payload_len: usize,
    /// Delta base for virtual addresses at chunk entry.
    prev_va: u64,
    /// Delta base for ObjectIDs at chunk entry.
    prev_oid: u64,
}

/// A trace opened zero-copy from its on-disk bytes: ops decode lazily,
/// straight out of the mapping.
///
/// Opening performs only the **structural pass** — magic, chunk
/// framing, column lengths, and per-chunk checksums are verified with
/// typed errors, without decoding (or copying) a single op. Op-level
/// validation (varints, flag bits, dependency backreferences) is fused
/// into [`MmapTrace::checked_ops`] and happens per chunk on first
/// touch; a chunk that streams through cleanly is remembered as
/// validated ([`MmapTrace::chunk_validated`]).
///
/// Both layouts open: the chunked `POATTRC3` file natively, and a
/// legacy flat `POATTRC2` file as a single unchunked segment (no
/// checksum to verify — its structural pass is the header length
/// check).
#[derive(Debug)]
pub struct MmapTrace {
    map: Mapping,
    chunks: Vec<ChunkRegion>,
    total_ops: usize,
    validated: Vec<AtomicBool>,
}

impl MmapTrace {
    /// Memory-maps `path` and runs the structural pass.
    ///
    /// # Errors
    ///
    /// I/O failures, plus every framing defect as its own
    /// [`TraceDecodeError`]: a torn chunk header is `Truncated`, an
    /// overlong varint length is `Corrupt(BadVarint)`, a chunk whose
    /// declared extent overruns the file is `Truncated`, a checksum
    /// mismatch is `ChecksumMismatch`, and bytes after the last chunk
    /// are `Corrupt(TrailingData)`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceDecodeError> {
        let map = Mapping::open(path)?;
        let this = Self::from_mapping(map)?;
        poat_telemetry::global()
            .counter("pmem.trace.mapped_bytes")
            .add(this.map.bytes().len() as u64);
        Ok(this)
    }

    /// Runs the structural pass over an in-memory byte buffer (the unit
    /// tests and fuzzers go through this; [`MmapTrace::open`] is this
    /// plus a real mapping).
    ///
    /// # Errors
    ///
    /// Same surface as [`MmapTrace::open`], minus I/O.
    pub fn from_owned(bytes: Vec<u8>) -> Result<Self, TraceDecodeError> {
        Self::from_mapping(Mapping::Owned(bytes))
    }

    fn from_mapping(map: Mapping) -> Result<Self, TraceDecodeError> {
        let chunks = Self::structural_pass(map.bytes())?;
        let total_ops = chunks.iter().map(|c| c.ops).sum();
        let validated = chunks.iter().map(|_| AtomicBool::new(false)).collect();
        Ok(MmapTrace {
            map,
            chunks,
            total_ops,
            validated,
        })
    }

    /// Chunk framing, lengths, and checksums — no op decoding.
    fn structural_pass(bytes: &[u8]) -> Result<Vec<ChunkRegion>, TraceDecodeError> {
        if bytes.len() < 8 {
            return Err(TraceDecodeError::Truncated);
        }
        if &bytes[..8] == MAGIC {
            // Legacy flat layout: one unchunked segment, default bases.
            if bytes.len() < HEADER_BYTES {
                return Err(TraceDecodeError::Truncated);
            }
            let ops = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
            let payload = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
            let body = bytes.len() - HEADER_BYTES;
            let (ops, payload_len) = columns_extent(ops, payload, body as u64)?;
            return Ok(vec![ChunkRegion {
                first_op: 0,
                ops,
                tag_off: HEADER_BYTES,
                payload_off: HEADER_BYTES + ops,
                payload_len,
                prev_va: 0,
                prev_oid: 0,
            }]);
        }
        if &bytes[..8] != MAGIC_CHUNKED {
            return Err(TraceDecodeError::BadMagic);
        }
        if bytes.len() < CHUNKED_HEADER_BYTES {
            return Err(TraceDecodeError::Truncated);
        }
        let chunk_count = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        let total_ops = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
        let mut chunks = Vec::new();
        let mut off = CHUNKED_HEADER_BYTES;
        let mut first_op = 0u64;
        for chunk in 0..chunk_count {
            // A header varint that runs off the file end is a torn
            // header (Truncated); an overlong encoding is BadVarint.
            let read_field = |off: &mut usize| -> Result<u64, TraceDecodeError> {
                get_varint(bytes, off).map_err(TraceDecodeError::from)
            };
            let fields_start = off;
            let ops = read_field(&mut off)?;
            let payload_len = read_field(&mut off)?;
            let prev_va = read_field(&mut off)?;
            let prev_oid = read_field(&mut off)?;
            let fields = &bytes[fields_start..off];
            let checksum_end = off
                .checked_add(8)
                .filter(|&e| e <= bytes.len())
                .ok_or(TraceDecodeError::Truncated)?;
            let checksum =
                u64::from_le_bytes(bytes[off..checksum_end].try_into().expect("8-byte slice"));
            off = checksum_end;
            let remaining = (bytes.len() - off) as u64;
            let extent = ops
                .checked_add(payload_len)
                .ok_or(TraceDecodeError::Truncated)?;
            if extent > remaining {
                return Err(TraceDecodeError::Truncated);
            }
            let (ops, payload_len) = (ops as usize, payload_len as usize);
            let region = ChunkRegion {
                first_op,
                ops,
                tag_off: off,
                payload_off: off + ops,
                payload_len,
                prev_va,
                prev_oid,
            };
            let tags = &bytes[region.tag_off..region.tag_off + region.ops];
            let data = &bytes[region.payload_off..region.payload_off + region.payload_len];
            if fnv1a64(&[fields, tags, data]) != checksum {
                return Err(TraceDecodeError::ChecksumMismatch(chunk as usize));
            }
            off = region.payload_off + region.payload_len;
            first_op += region.ops as u64;
            chunks.push(region);
        }
        if off != bytes.len() {
            return Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData));
        }
        if first_op < total_ops {
            return Err(TraceDecodeError::Truncated);
        }
        if first_op > total_ops {
            return Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData));
        }
        Ok(chunks)
    }

    /// Total op count (summed over chunks; structural, no decoding).
    pub fn len(&self) -> usize {
        self.total_ops
    }

    /// Whether the trace holds no ops.
    pub fn is_empty(&self) -> bool {
        self.total_ops == 0
    }

    /// Number of chunks in the mapping (1 for a legacy flat file).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Whether chunk `i`'s payload has been fully decoded (and thereby
    /// validated) by a previous [`MmapTrace::checked_ops`] pass.
    pub fn chunk_validated(&self, i: usize) -> bool {
        self.validated
            .get(i)
            .map(|v| v.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Whether the bytes come from a real memory mapping (`false` on
    /// the owned fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Streams every op, decoding lazily out of the mapping with full
    /// op-level validation fused in (the lazy counterpart of
    /// [`Trace::from_encoded`]'s eager pass). The iterator is fused
    /// after the first error.
    pub fn checked_ops(&self) -> MmapOps<'_> {
        MmapOps {
            trace: self,
            chunk: 0,
            cur: None,
            failed: false,
        }
    }

    /// Materializes the mapped trace into an owned, eagerly validated
    /// [`Trace`] (the bit-identity reference path).
    ///
    /// # Errors
    ///
    /// The first op-level defect found in any chunk.
    pub fn to_trace(&self) -> Result<Trace, TraceDecodeError> {
        let mut t = Trace::new();
        for op in self.checked_ops() {
            t.push(op?);
        }
        Ok(t)
    }

    fn chunk_decoder(&self, i: usize) -> CheckedOps<'_> {
        let bytes = self.map.bytes();
        let c = &self.chunks[i];
        CheckedOps::resume(
            &bytes[c.tag_off..c.tag_off + c.ops],
            &bytes[c.payload_off..c.payload_off + c.payload_len],
            c.first_op,
            c.prev_va,
            c.prev_oid,
        )
    }
}

/// Lazy, validating op stream over an [`MmapTrace`] (see
/// [`MmapTrace::checked_ops`]).
#[derive(Debug)]
pub struct MmapOps<'a> {
    trace: &'a MmapTrace,
    chunk: usize,
    cur: Option<CheckedOps<'a>>,
    failed: bool,
}

impl Iterator for MmapOps<'_> {
    type Item = Result<TraceOp, TraceDecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(cur) = &mut self.cur {
                match cur.next() {
                    Some(Ok(op)) => return Some(Ok(op)),
                    Some(Err(e)) => {
                        self.failed = true;
                        return Some(Err(e.into()));
                    }
                    None => {
                        // Chunk streamed through cleanly: first-touch
                        // validation of its payload is complete.
                        self.trace.validated[self.chunk].store(true, Ordering::Relaxed);
                        self.chunk += 1;
                        self.cur = None;
                    }
                }
            }
            if self.cur.is_none() {
                if self.chunk >= self.trace.chunks.len() {
                    return None;
                }
                self.cur = Some(self.trace.chunk_decoder(self.chunk));
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.trace.total_ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig};
    use crate::trace::TraceOp;
    use poat_core::{ObjectId, VirtAddr};
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        rt.tx_begin(pool).unwrap();
        rt.tx_add_range(oid, 16).unwrap();
        rt.write_u64(oid, 9).unwrap();
        rt.tx_end().unwrap();
        rt.branch(true);
        rt.exec(7);
        rt.take_trace()
    }

    #[test]
    fn roundtrip_preserves_every_op() {
        let t = sample_trace();
        let decoded = from_bytes(&to_bytes(&t)).unwrap();
        assert!(t.ops().eq(decoded.ops()));
        assert_eq!(t.summary(), decoded.summary());
        assert_eq!(t, decoded);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("poat-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.poattrc");
        save(&t, &path).unwrap();
        let decoded = load(&path).unwrap();
        assert!(t.ops().eq(decoded.ops()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(matches!(
            from_bytes(b"short"),
            Err(TraceDecodeError::Truncated)
        ));
        assert!(matches!(
            from_bytes(b"NOTATRACE\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0"),
            Err(TraceDecodeError::BadMagic)
        ));
        // Header promises more column bytes than the body holds.
        let mut data = to_bytes(&sample_trace());
        data.truncate(data.len() - 3);
        assert!(matches!(
            from_bytes(&data),
            Err(TraceDecodeError::Truncated)
        ));
        // Extra bytes after the columns.
        let mut data = to_bytes(&sample_trace());
        data.push(0);
        assert!(matches!(
            from_bytes(&data),
            Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData))
        ));
        // Column lengths that overflow u64 when summed.
        let mut huge = MAGIC.to_vec();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes(&huge),
            Err(TraceDecodeError::Truncated)
        ));
    }

    #[test]
    fn bad_tag_bits_rejected() {
        // Corrupt the first tag byte: a Fence (kind 6) with an undefined
        // flag bit set. Find a fence in the sample trace's spine.
        let t = sample_trace();
        let mut data = to_bytes(&t);
        let spine = HEADER_BYTES..HEADER_BYTES + t.len();
        let fence_at = data[spine]
            .iter()
            .position(|&b| b == 6)
            .expect("sample trace fences");
        data[HEADER_BYTES + fence_at] = 6 | (1 << 3);
        assert!(matches!(
            from_bytes(&data),
            Err(TraceDecodeError::BadTag(t)) if t == 6 | (1 << 3)
        ));
    }

    #[test]
    fn truncated_payload_column_rejected_on_file_load() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("poat-trace-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.poattrc");
        let mut bytes = to_bytes(&t);
        bytes.truncate(bytes.len() - 1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(TraceDecodeError::Truncated)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An arbitrary *valid* op: deps are generated as backreferences
    /// relative to the op's position, so they always point at an earlier
    /// op (the `Trace::push` contract; forward deps are normalized away
    /// and so would not survive a round-trip comparison).
    fn arb_ops() -> impl Strategy<Value = Vec<TraceOp>> {
        prop::collection::vec(
            (
                0u8..8,
                any::<u64>(),
                any::<u64>(),
                any::<u32>(),
                any::<u64>(),
            ),
            0..200,
        )
        .prop_map(|raw| {
            let mut ops = Vec::with_capacity(raw.len());
            for (tag, a, b, n, d) in raw {
                let id = ops.len() as u64;
                let dep = if d % 3 == 0 || id == 0 {
                    None
                } else {
                    Some(id - 1 - (d % id.min(16)))
                };
                let op = match tag {
                    0 => TraceOp::Exec { n: n.max(1) },
                    1 => TraceOp::Load {
                        va: VirtAddr::new(a),
                        dep,
                    },
                    2 => TraceOp::Store {
                        va: VirtAddr::new(a),
                        dep,
                    },
                    3 => TraceOp::NvLoad {
                        oid: ObjectId::from_raw(b),
                        va: VirtAddr::new(a),
                        dep,
                    },
                    4 => TraceOp::NvStore {
                        oid: ObjectId::from_raw(b),
                        va: VirtAddr::new(a),
                        dep,
                    },
                    5 => TraceOp::Clwb {
                        va: VirtAddr::new(a),
                    },
                    6 => TraceOp::Fence,
                    _ => TraceOp::Branch {
                        mispredicted: n % 2 == 0,
                    },
                };
                ops.push(op);
            }
            ops
        })
    }

    #[test]
    fn chunked_roundtrip_via_mmap() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("poat-trace-chunk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.poattrc3");
        // Tiny chunks so the sample trace actually splits.
        save_chunked(&t, &path, 8).unwrap();
        let m = MmapTrace::open(&path).unwrap();
        assert_eq!(m.len(), t.len());
        assert!(m.num_chunks() > 1, "sample trace spans chunks");
        #[cfg(unix)]
        assert!(m.is_mapped());
        let decoded: Result<Vec<TraceOp>, _> = m.checked_ops().collect();
        assert_eq!(decoded.unwrap(), t.ops().collect::<Vec<_>>());
        assert_eq!(m.to_trace().unwrap(), t);
        // `load` reads the chunked layout too.
        assert_eq!(load(&path).unwrap(), t);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_layout_opens_as_single_chunk() {
        let t = sample_trace();
        let m = MmapTrace::from_owned(to_bytes(&t)).unwrap();
        assert_eq!(m.num_chunks(), 1);
        assert_eq!(m.len(), t.len());
        assert_eq!(m.to_trace().unwrap(), t);
    }

    #[test]
    fn payload_validation_happens_on_first_touch() {
        let t = sample_trace();
        let m = MmapTrace::from_owned(to_chunked_bytes(&t, 8)).unwrap();
        assert!(m.num_chunks() >= 2);
        assert!(
            (0..m.num_chunks()).all(|i| !m.chunk_validated(i)),
            "the structural pass decodes no payload"
        );
        // Touch just past the first chunk: it completes and is marked
        // validated; later chunks stay untouched.
        let first_chunk_ops = 8;
        let _: Vec<_> = m.checked_ops().take(first_chunk_ops + 1).collect();
        assert!(m.chunk_validated(0));
        assert!(!m.chunk_validated(m.num_chunks() - 1));
        // A full pass validates everything.
        let _: Vec<_> = m.checked_ops().collect();
        assert!((0..m.num_chunks()).all(|i| m.chunk_validated(i)));
    }

    #[test]
    fn chunked_framing_defects_get_typed_errors() {
        let t = sample_trace();
        let good = to_chunked_bytes(&t, 8);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            MmapTrace::from_owned(bad),
            Err(TraceDecodeError::BadMagic)
        ));

        // Torn fixed header.
        assert!(matches!(
            MmapTrace::from_owned(good[..12].to_vec()),
            Err(TraceDecodeError::Truncated)
        ));

        // Torn chunk header: cut inside the first chunk's varints.
        assert!(matches!(
            MmapTrace::from_owned(good[..CHUNKED_HEADER_BYTES + 1].to_vec()),
            Err(TraceDecodeError::Truncated)
        ));

        // Oversized varint length: replace the first chunk's `ops`
        // varint with an 11-byte overlong encoding.
        let mut bad = good[..CHUNKED_HEADER_BYTES].to_vec();
        bad.extend_from_slice(&[0x80; 11]);
        bad.extend_from_slice(&good[CHUNKED_HEADER_BYTES..]);
        assert!(matches!(
            MmapTrace::from_owned(bad),
            Err(TraceDecodeError::Corrupt(TraceCorruption::BadVarint))
        ));

        // Flipped payload byte: the chunk checksum catches it in the
        // structural pass.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            MmapTrace::from_owned(bad),
            Err(TraceDecodeError::ChecksumMismatch(_))
        ));

        // Trailing garbage after the last chunk.
        let mut bad = good.clone();
        bad.push(0x00);
        assert!(matches!(
            MmapTrace::from_owned(bad),
            Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData))
        ));

        // Chunk extent overrunning the file.
        let mut bad = good.clone();
        bad.truncate(good.len() - 2);
        assert!(matches!(
            MmapTrace::from_owned(bad),
            Err(TraceDecodeError::Truncated | TraceDecodeError::ChecksumMismatch(_))
        ));

        // The pristine bytes still open.
        assert!(MmapTrace::from_owned(good).is_ok());
    }

    #[test]
    fn chunked_total_ops_mismatch_rejected() {
        let t = sample_trace();
        let mut bytes = to_chunked_bytes(&t, 8);
        // Inflate the declared total op count.
        let declared = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        bytes[16..24].copy_from_slice(&(declared + 1).to_le_bytes());
        assert!(matches!(
            MmapTrace::from_owned(bytes.clone()),
            Err(TraceDecodeError::Truncated)
        ));
        // Deflate it.
        bytes[16..24].copy_from_slice(&(declared - 1).to_le_bytes());
        assert!(matches!(
            MmapTrace::from_owned(bytes),
            Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData))
        ));
    }

    proptest! {
        #[test]
        fn arbitrary_traces_roundtrip(ops in arb_ops()) {
            let t: Trace = ops.iter().copied().collect();
            // In-memory encode → decode.
            let decoded = from_bytes(&to_bytes(&t)).unwrap();
            prop_assert!(t.ops().eq(decoded.ops()));
            prop_assert_eq!(t.summary(), decoded.summary());
            // The decoded ops also match the (coalescing-normalized)
            // pushed sequence: re-pushing them reproduces the trace.
            let repushed: Trace = decoded.ops().collect();
            prop_assert_eq!(&repushed, &t);
        }

        #[test]
        fn truncating_any_prefix_never_panics(ops in arb_ops(), cut in 0usize..64) {
            let t: Trace = ops.iter().copied().collect();
            let mut bytes = to_bytes(&t);
            let keep = bytes.len().saturating_sub(cut);
            bytes.truncate(keep);
            // Must either decode (cut == 0) or error cleanly; never panic.
            let _ = from_bytes(&bytes);
        }

        #[test]
        fn chunked_traces_roundtrip_via_mmap(ops in arb_ops(), per in 1usize..64) {
            let t: Trace = ops.iter().copied().collect();
            let m = MmapTrace::from_owned(to_chunked_bytes(&t, per)).unwrap();
            prop_assert_eq!(m.len(), t.len());
            prop_assert_eq!(m.to_trace().unwrap(), t);
        }

        /// Satellite: mutate each framing field of a valid legacy
        /// (POATTRC2) file and assert the exact typed error — through
        /// BOTH readers (eager `from_bytes` and the mmap structural
        /// pass), which must agree.
        #[test]
        fn legacy_framing_mutations_get_exact_errors(
            ops in arb_ops(),
            field in 0usize..4,
            delta in 1u64..1_000,
        ) {
            let t: Trace = ops.iter().copied().collect();
            let good = to_bytes(&t);
            let mut bytes = good.clone();
            let expect_legacy = match field {
                0 => {
                    // Magic.
                    bytes[(delta as usize) % 8] ^= 0xFF;
                    "BadMagic"
                }
                1 => {
                    // Op count inflated: columns overrun the body.
                    let ops_field = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
                    bytes[8..16].copy_from_slice(&ops_field.wrapping_add(delta).to_le_bytes());
                    "Truncated"
                }
                2 => {
                    // Payload length deflated: leftover body bytes
                    // (falls through to trailing garbage when the
                    // payload column is already empty).
                    let pay = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
                    if pay == 0 {
                        bytes.push(0);
                    } else {
                        let cut = delta.min(pay);
                        bytes[16..24].copy_from_slice(&(pay - cut).to_le_bytes());
                    }
                    "TrailingData"
                }
                _ => {
                    // Trailing garbage after the columns.
                    bytes.extend(std::iter::repeat(0u8).take(delta as usize % 16 + 1));
                    "TrailingData"
                }
            };
            let classify = |r: Result<Trace, TraceDecodeError>| match r {
                Err(TraceDecodeError::BadMagic) => "BadMagic",
                Err(TraceDecodeError::Truncated) => "Truncated",
                Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData)) => "TrailingData",
                Err(_) => "other",
                Ok(_) => "ok",
            };
            prop_assert_eq!(classify(from_bytes(&bytes)), expect_legacy);
            prop_assert_eq!(
                classify(MmapTrace::from_owned(bytes).and_then(|m| m.to_trace())),
                expect_legacy
            );
        }

        /// Satellite: same discipline for the chunked layout — mutate
        /// each framing field of a valid POATTRC3 file and assert the
        /// exact typed error from the mmap structural pass.
        #[test]
        fn chunked_framing_mutations_get_exact_errors(
            ops in arb_ops(),
            per in 1usize..32,
            field in 0usize..4,
            delta in 1u64..255,
        ) {
            let mut t: Trace = ops.iter().copied().collect();
            if t.is_empty() {
                // Framing mutations need at least one chunk to mutate.
                t.push(TraceOp::Fence);
            }
            let good = to_chunked_bytes(&t, per);
            let mut bytes = good.clone();
            let expect = match field {
                0 => {
                    bytes[(delta as usize) % 8] ^= 0xFF;
                    "BadMagic"
                }
                1 => {
                    // Torn chunk header: cut inside the first chunk header.
                    bytes.truncate(CHUNKED_HEADER_BYTES + (delta as usize) % 4);
                    "Truncated"
                }
                2 => {
                    // Flip a byte anywhere in the first chunk's extent:
                    // its checksum must catch it.
                    let at = CHUNKED_HEADER_BYTES
                        + 12
                        + (delta as usize) % (bytes.len() - CHUNKED_HEADER_BYTES - 12);
                    bytes[at] = bytes[at].wrapping_add(1);
                    "Checksum"
                }
                _ => {
                    bytes.extend(std::iter::repeat(0xAAu8).take(delta as usize % 16 + 1));
                    "TrailingData"
                }
            };
            let got = match MmapTrace::from_owned(bytes) {
                Err(TraceDecodeError::BadMagic) => "BadMagic",
                Err(TraceDecodeError::Truncated) => "Truncated",
                Err(TraceDecodeError::ChecksumMismatch(_)) => "Checksum",
                Err(TraceDecodeError::Corrupt(TraceCorruption::TrailingData)) => "TrailingData",
                Err(_) => "other",
                Ok(_) => "ok",
            };
            // A byte flip may land in a chunk-header varint instead of
            // the checksummed extent; framing errors are acceptable
            // there, silent success or a panic never is.
            if expect == "Checksum" {
                prop_assert!(
                    got == "Checksum" || got == "Truncated" || got == "TrailingData",
                    "got {}", got
                );
            } else {
                prop_assert_eq!(got, expect);
            }
        }
    }
}

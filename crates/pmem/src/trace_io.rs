//! Trace serialization: save a recorded instruction stream to disk and
//! replay it later without re-running the workload ("record once,
//! simulate many" — the workflow trace-driven simulators live by).
//!
//! Binary format (little-endian):
//!
//! ```text
//! magic "POATTRC1" (8 B) | op count (u64) | ops…
//! op: tag (u8) followed by the tag's fields:
//!   0 Exec    n:u32
//!   1 Load    va:u64 dep:u64+1(0=None)
//!   2 Store   va:u64 dep
//!   3 NvLoad  oid:u64 va:u64 dep
//!   4 NvStore oid:u64 va:u64 dep
//!   5 Clwb    va:u64
//!   6 Fence
//!   7 Branch  mispredicted:u8
//! ```

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use poat_core::{ObjectId, VirtAddr};

use crate::trace::{Trace, TraceOp};

const MAGIC: &[u8; 8] = b"POATTRC1";

/// Errors decoding a serialized trace.
#[derive(Debug)]
pub enum TraceDecodeError {
    /// The magic header did not match.
    BadMagic,
    /// The buffer ended mid-op or an op tag was unknown.
    Truncated,
    /// An unknown op tag was encountered.
    BadTag(u8),
    /// An underlying I/O failure (file read).
    Io(std::io::Error),
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "not a poat trace (bad magic)"),
            TraceDecodeError::Truncated => write!(f, "trace truncated"),
            TraceDecodeError::BadTag(t) => write!(f, "unknown op tag {t}"),
            TraceDecodeError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for TraceDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceDecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceDecodeError {
    fn from(e: std::io::Error) -> Self {
        TraceDecodeError::Io(e)
    }
}

fn put_dep(buf: &mut BytesMut, dep: Option<u64>) {
    buf.put_u64_le(dep.map(|d| d + 1).unwrap_or(0));
}

fn get_dep(buf: &mut Bytes) -> Option<u64> {
    match buf.get_u64_le() {
        0 => None,
        d => Some(d - 1),
    }
}

/// Serializes a trace to its binary representation.
pub fn to_bytes(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.len() * 12);
    buf.put_slice(MAGIC);
    buf.put_u64_le(trace.len() as u64);
    for op in trace {
        match *op {
            TraceOp::Exec { n } => {
                buf.put_u8(0);
                buf.put_u32_le(n);
            }
            TraceOp::Load { va, dep } => {
                buf.put_u8(1);
                buf.put_u64_le(va.raw());
                put_dep(&mut buf, dep);
            }
            TraceOp::Store { va, dep } => {
                buf.put_u8(2);
                buf.put_u64_le(va.raw());
                put_dep(&mut buf, dep);
            }
            TraceOp::NvLoad { oid, va, dep } => {
                buf.put_u8(3);
                buf.put_u64_le(oid.raw());
                buf.put_u64_le(va.raw());
                put_dep(&mut buf, dep);
            }
            TraceOp::NvStore { oid, va, dep } => {
                buf.put_u8(4);
                buf.put_u64_le(oid.raw());
                buf.put_u64_le(va.raw());
                put_dep(&mut buf, dep);
            }
            TraceOp::Clwb { va } => {
                buf.put_u8(5);
                buf.put_u64_le(va.raw());
            }
            TraceOp::Fence => buf.put_u8(6),
            TraceOp::Branch { mispredicted } => {
                buf.put_u8(7);
                buf.put_u8(u8::from(mispredicted));
            }
        }
    }
    buf.freeze()
}

/// Decodes a trace from its binary representation.
///
/// # Errors
///
/// [`TraceDecodeError`] on malformed input.
pub fn from_bytes(data: &[u8]) -> Result<Trace, TraceDecodeError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < MAGIC.len() + 8 {
        return Err(TraceDecodeError::Truncated);
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let count = buf.get_u64_le();
    let mut trace = Trace::new();
    for _ in 0..count {
        if buf.remaining() < 1 {
            return Err(TraceDecodeError::Truncated);
        }
        let tag = buf.get_u8();
        let need = match tag {
            0 => 4,
            1 | 2 => 16,
            3 | 4 => 24,
            5 => 8,
            6 => 0,
            7 => 1,
            t => return Err(TraceDecodeError::BadTag(t)),
        };
        if buf.remaining() < need {
            return Err(TraceDecodeError::Truncated);
        }
        // Push the decoded op verbatim (bypassing Exec coalescing would
        // change ids; the encoder writes already-coalesced batches, and
        // pushing a batch after a non-Exec op never merges).
        let op = match tag {
            0 => TraceOp::Exec {
                n: buf.get_u32_le(),
            },
            1 => TraceOp::Load {
                va: VirtAddr::new(buf.get_u64_le()),
                dep: get_dep(&mut buf),
            },
            2 => TraceOp::Store {
                va: VirtAddr::new(buf.get_u64_le()),
                dep: get_dep(&mut buf),
            },
            3 => TraceOp::NvLoad {
                oid: ObjectId::from_raw(buf.get_u64_le()),
                va: VirtAddr::new(buf.get_u64_le()),
                dep: get_dep(&mut buf),
            },
            4 => TraceOp::NvStore {
                oid: ObjectId::from_raw(buf.get_u64_le()),
                va: VirtAddr::new(buf.get_u64_le()),
                dep: get_dep(&mut buf),
            },
            5 => TraceOp::Clwb {
                va: VirtAddr::new(buf.get_u64_le()),
            },
            6 => TraceOp::Fence,
            _ => TraceOp::Branch {
                mispredicted: buf.get_u8() != 0,
            },
        };
        trace.push(op);
    }
    Ok(trace)
}

/// Writes a trace to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&to_bytes(trace))
}

/// Reads a trace from a file.
///
/// # Errors
///
/// [`TraceDecodeError`] on I/O failure or malformed contents.
pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceDecodeError> {
    let mut f = std::fs::File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig};
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        rt.tx_begin(pool).unwrap();
        rt.tx_add_range(oid, 16).unwrap();
        rt.write_u64(oid, 9).unwrap();
        rt.tx_end().unwrap();
        rt.branch(true);
        rt.exec(7);
        rt.take_trace()
    }

    #[test]
    fn roundtrip_preserves_every_op() {
        let t = sample_trace();
        let decoded = from_bytes(&to_bytes(&t)).unwrap();
        assert_eq!(t.ops(), decoded.ops());
        assert_eq!(t.summary(), decoded.summary());
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("poat-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.poattrc");
        save(&t, &path).unwrap();
        let decoded = load(&path).unwrap();
        assert_eq!(t.ops(), decoded.ops());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(matches!(
            from_bytes(b"short"),
            Err(TraceDecodeError::Truncated)
        ));
        assert!(matches!(
            from_bytes(b"NOTATRACE\0\0\0\0\0\0\0\0"),
            Err(TraceDecodeError::BadMagic)
        ));
        let mut data = to_bytes(&sample_trace()).to_vec();
        data.truncate(data.len() - 3);
        assert!(matches!(
            from_bytes(&data),
            Err(TraceDecodeError::Truncated)
        ));
        // Corrupt a tag byte past the header.
        let mut data = to_bytes(&sample_trace()).to_vec();
        data[16] = 0xEE;
        assert!(matches!(
            from_bytes(&data),
            Err(TraceDecodeError::BadTag(0xEE))
        ));
    }

    proptest! {
        #[test]
        fn arbitrary_traces_roundtrip(
            ops in prop::collection::vec((0u8..8, any::<u64>(), any::<u64>(), any::<u32>()), 0..200),
        ) {
            let mut t = Trace::new();
            for (tag, a, b, n) in ops {
                let dep = if b % 3 == 0 { None } else { Some(b % 1000) };
                let op = match tag {
                    0 => TraceOp::Exec { n: n.max(1) },
                    1 => TraceOp::Load { va: VirtAddr::new(a), dep },
                    2 => TraceOp::Store { va: VirtAddr::new(a), dep },
                    3 => TraceOp::NvLoad { oid: ObjectId::from_raw(b), va: VirtAddr::new(a), dep },
                    4 => TraceOp::NvStore { oid: ObjectId::from_raw(b), va: VirtAddr::new(a), dep },
                    5 => TraceOp::Clwb { va: VirtAddr::new(a) },
                    6 => TraceOp::Fence,
                    _ => TraceOp::Branch { mispredicted: n % 2 == 0 },
                };
                t.push(op);
            }
            let decoded = from_bytes(&to_bytes(&t)).unwrap();
            prop_assert_eq!(t.ops(), decoded.ops());
        }
    }
}

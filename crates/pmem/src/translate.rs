//! Software ObjectID translation — the baseline the paper accelerates.
//!
//! This reproduces NVML's `oid_direct` strategy (paper §2.1.3, Figure 3):
//! a **last-value predictor** (`most_recent_pool_id` /
//! `most_recent_base_addr` globals) in front of a hash table
//! (`OIDTranslationMap`). A predictor hit costs ≈17 dynamic instructions;
//! a full look-up costs ≈97 (Table 2). [`SoftTranslator::translate`] both
//! performs the translation and *emits* those instructions — including the
//! real loads and stores of the predictor globals and of the probed table
//! entries — into the trace, so the baseline's extra working set is visible
//! to the cache model.

use poat_core::{ObjectId, PoolId, VirtAddr};
use poat_telemetry::events::{self, EventKind, TraceDesign};

use crate::costs;
use crate::error::PmemError;
use crate::trace::{OpId, Trace, TraceOp};

/// Counters for the software translation path (drives Table 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XlatStats {
    /// `oid_direct` invocations.
    pub calls: u64,
    /// Calls resolved by the last-value predictor.
    pub predictor_hits: u64,
    /// Calls that searched the hash table.
    pub predictor_misses: u64,
    /// Total dynamic instructions emitted inside `oid_direct`.
    pub instructions: u64,
    /// Total hash-table probes across all misses.
    pub probes: u64,
}

impl XlatStats {
    /// Mean instructions per `oid_direct` call (Table 2, columns 2–3).
    pub fn mean_instructions(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.instructions as f64 / self.calls as f64
        }
    }

    /// Last-value-predictor miss rate (Table 2, column 4).
    pub fn predictor_miss_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.predictor_misses as f64 / self.calls as f64
        }
    }

    /// Publishes these counters into the global telemetry registry as the
    /// labeled `pmem.xlat.*` series. The harness labels each workload run,
    /// so the metrics snapshot carries the exact values Table 2 derives
    /// its means and miss rates from (see `docs/METRICS.md`).
    pub fn publish(&self, labels: &[(&str, &str)]) {
        let registry = poat_telemetry::global();
        let series = [
            ("pmem.xlat.calls", self.calls),
            ("pmem.xlat.predictor_hits", self.predictor_hits),
            ("pmem.xlat.predictor_misses", self.predictor_misses),
            ("pmem.xlat.instructions", self.instructions),
            ("pmem.xlat.probes", self.probes),
        ];
        for (name, value) in series {
            registry
                .counter(&poat_telemetry::labeled(name, labels))
                .add(value);
        }
    }
}

/// Process-global telemetry for the `pmem.oid_direct.*` series, resolved
/// once per translator; see `docs/METRICS.md`.
#[derive(Clone, Debug)]
struct XlatTelemetry {
    calls: poat_telemetry::Counter,
    predictor_hits: poat_telemetry::Counter,
    predictor_misses: poat_telemetry::Counter,
    instructions: poat_telemetry::Counter,
    probe_len: poat_telemetry::Histogram,
}

impl XlatTelemetry {
    fn new() -> Self {
        let r = poat_telemetry::global();
        XlatTelemetry {
            calls: r.counter("pmem.oid_direct.calls"),
            predictor_hits: r.counter("pmem.oid_direct.predictor_hits"),
            predictor_misses: r.counter("pmem.oid_direct.predictor_misses"),
            instructions: r.counter("pmem.oid_direct.instructions"),
            probe_len: r.histogram("pmem.oid_direct.probe_len"),
        }
    }
}

/// The software translation state: predictor globals + open-addressed map.
#[derive(Clone, Debug)]
pub struct SoftTranslator {
    slots: Vec<Option<(PoolId, VirtAddr)>>,
    predictor: Option<(PoolId, VirtAddr)>,
    predictor_enabled: bool,
    stats: XlatStats,
    telemetry: XlatTelemetry,
}

impl SoftTranslator {
    /// Creates a translator whose hash table has `slots` entries.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        Self::with_predictor(slots, true)
    }

    /// Creates a translator with the last-value predictor optionally
    /// disabled (the ablation of NVML's key software optimization: every
    /// `oid_direct` takes the full hash-table path).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_predictor(slots: usize, predictor_enabled: bool) -> Self {
        assert!(slots > 0, "translation table needs at least one slot");
        SoftTranslator {
            slots: vec![None; slots],
            predictor: None,
            predictor_enabled,
            stats: XlatStats::default(),
            telemetry: XlatTelemetry::new(),
        }
    }

    fn hash(&self, pool: PoolId) -> usize {
        let h = (pool.raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.slots.len()
    }

    /// Registers a pool mapping (called by `pool_create`/`pool_open`).
    ///
    /// # Errors
    ///
    /// [`PmemError::XlatTableFull`] if the table — sized from
    /// `RuntimeConfig` — has no free slot; the caller surfaces this as
    /// a configuration error instead of aborting as NVML would.
    pub fn insert(&mut self, pool: PoolId, base: VirtAddr) -> Result<(), PmemError> {
        let start = self.hash(pool);
        let n = self.slots.len();
        for i in 0..n {
            let idx = (start + i) % n;
            match self.slots[idx] {
                None => {
                    self.slots[idx] = Some((pool, base));
                    return Ok(());
                }
                Some((p, _)) if p == pool => {
                    self.slots[idx] = Some((pool, base));
                    return Ok(());
                }
                _ => {}
            }
        }
        Err(PmemError::XlatTableFull)
    }

    /// Removes a pool mapping (called by `pool_close`).
    pub fn remove(&mut self, pool: PoolId) {
        // Rebuild without the entry: removal is rare (pool close) and this
        // keeps every remaining probe chain valid without tombstones.
        let entries: Vec<(PoolId, VirtAddr)> = self
            .slots
            .iter()
            .flatten()
            .copied()
            .filter(|(p, _)| *p != pool)
            .collect();
        for s in &mut self.slots {
            *s = None;
        }
        for (p, b) in entries {
            self.insert(p, b).expect(
                "invariant: reinserting fewer entries into the same-size table cannot overflow",
            );
        }
        if matches!(self.predictor, Some((p, _)) if p == pool) {
            self.predictor = None;
        }
    }

    /// Looks up a pool without emitting any trace (internal bookkeeping).
    pub fn peek(&self, pool: PoolId) -> Option<VirtAddr> {
        let start = self.hash(pool);
        let n = self.slots.len();
        for i in 0..n {
            match self.slots[(start + i) % n] {
                None => return None,
                Some((p, base)) if p == pool => return Some(base),
                _ => {}
            }
        }
        None
    }

    /// `oid_direct(oid)`: translates and emits the instruction cost into
    /// `trace`. Returns the virtual address and the id of the trace op the
    /// translated address depends on (for dependency threading).
    ///
    /// `dep` is the producer of the ObjectID being translated, if any; the
    /// translation's compare against the predictor globals depends on it.
    ///
    /// Returns `None` if the pool is not in the map (not opened) — the
    /// caller turns that into an error, as the paper's API would.
    pub fn translate(
        &mut self,
        oid: ObjectId,
        dep: Option<OpId>,
        trace: &mut Trace,
    ) -> Option<(VirtAddr, OpId)> {
        let pool = oid.pool()?;
        self.stats.calls += 1;
        self.telemetry.calls.inc();
        // Software translation runs at trace-generation time, before any
        // cycle model exists; the trace position stands in for both clocks.
        let at = trace.len() as u64;
        events::begin_access(
            EventKind::SoftCall,
            TraceDesign::Software,
            at,
            at,
            pool.raw(),
        );
        let mut insns = 0u64;

        // Prologue + validity check, then the two predictor-global loads.
        trace.push(TraceOp::Exec {
            n: costs::HIT_PRE_EXEC,
        });
        insns += costs::HIT_PRE_EXEC as u64;
        let g0 = trace.push(TraceOp::Load {
            va: costs::GLOBALS_VA,
            dep,
        });
        let g1 = trace.push(TraceOp::Load {
            va: costs::GLOBALS_VA.offset(8),
            dep,
        });
        let _ = g0;
        insns += 2;

        if let Some((p, base)) = self.predictor.filter(|_| self.predictor_enabled) {
            if p == pool {
                trace.push(TraceOp::Exec {
                    n: costs::HIT_POST_EXEC,
                });
                insns += costs::HIT_POST_EXEC as u64;
                self.stats.predictor_hits += 1;
                self.stats.instructions += insns;
                self.telemetry.predictor_hits.inc();
                self.telemetry.instructions.add(insns);
                events::emit(EventKind::SoftPredictorHit, pool.raw(), 0);
                return Some((base.offset(oid.offset() as u64), g1));
            }
        }
        self.stats.predictor_misses += 1;
        self.telemetry.predictor_misses.inc();

        // Full look-up: hash, probe chain, predictor update.
        trace.push(TraceOp::Exec {
            n: costs::MISS_HASH_EXEC,
        });
        insns += costs::MISS_HASH_EXEC as u64;

        let start = self.hash(pool);
        let n = self.slots.len();
        let mut found = None;
        let mut last_probe_op = g1;
        let probes_before = self.stats.probes;
        for i in 0..n {
            let idx = (start + i) % n;
            let entry_va = costs::XLAT_TABLE_VA.offset(idx as u64 * costs::XLAT_ENTRY_BYTES);
            last_probe_op = trace.push(TraceOp::Load { va: entry_va, dep });
            trace.push(TraceOp::Load {
                va: entry_va.offset(8),
                dep,
            });
            trace.push(TraceOp::Exec {
                n: costs::PROBE_EXEC,
            });
            insns += costs::PROBE_LOADS as u64 + costs::PROBE_EXEC as u64;
            self.stats.probes += 1;
            match self.slots[idx] {
                None => break,
                Some((p, base)) if p == pool => {
                    found = Some(base);
                    break;
                }
                _ => {}
            }
        }

        let probes = self.stats.probes - probes_before;
        self.telemetry.probe_len.record(probes);
        events::emit(EventKind::SoftPredictorMiss, pool.raw(), probes as u32);

        let base = match found {
            Some(b) => b,
            None => {
                self.stats.instructions += insns;
                self.telemetry.instructions.add(insns);
                events::emit(EventKind::Fault, pool.raw(), probes as u32);
                return None;
            }
        };

        trace.push(TraceOp::Exec {
            n: costs::MISS_UPDATE_EXEC,
        });
        trace.push(TraceOp::Store {
            va: costs::GLOBALS_VA,
            dep: None,
        });
        trace.push(TraceOp::Store {
            va: costs::GLOBALS_VA.offset(8),
            dep: None,
        });
        trace.push(TraceOp::Exec {
            n: costs::MISS_POST_EXEC,
        });
        insns += costs::MISS_UPDATE_EXEC as u64
            + costs::MISS_UPDATE_STORES as u64
            + costs::MISS_POST_EXEC as u64;

        if self.predictor_enabled {
            self.predictor = Some((pool, base));
        }
        self.stats.instructions += insns;
        self.telemetry.instructions.add(insns);
        Some((base.offset(oid.offset() as u64), last_probe_op))
    }

    /// Translation statistics.
    pub fn stats(&self) -> XlatStats {
        self.stats
    }

    /// Clears the predictor (process restart).
    pub fn reset_predictor(&mut self) {
        self.predictor = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: u32) -> PoolId {
        PoolId::new(n).unwrap()
    }

    #[test]
    fn hit_path_costs_17_instructions() {
        let mut x = SoftTranslator::new(64);
        x.insert(pool(1), VirtAddr::new(0x1000)).unwrap();
        let mut t = Trace::new();
        // Warm the predictor with one miss, then measure a hit.
        x.translate(ObjectId::new(pool(1), 0), None, &mut t)
            .unwrap();
        let before = x.stats().instructions;
        let (va, _) = x
            .translate(ObjectId::new(pool(1), 0x20), None, &mut t)
            .unwrap();
        assert_eq!(va, VirtAddr::new(0x1020));
        assert_eq!(x.stats().instructions - before, 17);
        assert_eq!(x.stats().predictor_hits, 1);
    }

    #[test]
    fn miss_path_costs_about_97_instructions() {
        let mut x = SoftTranslator::new(64);
        for i in 1..=8 {
            x.insert(pool(i), VirtAddr::new(i as u64 * 0x1000)).unwrap();
        }
        let mut t = Trace::new();
        // Alternate pools so every call misses the predictor.
        let mut total = 0u64;
        let calls = 20;
        for i in 0..calls {
            let p = pool((i % 8) + 1);
            let before = x.stats().instructions;
            x.translate(ObjectId::new(p, 0), None, &mut t).unwrap();
            total += x.stats().instructions - before;
        }
        let mean = total as f64 / calls as f64;
        assert!(
            (70.0..115.0).contains(&mean),
            "miss-path mean {mean} out of Table 2 range"
        );
        assert_eq!(x.stats().predictor_misses, calls as u64);
    }

    #[test]
    fn unknown_pool_returns_none() {
        let mut x = SoftTranslator::new(16);
        let mut t = Trace::new();
        assert!(x
            .translate(ObjectId::new(pool(5), 0), None, &mut t)
            .is_none());
        assert!(x.translate(ObjectId::NULL, None, &mut t).is_none());
    }

    #[test]
    fn predictor_tracks_last_pool() {
        let mut x = SoftTranslator::new(16);
        x.insert(pool(1), VirtAddr::new(0x1000)).unwrap();
        x.insert(pool(2), VirtAddr::new(0x2000)).unwrap();
        let mut t = Trace::new();
        let a = ObjectId::new(pool(1), 0);
        let b = ObjectId::new(pool(2), 0);
        x.translate(a, None, &mut t); // miss
        x.translate(a, None, &mut t); // hit
        x.translate(b, None, &mut t); // miss
        x.translate(b, None, &mut t); // hit
        x.translate(a, None, &mut t); // miss
        let s = x.stats();
        assert_eq!(s.predictor_hits, 2);
        assert_eq!(s.predictor_misses, 3);
        assert!((s.predictor_miss_rate() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn remove_then_translate_fails() {
        let mut x = SoftTranslator::new(16);
        x.insert(pool(1), VirtAddr::new(0x1000)).unwrap();
        x.insert(pool(2), VirtAddr::new(0x2000)).unwrap();
        x.remove(pool(1));
        let mut t = Trace::new();
        assert!(x
            .translate(ObjectId::new(pool(1), 0), None, &mut t)
            .is_none());
        assert!(x
            .translate(ObjectId::new(pool(2), 0), None, &mut t)
            .is_some());
    }

    #[test]
    fn emits_real_table_loads() {
        let mut x = SoftTranslator::new(16);
        x.insert(pool(3), VirtAddr::new(0x3000)).unwrap();
        let mut t = Trace::new();
        x.translate(ObjectId::new(pool(3), 0), None, &mut t);
        let touches_table = t.ops().any(|op| match op {
            TraceOp::Load { va, .. } => va.raw() >= costs::XLAT_TABLE_VA.raw(),
            _ => false,
        });
        assert!(touches_table, "miss path must load hash-table entries");
    }

    #[test]
    fn reinsert_updates_base() {
        let mut x = SoftTranslator::new(16);
        x.insert(pool(1), VirtAddr::new(0x1000)).unwrap();
        x.insert(pool(1), VirtAddr::new(0x9000)).unwrap();
        assert_eq!(x.peek(pool(1)), Some(VirtAddr::new(0x9000)));
    }
}

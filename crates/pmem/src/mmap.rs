// SPDX-License-Identifier: MIT OR Apache-2.0
//! Read-only file mappings for zero-copy trace replay.
//!
//! [`Mapping`] is the byte provider under `trace_io`'s memory-mapped
//! trace reader: on Unix it wraps a `PROT_READ`/`MAP_PRIVATE` `mmap(2)`
//! of the whole file, so the trace columns are borrowed straight out of
//! the page cache and the process never stages a second whole-column
//! buffer. On other platforms (and whenever the mapping syscall fails)
//! it degrades to reading the file into one owned buffer — same API,
//! same single-copy peak, just without the page-cache sharing.
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! crate root is `#![deny(unsafe_code)]` with a scoped `allow` here);
//! the surface is deliberately tiny — map, borrow bytes, unmap on drop.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    // Direct bindings against the C library std already links on Unix;
    // the workspace is hermetic (no `libc` crate), so the two syscall
    // wrappers are declared by hand.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only view of a whole file: memory-mapped when the platform
/// cooperates, an owned in-memory copy otherwise. Either way,
/// [`Mapping::bytes`] is the entire file content.
#[derive(Debug)]
pub enum Mapping {
    /// A live `mmap(2)` region, unmapped on drop.
    #[cfg(unix)]
    Mapped {
        /// Base address returned by `mmap`.
        ptr: *mut std::ffi::c_void,
        /// Mapped length in bytes (= file length at open).
        len: usize,
    },
    /// The file content read into an owned buffer (zero-length files,
    /// non-Unix platforms, or an `mmap` failure).
    Owned(Vec<u8>),
}

#[cfg(unix)]
#[allow(unsafe_code)]
// SAFETY: a `Mapped` region is PROT_READ + MAP_PRIVATE — immutable for
// the mapping's lifetime and private to this process — so sharing the
// base pointer across threads is no different from sharing a `&[u8]`.
unsafe impl Send for Mapping {}

#[cfg(unix)]
#[allow(unsafe_code)]
// SAFETY: same argument as `Send` — the mapping is read-only, so
// concurrent `bytes()` borrows never race with a write.
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only.
    ///
    /// # Errors
    ///
    /// Propagates failures opening or (on the fallback path) reading
    /// the file, and any `mmap` failure on Unix.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Mapping> {
        let file = File::open(path.as_ref())?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        if len == 0 {
            // mmap rejects zero-length mappings; an empty buffer is the
            // same observable thing.
            return Ok(Mapping::Owned(Vec::new()));
        }
        Self::map_file(&file, len)
    }

    #[cfg(unix)]
    fn map_file(file: &File, len: usize) -> io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a live, readable file descriptor for the whole
        // call; addr=NULL lets the kernel pick placement; PROT_READ +
        // MAP_PRIVATE cannot alias any Rust-visible mutable state.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping::Mapped { ptr, len })
    }

    #[cfg(not(unix))]
    fn map_file(file: &File, len: usize) -> io::Result<Mapping> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut f = file;
        f.read_to_end(&mut buf)?;
        Ok(Mapping::Owned(buf))
    }

    /// The full file content.
    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: `ptr` is the base of a live mapping exactly `len`
            // bytes long (unmapped only in `drop`) and PROT_READ, so the
            // slice is valid, initialized, and immutable while borrowed.
            Mapping::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Mapping::Owned(buf) => buf,
        }
    }

    /// Whether this view is a real memory mapping (`false` on the owned
    /// fallback) — observability for tests and the replay HUD.
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Mapping::Mapped { .. } => true,
            Mapping::Owned(_) => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        match self {
            #[cfg(unix)]
            // SAFETY: `ptr`/`len` came from a successful `mmap` of
            // exactly `len` bytes and are unmapped exactly once (drop
            // runs once and nothing else unmaps).
            Mapping::Mapped { ptr, len } => unsafe {
                let _ = sys::munmap(*ptr, *len);
            },
            Mapping::Owned(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("poat-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(100_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let m = Mapping::open(&path).unwrap();
        assert_eq!(m.bytes(), &payload[..]);
        #[cfg(unix)]
        assert!(m.is_mapped());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let dir = std::env::temp_dir().join(format!("poat-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let m = Mapping::open(&path).unwrap();
        assert!(m.bytes().is_empty());
        assert!(!m.is_mapped());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mapping::open("/nonexistent/poat-mmap-test").is_err());
    }
}

//! Calibrated instruction-cost model for the software runtime.
//!
//! The paper measures `oid_direct` at ≈17 dynamic x86 instructions when the
//! last-value predictor hits and ≈97 when the full hash-table look-up runs
//! (Table 2). We cannot execute x86, so the runtime *emits* those
//! instructions into the trace: each constant below is the `Exec`-batch
//! size of a code region, and the loads/stores of the translation
//! structures are emitted as real memory operations at the addresses given
//! here (so they occupy cache space and can miss, reproducing the paper's
//! observation that software translation also "increases the working set of
//! the program").
//!
//! Cost breakdown of the predictor-hit path (17 instructions):
//! call/prologue + validity check (6 Exec) + 2 global loads + compare &
//! branch + add + return (9 Exec).
//!
//! Cost breakdown of the full-look-up path (≈97 instructions for an
//! average-length probe): the hit-path check (8) + hash computation (36) +
//! per-probe: entry load ×2 + tag compare (10 Exec) + predictor update
//! (2 stores + 8 Exec) + base+offset & return (28 Exec). With the ≈1.3
//! mean probes of a lightly loaded table this lands in the mid-90s,
//! matching Table 2's per-benchmark range (77.8–107.3).

use poat_core::VirtAddr;

/// Exec instructions before the predictor's global loads (call overhead,
/// validity flag test).
pub const HIT_PRE_EXEC: u32 = 6;
/// Loads of `most_recent_pool_id` / `most_recent_base_addr`.
pub const HIT_GLOBAL_LOADS: u32 = 2;
/// Exec instructions after the loads on the hit path (compare, branch,
/// add, return). Total hit path = 6 + 2 + 9 = 17 instructions.
pub const HIT_POST_EXEC: u32 = 9;

/// Exec instructions computing the hash and setting up the probe loop.
pub const MISS_HASH_EXEC: u32 = 36;
/// Loads per probe of the translation table (key word + value word).
pub const PROBE_LOADS: u32 = 2;
/// Exec instructions per probe (index arithmetic, tag compare, branch).
pub const PROBE_EXEC: u32 = 10;
/// Stores updating the last-value predictor after a successful look-up.
pub const MISS_UPDATE_STORES: u32 = 2;
/// Exec instructions around the predictor update.
pub const MISS_UPDATE_EXEC: u32 = 8;
/// Exec instructions for base+offset computation and epilogue.
pub const MISS_POST_EXEC: u32 = 28;

/// Instructions charged to a `pmalloc` fast path beyond its emitted memory
/// operations (size rounding, free-list bookkeeping arithmetic).
pub const PMALLOC_EXEC: u32 = 80;
/// Instructions charged to `pfree` beyond its memory operations.
pub const PFREE_EXEC: u32 = 40;
/// Instructions charged to `pool_create`/`pool_open` beyond memory
/// operations (system call, permission check, mmap bookkeeping). Identical
/// in BASE and OPT; kept moderate so EACH-pattern pool churn is visible but
/// does not drown the measured effect, as in the paper.
pub const POOL_OPEN_EXEC: u32 = 220;
/// Instructions charged to transaction bookkeeping at `tx_begin`.
pub const TX_BEGIN_EXEC: u32 = 32;
/// Instructions charged at `tx_end` beyond persists and memory traffic.
pub const TX_END_EXEC: u32 = 40;
/// Per-record bookkeeping instructions in `tx_add_range`.
pub const TX_ADD_EXEC: u32 = 48;

/// Base virtual address of the runtime's volatile globals (the last-value
/// predictor pair lives here). Below the pool-mapping floor, so it never
/// collides with a pool.
pub const GLOBALS_VA: VirtAddr = VirtAddr::new(0x0800_0000_0000);

/// Base virtual address of the volatile translation hash table
/// (16-byte entries: pool id word + base-address word).
pub const XLAT_TABLE_VA: VirtAddr = VirtAddr::new(0x0810_0000_0000);

/// Bytes per translation-table entry.
pub const XLAT_ENTRY_BYTES: u64 = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_path_totals_17_instructions() {
        assert_eq!(HIT_PRE_EXEC + HIT_GLOBAL_LOADS + HIT_POST_EXEC, 17);
    }

    #[test]
    fn miss_path_lands_near_97_for_typical_probes() {
        // Hit-path prefix runs first (checks the predictor), then the look-up.
        let prefix = (HIT_PRE_EXEC + HIT_GLOBAL_LOADS) as f64; // 8: no post-exec on miss
        let per_probe = (PROBE_LOADS + PROBE_EXEC) as f64;
        let fixed =
            (MISS_HASH_EXEC + MISS_UPDATE_STORES + MISS_UPDATE_EXEC + MISS_POST_EXEC) as f64;
        let total = |probes: f64| prefix + fixed + per_probe * probes;
        // Table 2 reports a 77.8–107.3 per-benchmark range, geomean 97.3.
        assert!(total(1.0) > 70.0 && total(1.0) < 110.0, "{}", total(1.0));
        assert!(total(5.0) < 160.0, "{}", total(5.0));
    }

    #[test]
    fn synthetic_regions_below_pool_floor() {
        assert!(GLOBALS_VA.raw() < 0x1000_0000_0000);
        assert!(XLAT_TABLE_VA.raw() < 0x1000_0000_0000);
        assert!(XLAT_TABLE_VA.raw() > GLOBALS_VA.raw());
    }
}

//! The dynamic instruction trace the runtime emits.
//!
//! The paper uses Pin as a front-end for Sniper: the workload executes
//! natively and the simulator replays its instruction stream against a
//! timing model (§5.1). We reproduce that structure: the workloads run
//! natively in Rust against the [`crate::Runtime`], which emits one
//! [`TraceOp`] per dynamic instruction (batching non-memory instructions),
//! and `poat-sim`'s core models replay the trace.
//!
//! Memory operations carry an optional **dependency edge** (`dep`): the
//! index of the earlier operation that produced the address being accessed.
//! Pointer-chasing chains (a linked-list traversal, a tree descent, the
//! probe chain inside `oid_direct`) are serialized through these edges,
//! which is what lets the out-of-order core model extract realistic —
//! rather than unbounded — memory-level parallelism. This is why, as in the
//! paper, hardware translation helps an in-order core more than an
//! out-of-order core.
//!
//! # Compact columnar encoding
//!
//! Full-scale traces run to hundreds of millions of dynamic ops, and the
//! harness fans simulations out over a worker pool, so the in-memory
//! representation is the scaling bottleneck of the whole pipeline. A
//! [`Trace`] therefore does **not** store `Vec<TraceOp>` (~40 B per op);
//! it stores two byte columns targeting ≲ 12 B per op in the worst case
//! and ~3-6 B on real workloads:
//!
//! * **tag spine** — one `u8` per op: the op kind in the low 3 bits,
//!   kind-specific flags in the high 5 (small `Exec` batch sizes,
//!   dep-present, branch outcome);
//! * **payload column** — LEB128 varints, in op order: addresses are
//!   **delta-encoded** against the previous address in the stream
//!   (zigzag, so both directions stay short), ObjectIDs against the
//!   previous ObjectID, and dependency edges as **backreferences**
//!   (`id − dep`) — deps are pointer-chase producers, so they are almost
//!   always a handful of ops back.
//!
//! Both recording ([`Trace::push`]) and replay ([`Trace::ops`], a
//! streaming iterator) work directly on this encoding; the `TraceOp` enum
//! exists only as the item type flowing between the two, never as a
//! materialized vector. See `DESIGN.md` ("Trace encoding") for the exact
//! byte layout and its bytes-per-op accounting.

use poat_core::{ObjectId, VirtAddr};

/// Index of an operation within a [`Trace`]; usable as a dependency target.
pub type OpId = u64;

/// One dynamic instruction (or batch of non-memory instructions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` back-to-back non-memory instructions (ALU, moves, compares).
    Exec {
        /// Number of instructions in the batch.
        n: u32,
    },
    /// A regular load through a virtual address.
    Load {
        /// Accessed virtual address.
        va: VirtAddr,
        /// Producer of the address (pointer-chasing edge), if any.
        dep: Option<OpId>,
    },
    /// A regular store through a virtual address.
    Store {
        /// Accessed virtual address.
        va: VirtAddr,
        /// Producer of the address, if any.
        dep: Option<OpId>,
    },
    /// `nvld`: a load addressed by ObjectID, translated in hardware.
    NvLoad {
        /// The ObjectID operand.
        oid: ObjectId,
        /// The virtual address the POLB/POT translation resolves to
        /// (recorded so cache behavior can be replayed exactly).
        va: VirtAddr,
        /// Producer of the ObjectID, if any.
        dep: Option<OpId>,
    },
    /// `nvst`: a store addressed by ObjectID, translated in hardware.
    NvStore {
        /// The ObjectID operand.
        oid: ObjectId,
        /// The translated virtual address.
        va: VirtAddr,
        /// Producer of the ObjectID, if any.
        dep: Option<OpId>,
    },
    /// `clwb`: initiate write-back of the line containing `va`.
    Clwb {
        /// Line address being written back.
        va: VirtAddr,
    },
    /// `sfence`: order preceding write-backs.
    Fence,
    /// A conditional branch.
    Branch {
        /// Whether the branch mispredicted (charged the Table 4 penalty).
        mispredicted: bool,
    },
}

impl TraceOp {
    /// Number of dynamic instructions this op represents.
    pub fn instructions(&self) -> u64 {
        match self {
            TraceOp::Exec { n } => *n as u64,
            _ => 1,
        }
    }

    /// Whether this op accesses memory through the data cache.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            TraceOp::Load { .. }
                | TraceOp::Store { .. }
                | TraceOp::NvLoad { .. }
                | TraceOp::NvStore { .. }
        )
    }

    /// Whether this is an ObjectID-addressed (`nvld`/`nvst`) access.
    pub fn is_persistent_access(&self) -> bool {
        matches!(self, TraceOp::NvLoad { .. } | TraceOp::NvStore { .. })
    }
}

/// Aggregate counts over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Regular loads.
    pub loads: u64,
    /// Regular stores.
    pub stores: u64,
    /// `nvld` count.
    pub nvloads: u64,
    /// `nvst` count.
    pub nvstores: u64,
    /// `clwb` count.
    pub clwbs: u64,
    /// `sfence` count.
    pub fences: u64,
    /// Branch count.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredictions: u64,
}

impl TraceSummary {
    fn account(&mut self, op: &TraceOp) {
        self.instructions += op.instructions();
        match op {
            TraceOp::Load { .. } => self.loads += 1,
            TraceOp::Store { .. } => self.stores += 1,
            TraceOp::NvLoad { .. } => self.nvloads += 1,
            TraceOp::NvStore { .. } => self.nvstores += 1,
            TraceOp::Clwb { .. } => self.clwbs += 1,
            TraceOp::Fence => self.fences += 1,
            TraceOp::Branch { mispredicted } => {
                self.branches += 1;
                if *mispredicted {
                    self.mispredictions += 1;
                }
            }
            TraceOp::Exec { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------

/// Op kinds, stored in the low 3 bits of a tag byte. Every 3-bit value is
/// a defined kind; corruption shows up as undefined *flag* bits instead.
const K_EXEC: u8 = 0;
const K_LOAD: u8 = 1;
const K_STORE: u8 = 2;
const K_NVLOAD: u8 = 3;
const K_NVSTORE: u8 = 4;
const K_CLWB: u8 = 5;
const K_FENCE: u8 = 6;
const K_BRANCH: u8 = 7;

/// Flag bit (shifted into the high 5 bits of the tag): a dependency edge
/// follows in the payload (memory ops) / the branch mispredicted.
const F_BIT0: u8 = 1 << 3;
/// Largest `Exec` batch size representable inline in the tag's flag bits.
const EXEC_INLINE_MAX: u32 = 31;

/// Ways a raw encoded trace (from disk) can be malformed. Traces built
/// through [`Trace::push`] are valid by construction; this is the error
/// surface of [`Trace::from_encoded`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceCorruption {
    /// The payload column ended before the tag spine was fully decoded.
    Truncated,
    /// A tag byte carries flag bits undefined for its kind.
    BadTag(u8),
    /// A dependency backreference points before op 0.
    BadDep,
    /// A varint field is overlong or overflows its target width.
    BadVarint,
    /// Payload bytes remain after the last op decoded.
    TrailingData,
}

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn put_svarint(buf: &mut Vec<u8>, v: u64) {
    // Zigzag over the wrapping difference: small deltas in either
    // direction encode in one or two bytes.
    let s = v as i64;
    put_varint(buf, ((s << 1) ^ (s >> 63)) as u64);
}

pub(crate) fn get_varint(data: &[u8], off: &mut usize) -> Result<u64, TraceCorruption> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*off).ok_or(TraceCorruption::Truncated)?;
        *off += 1;
        if shift == 63 && b > 1 {
            return Err(TraceCorruption::BadVarint);
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceCorruption::BadVarint);
        }
    }
}

fn get_svarint(data: &[u8], off: &mut usize) -> Result<u64, TraceCorruption> {
    let z = get_varint(data, off)?;
    Ok(((z >> 1) as i64 ^ -((z & 1) as i64)) as u64)
}

/// Shared decoder state: the delta bases the encoder and every decoder
/// (streaming iterator, validator) advance in lockstep.
#[derive(Clone, Copy, Debug, Default)]
struct DeltaState {
    prev_va: u64,
    prev_oid: u64,
}

impl DeltaState {
    /// Decodes the op with index `id` whose tag is `tag`, consuming
    /// payload bytes from `data` at `*off`.
    fn decode(
        &mut self,
        tag: u8,
        data: &[u8],
        off: &mut usize,
        id: u64,
    ) -> Result<TraceOp, TraceCorruption> {
        let kind = tag & 0x07;
        let flags = tag >> 3;
        let op = match kind {
            K_EXEC => {
                let n = if flags == 0 {
                    let v = get_varint(data, off)?;
                    u32::try_from(v).map_err(|_| TraceCorruption::BadVarint)?
                } else {
                    flags as u32
                };
                TraceOp::Exec { n }
            }
            K_LOAD | K_STORE | K_NVLOAD | K_NVSTORE => {
                if flags > 1 {
                    return Err(TraceCorruption::BadTag(tag));
                }
                let oid = if kind == K_NVLOAD || kind == K_NVSTORE {
                    let o = self.prev_oid.wrapping_add(get_svarint(data, off)?);
                    self.prev_oid = o;
                    Some(ObjectId::from_raw(o))
                } else {
                    None
                };
                let va = self.prev_va.wrapping_add(get_svarint(data, off)?);
                self.prev_va = va;
                let dep = if flags & 1 != 0 {
                    let back = get_varint(data, off)?;
                    // backref is encoded as (id - dep - 1); dep must land
                    // in [0, id).
                    let dep = id.checked_sub(back + 1).ok_or(TraceCorruption::BadDep)?;
                    Some(dep)
                } else {
                    None
                };
                let va = VirtAddr::new(va);
                match (kind, oid) {
                    (K_LOAD, _) => TraceOp::Load { va, dep },
                    (K_STORE, _) => TraceOp::Store { va, dep },
                    (K_NVLOAD, Some(oid)) => TraceOp::NvLoad { oid, va, dep },
                    (K_NVSTORE, Some(oid)) => TraceOp::NvStore { oid, va, dep },
                    // kind is one of the four memory kinds and oid is
                    // Some exactly for the Nv kinds.
                    _ => unreachable!("oid presence tracks the kind"),
                }
            }
            K_CLWB => {
                if flags != 0 {
                    return Err(TraceCorruption::BadTag(tag));
                }
                let va = self.prev_va.wrapping_add(get_svarint(data, off)?);
                self.prev_va = va;
                TraceOp::Clwb {
                    va: VirtAddr::new(va),
                }
            }
            K_FENCE => {
                if flags != 0 {
                    return Err(TraceCorruption::BadTag(tag));
                }
                TraceOp::Fence
            }
            K_BRANCH => {
                if flags > 1 {
                    return Err(TraceCorruption::BadTag(tag));
                }
                TraceOp::Branch {
                    mispredicted: flags & 1 != 0,
                }
            }
            // kind is 3 bits; all eight values are matched above.
            _ => unreachable!("3-bit kind"),
        };
        Ok(op)
    }
}

// ---------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------

/// A recorded dynamic instruction stream, stored compactly (see the
/// module docs for the encoding).
///
/// ```
/// use poat_core::VirtAddr;
/// use poat_pmem::trace::{Trace, TraceOp};
///
/// let mut t = Trace::new();
/// let a = t.push(TraceOp::Load { va: VirtAddr::new(0x1000), dep: None });
/// t.push(TraceOp::Load { va: VirtAddr::new(0x2000), dep: Some(a) });
/// t.push(TraceOp::Exec { n: 5 });
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.summary().instructions, 7);
/// assert!(t.encoded_bytes() <= 12 * t.len());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// One tag byte per op (the spine); `tags.len()` is the op count.
    tags: Vec<u8>,
    /// Varint payload bytes, in op order.
    data: Vec<u8>,
    /// Aggregate counts, maintained incrementally by `push`.
    summary: TraceSummary,
    /// Encoder delta bases (mirrored by every decoder).
    state: DeltaState,
    /// `(payload offset, n)` of the trailing op iff it is an `Exec`
    /// batch — enables in-place coalescing of adjacent batches.
    last_exec: Option<(usize, u32)>,
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        // The encoding is canonical for a given op sequence, so byte
        // equality is op-sequence equality.
        self.tags == other.tags && self.data == other.data
    }
}

impl Eq for Trace {}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op, returning its [`OpId`].
    ///
    /// Two normalizations keep the stream canonical and the replay models
    /// well-defined:
    ///
    /// * adjacent `Exec` batches coalesce (the returned id is the merged
    ///   batch's), and **empty batches (`n == 0`) are dropped** — a
    ///   zero-length batch has no dynamic effect, and letting it occupy a
    ///   slot once underflowed the out-of-order model's dispatch clock.
    ///   The returned id is the previous op's (empty batches cannot be
    ///   dependency targets);
    /// * a `dep` that does not reference an *earlier* op (`dep >= id`) is
    ///   normalized to `None`: a producer must precede its consumer, and
    ///   the replay models already treated such edges as ready-at-zero.
    pub fn push(&mut self, op: TraceOp) -> OpId {
        let id = self.tags.len() as OpId;
        match op {
            TraceOp::Exec { n: 0 } => return id.saturating_sub(1),
            TraceOp::Exec { n } => {
                if let Some((off, last_n)) = self.last_exec {
                    if let Some(sum) = last_n.checked_add(n) {
                        // Re-encode the trailing batch in place.
                        self.data.truncate(off);
                        let tag = Self::encode_exec(&mut self.data, sum);
                        // invariant: last_exec is Some only when tags is
                        // non-empty (set right after a push).
                        *self
                            .tags
                            .last_mut()
                            .expect("invariant: last_exec implies non-empty spine") = tag;
                        self.last_exec = Some((off, sum));
                        self.summary.instructions += n as u64;
                        return id - 1;
                    }
                }
                let off = self.data.len();
                let tag = Self::encode_exec(&mut self.data, n);
                self.tags.push(tag);
                self.last_exec = Some((off, n));
                self.summary.instructions += n as u64;
            }
            TraceOp::Load { va, dep } => {
                self.encode_mem(K_LOAD, None, va.raw(), dep, id);
            }
            TraceOp::Store { va, dep } => {
                self.encode_mem(K_STORE, None, va.raw(), dep, id);
            }
            TraceOp::NvLoad { oid, va, dep } => {
                self.encode_mem(K_NVLOAD, Some(oid.raw()), va.raw(), dep, id);
            }
            TraceOp::NvStore { oid, va, dep } => {
                self.encode_mem(K_NVSTORE, Some(oid.raw()), va.raw(), dep, id);
            }
            TraceOp::Clwb { va } => {
                self.tags.push(K_CLWB);
                put_svarint(&mut self.data, va.raw().wrapping_sub(self.state.prev_va));
                self.state.prev_va = va.raw();
                self.last_exec = None;
            }
            TraceOp::Fence => {
                self.tags.push(K_FENCE);
                self.last_exec = None;
            }
            TraceOp::Branch { mispredicted } => {
                self.tags
                    .push(K_BRANCH | if mispredicted { F_BIT0 } else { 0 });
                self.last_exec = None;
            }
        }
        self.summary.account(&self.normalized(op, id));
        id
    }

    /// The op as it will be decoded back (deps normalized), for summary
    /// accounting. Exec ops are accounted inline by `push`.
    fn normalized(&self, op: TraceOp, id: OpId) -> TraceOp {
        let norm = |dep: Option<OpId>| dep.filter(|&d| d < id);
        match op {
            TraceOp::Load { va, dep } => TraceOp::Load { va, dep: norm(dep) },
            TraceOp::Store { va, dep } => TraceOp::Store { va, dep: norm(dep) },
            TraceOp::NvLoad { oid, va, dep } => TraceOp::NvLoad {
                oid,
                va,
                dep: norm(dep),
            },
            TraceOp::NvStore { oid, va, dep } => TraceOp::NvStore {
                oid,
                va,
                dep: norm(dep),
            },
            // Exec batches are accounted by the coalescing arms; emit a
            // zero-instruction stand-in so `account` adds nothing twice.
            TraceOp::Exec { .. } => TraceOp::Exec { n: 0 },
            other => other,
        }
    }

    fn encode_exec(data: &mut Vec<u8>, n: u32) -> u8 {
        if n >= 1 && n <= EXEC_INLINE_MAX {
            K_EXEC | ((n as u8) << 3)
        } else {
            put_varint(data, n as u64);
            K_EXEC
        }
    }

    fn encode_mem(&mut self, kind: u8, oid: Option<u64>, va: u64, dep: Option<OpId>, id: OpId) {
        let dep = dep.filter(|&d| d < id);
        self.tags
            .push(kind | if dep.is_some() { F_BIT0 } else { 0 });
        if let Some(o) = oid {
            put_svarint(&mut self.data, o.wrapping_sub(self.state.prev_oid));
            self.state.prev_oid = o;
        }
        put_svarint(&mut self.data, va.wrapping_sub(self.state.prev_va));
        self.state.prev_va = va;
        if let Some(d) = dep {
            put_varint(&mut self.data, id - d - 1);
        }
        self.last_exec = None;
    }

    /// Streams the ops in program order, decoding on the fly; nothing is
    /// materialized. The iterator is exact-sized ([`Trace::len`] items).
    pub fn ops(&self) -> Ops<'_> {
        Ops {
            tags: &self.tags,
            data: &self.data,
            pos: 0,
            off: 0,
            state: DeltaState::default(),
        }
    }

    /// Number of trace entries (batches count once).
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Bytes of encoded trace data held in memory (tag spine + payload).
    /// Divide by [`Trace::len`] for the bytes-per-op figure the encoding
    /// is budgeted against (≤ 12 B/op; see `DESIGN.md`).
    pub fn encoded_bytes(&self) -> usize {
        self.tags.len() + self.data.len()
    }

    /// Aggregate counts (maintained incrementally; O(1)).
    pub fn summary(&self) -> TraceSummary {
        self.summary
    }

    /// The raw encoded columns — `(tag spine, payload)` — for
    /// serialization and offline tooling (`trace_io` writes them
    /// verbatim; the bench suite measures `from_encoded` validation
    /// over them). The byte layout is specified in DESIGN.md §5a,
    /// including a worked single-op example.
    pub fn encoded_columns(&self) -> (&[u8], &[u8]) {
        (&self.tags, &self.data)
    }

    /// Reassembles a trace from its raw encoded columns (the inverse of
    /// `Trace::encoded_columns`), validating the whole stream eagerly:
    /// every varint, flag combination, and dependency backreference is
    /// checked, and the summary and encoder state are rebuilt, so later
    /// streaming via [`Trace::ops`] cannot fail.
    ///
    /// # Errors
    ///
    /// [`TraceCorruption`] describing the first malformed byte sequence.
    pub fn from_encoded(tags: Vec<u8>, data: Vec<u8>) -> Result<Self, TraceCorruption> {
        let mut state = DeltaState::default();
        let mut summary = TraceSummary::default();
        let mut off = 0usize;
        let mut last_exec = None;
        for (id, &tag) in tags.iter().enumerate() {
            let before = off;
            let op = state.decode(tag, &data, &mut off, id as u64)?;
            summary.account(&op);
            last_exec = match op {
                TraceOp::Exec { n } => Some((before, n)),
                _ => None,
            };
        }
        if off != data.len() {
            return Err(TraceCorruption::TrailingData);
        }
        Ok(Trace {
            tags,
            data,
            summary,
            state,
            last_exec,
        })
    }
}

/// Byte-exact bounds of one chunk of a trace's encoded columns, plus the
/// delta-decoder snapshot needed to decode that chunk independently of
/// everything before it.
///
/// Produced by [`Trace::chunk_bounds`]; consumed by [`Trace::slice`] (the
/// sharded-replay work unit) and by `trace_io`'s chunked on-disk format
/// (each chunk header persists one of these so a memory-mapped reader can
/// decode any chunk without replaying the whole stream). The geometry is
/// a pure function of the trace contents and the requested chunk size —
/// never of worker count — which is what makes sharded replay
/// deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkBounds {
    /// Absolute [`OpId`] of the chunk's first op.
    pub first_op: OpId,
    /// Number of ops (= tag bytes) in the chunk.
    pub ops: usize,
    /// Byte offset of the chunk's payload within the payload column.
    pub payload_off: usize,
    /// Byte length of the chunk's payload.
    pub payload_len: usize,
    /// Delta base for virtual addresses at the chunk start.
    pub prev_va: u64,
    /// Delta base for ObjectIDs at the chunk start.
    pub prev_oid: u64,
}

/// A borrowed, independently decodable view of one chunk of a [`Trace`]
/// — the work unit of sharded replay.
///
/// [`TraceSlice::ops`] streams the chunk's ops with dependency edges
/// **rebased** to the slice: an edge pointing before the slice start is
/// reported as `None` (the producer completed in an earlier shard, so
/// the consumer treats the address as ready at cycle zero), and an edge
/// within the slice is renumbered relative to the slice's first op.
#[derive(Clone, Copy, Debug)]
pub struct TraceSlice<'a> {
    tags: &'a [u8],
    data: &'a [u8],
    first_op: OpId,
    prev_va: u64,
    prev_oid: u64,
}

impl<'a> TraceSlice<'a> {
    /// Absolute [`OpId`] of the slice's first op.
    pub fn first_op(&self) -> OpId {
        self.first_op
    }

    /// Number of ops in the slice.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the slice contains no ops.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Streams the slice's ops with slice-relative dependency edges.
    pub fn ops(&self) -> SliceOps<'a> {
        SliceOps {
            inner: Ops {
                tags: self.tags,
                data: self.data,
                pos: 0,
                off: 0,
                state: DeltaState {
                    prev_va: self.prev_va,
                    prev_oid: self.prev_oid,
                },
            },
            first_op: self.first_op,
        }
    }
}

/// Streaming decoder over a [`TraceSlice`] (see [`TraceSlice::ops`]).
#[derive(Clone, Debug)]
pub struct SliceOps<'a> {
    inner: Ops<'a>,
    first_op: OpId,
}

impl Iterator for SliceOps<'_> {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        // Decode against the *absolute* op id (backrefs are encoded
        // against it), then rebase the edge into slice-local numbering.
        let &tag = self.inner.tags.get(self.inner.pos)?;
        let id = self.first_op + self.inner.pos as u64;
        let op = self
            .inner
            .state
            .decode(tag, self.inner.data, &mut self.inner.off, id)
            // invariant: slices are cut from columns validated at
            // construction, so every op decodes.
            .expect("invariant: trace columns are validated at construction");
        self.inner.pos += 1;
        let rebase = |dep: Option<OpId>| dep.and_then(|d| d.checked_sub(self.first_op));
        Some(match op {
            TraceOp::Load { va, dep } => TraceOp::Load {
                va,
                dep: rebase(dep),
            },
            TraceOp::Store { va, dep } => TraceOp::Store {
                va,
                dep: rebase(dep),
            },
            TraceOp::NvLoad { oid, va, dep } => TraceOp::NvLoad {
                oid,
                va,
                dep: rebase(dep),
            },
            TraceOp::NvStore { oid, va, dep } => TraceOp::NvStore {
                oid,
                va,
                dep: rebase(dep),
            },
            other => other,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for SliceOps<'_> {}

impl Trace {
    /// Splits the trace into chunk-aligned bounds of at most
    /// `ops_per_chunk` ops each (the last chunk may be shorter), in one
    /// streaming pass over the encoding.
    ///
    /// The result depends only on the trace contents and
    /// `ops_per_chunk`, so shard geometry is stable across worker-pool
    /// widths. An empty trace yields no chunks; `ops_per_chunk` is
    /// clamped to at least 1.
    pub fn chunk_bounds(&self, ops_per_chunk: usize) -> Vec<ChunkBounds> {
        let per = ops_per_chunk.max(1);
        let mut bounds = Vec::with_capacity(self.tags.len().div_ceil(per));
        let mut state = DeltaState::default();
        let mut off = 0usize;
        let mut chunk_start = 0usize;
        let mut chunk_payload_off = 0usize;
        let mut chunk_state = state;
        for (id, &tag) in self.tags.iter().enumerate() {
            if id - chunk_start == per {
                bounds.push(ChunkBounds {
                    first_op: chunk_start as OpId,
                    ops: per,
                    payload_off: chunk_payload_off,
                    payload_len: off - chunk_payload_off,
                    prev_va: chunk_state.prev_va,
                    prev_oid: chunk_state.prev_oid,
                });
                chunk_start = id;
                chunk_payload_off = off;
                chunk_state = state;
            }
            let _ = state
                .decode(tag, &self.data, &mut off, id as u64)
                // invariant: the columns were produced by `push` or
                // validated by `from_encoded`, so every op decodes.
                .expect("invariant: trace columns are validated at construction");
        }
        if chunk_start < self.tags.len() {
            bounds.push(ChunkBounds {
                first_op: chunk_start as OpId,
                ops: self.tags.len() - chunk_start,
                payload_off: chunk_payload_off,
                payload_len: off - chunk_payload_off,
                prev_va: chunk_state.prev_va,
                prev_oid: chunk_state.prev_oid,
            });
        }
        bounds
    }

    /// Borrows the slice of this trace described by `bounds`.
    ///
    /// `bounds` must come from [`Trace::chunk_bounds`] on this same
    /// trace; mismatched bounds panic rather than decode garbage.
    pub fn slice(&self, bounds: &ChunkBounds) -> TraceSlice<'_> {
        let op_end = bounds.first_op as usize + bounds.ops;
        let payload_end = bounds.payload_off + bounds.payload_len;
        assert!(
            op_end <= self.tags.len() && payload_end <= self.data.len(),
            "chunk bounds do not belong to this trace"
        );
        TraceSlice {
            tags: &self.tags[bounds.first_op as usize..op_end],
            data: &self.data[bounds.payload_off..payload_end],
            first_op: bounds.first_op,
            prev_va: bounds.prev_va,
            prev_oid: bounds.prev_oid,
        }
    }
}

/// Streaming *checked* decoder over raw encoded columns: every varint,
/// flag combination, and dependency backreference is validated as it is
/// decoded, and trailing payload bytes surface as one final error item.
///
/// This is the lazy counterpart of [`Trace::from_encoded`]: where
/// `from_encoded` validates the whole stream up front (and later
/// iteration cannot fail), `CheckedOps` fuses validation into first
/// touch, which is what lets the memory-mapped reader in `trace_io`
/// decode a chunk without ever materializing a second copy of its
/// columns. The iterator is fused: after yielding an `Err` it yields
/// `None` forever.
#[derive(Clone, Debug)]
pub struct CheckedOps<'a> {
    tags: &'a [u8],
    data: &'a [u8],
    pos: usize,
    off: usize,
    base_id: OpId,
    state: DeltaState,
    failed: bool,
    trailing_checked: bool,
}

impl<'a> CheckedOps<'a> {
    /// Checked decode of complete columns from the stream start.
    pub fn new(tags: &'a [u8], data: &'a [u8]) -> Self {
        Self::resume(tags, data, 0, 0, 0)
    }

    /// Checked decode of a chunk cut mid-stream: `base_id` is the
    /// absolute [`OpId`] of the first op and `prev_va`/`prev_oid` are
    /// the delta bases at the chunk start (see [`ChunkBounds`]).
    pub fn resume(
        tags: &'a [u8],
        data: &'a [u8],
        base_id: OpId,
        prev_va: u64,
        prev_oid: u64,
    ) -> Self {
        CheckedOps {
            tags,
            data,
            pos: 0,
            off: 0,
            base_id,
            state: DeltaState { prev_va, prev_oid },
            failed: false,
            trailing_checked: false,
        }
    }

    /// Delta bases after the last decoded op — the snapshot to seed the
    /// next chunk's decoder with.
    pub fn delta_bases(&self) -> (u64, u64) {
        (self.state.prev_va, self.state.prev_oid)
    }
}

impl Iterator for CheckedOps<'_> {
    type Item = Result<TraceOp, TraceCorruption>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let Some(&tag) = self.tags.get(self.pos) else {
            // Spine exhausted: any payload bytes left over are garbage.
            if !self.trailing_checked {
                self.trailing_checked = true;
                if self.off != self.data.len() {
                    self.failed = true;
                    return Some(Err(TraceCorruption::TrailingData));
                }
            }
            return None;
        };
        let id = self.base_id + self.pos as u64;
        match self.state.decode(tag, self.data, &mut self.off, id) {
            Ok(op) => {
                self.pos += 1;
                Some(Ok(op))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Streaming decoder over a [`Trace`] (see [`Trace::ops`]).
#[derive(Clone, Debug)]
pub struct Ops<'a> {
    tags: &'a [u8],
    data: &'a [u8],
    pos: usize,
    off: usize,
    state: DeltaState,
}

impl Iterator for Ops<'_> {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        let &tag = self.tags.get(self.pos)?;
        let op = self
            .state
            .decode(tag, self.data, &mut self.off, self.pos as u64)
            // invariant: the columns were produced by `push` or validated
            // by `from_encoded`, so every op decodes.
            .expect("invariant: trace columns are validated at construction");
        self.pos += 1;
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.tags.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Ops<'_> {}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceOp>>(iter: I) -> Self {
        let mut t = Trace::new();
        for op in iter {
            t.push(op);
        }
        t
    }
}

impl Extend<TraceOp> for Trace {
    fn extend<I: IntoIterator<Item = TraceOp>>(&mut self, iter: I) {
        for op in iter {
            self.push(op);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = TraceOp;
    type IntoIter = Ops<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(x: u64) -> VirtAddr {
        VirtAddr::new(x)
    }

    #[test]
    fn design_5a_worked_example_bytes() {
        // DESIGN.md §5a's worked single-op example, pinned byte for
        // byte: if this test breaks, the encoding changed and the doc
        // must be updated in the same commit.
        let pool3 = poat_core::PoolId::new(3).unwrap();
        let mut t = Trace::new();
        for _ in 0..7 {
            t.push(TraceOp::Fence); // ids 0..=6
        }
        t.push(TraceOp::Load {
            va: va(0x7F33_2000_1000),
            dep: None,
        }); // id 7: leaves prev_va = 0x7F33_2000_1000
        t.push(TraceOp::NvLoad {
            oid: ObjectId::new(pool3, 0x40),
            va: va(0x7F33_2000_1000),
            dep: None,
        }); // id 8: leaves prev_oid = 0x3_0000_0040
        let (tags_before, data_before) = {
            let (tg, d) = t.encoded_columns();
            (tg.len(), d.len())
        };
        let id = t.push(TraceOp::NvLoad {
            oid: ObjectId::new(pool3, 0x80),
            va: va(0x7F33_2000_1040),
            dep: Some(7),
        });
        assert_eq!(id, 9);
        let (tags, data) = t.encoded_columns();
        assert_eq!(tags[tags_before..], [0x0B], "tag: flags=00001, kind=011");
        assert_eq!(
            data[data_before..],
            [0x80, 0x01, 0x80, 0x01, 0x01],
            "oid delta +64, va delta +64 (zigzag 128 each), dep backref 1"
        );
    }

    fn collect(t: &Trace) -> Vec<TraceOp> {
        t.ops().collect()
    }

    #[test]
    fn push_returns_sequential_ids() {
        let mut t = Trace::new();
        let a = t.push(TraceOp::Load {
            va: va(1),
            dep: None,
        });
        let b = t.push(TraceOp::Store {
            va: va(2),
            dep: Some(a),
        });
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(
            collect(&t),
            vec![
                TraceOp::Load {
                    va: va(1),
                    dep: None
                },
                TraceOp::Store {
                    va: va(2),
                    dep: Some(0)
                },
            ]
        );
    }

    #[test]
    fn exec_batches_coalesce() {
        let mut t = Trace::new();
        t.push(TraceOp::Exec { n: 3 });
        t.push(TraceOp::Exec { n: 4 });
        assert_eq!(t.len(), 1);
        assert_eq!(t.summary().instructions, 7);
        assert_eq!(collect(&t), vec![TraceOp::Exec { n: 7 }]);
        t.push(TraceOp::Fence);
        t.push(TraceOp::Exec { n: 1 });
        assert_eq!(t.len(), 3, "fence breaks coalescing");
    }

    #[test]
    fn exec_coalesces_across_inline_boundary() {
        // 20 + 20 = 40 crosses the 31-instruction inline-tag limit, so
        // the merged batch must be re-encoded with a payload varint.
        let mut t = Trace::new();
        t.push(TraceOp::Exec { n: 20 });
        t.push(TraceOp::Exec { n: 20 });
        assert_eq!(t.len(), 1);
        assert_eq!(collect(&t), vec![TraceOp::Exec { n: 40 }]);
        // And a large batch followed by a small one merges in place.
        t.push(TraceOp::Exec { n: 2 });
        assert_eq!(collect(&t), vec![TraceOp::Exec { n: 42 }]);
        assert_eq!(t.summary().instructions, 42);
    }

    #[test]
    fn exec_overflow_splits_batches() {
        let mut t = Trace::new();
        t.push(TraceOp::Exec { n: u32::MAX });
        t.push(TraceOp::Exec { n: 5 });
        assert_eq!(t.len(), 2, "u32 overflow starts a new batch");
        assert_eq!(t.summary().instructions, u32::MAX as u64 + 5);
    }

    #[test]
    fn empty_exec_batches_are_dropped() {
        let mut t = Trace::new();
        assert_eq!(t.push(TraceOp::Exec { n: 0 }), 0, "no-op on empty trace");
        assert!(t.is_empty());
        let a = t.push(TraceOp::Load {
            va: va(8),
            dep: None,
        });
        assert_eq!(t.push(TraceOp::Exec { n: 0 }), a, "returns previous id");
        assert_eq!(t.len(), 1);
        let b = t.push(TraceOp::Load {
            va: va(16),
            dep: Some(a),
        });
        assert_eq!(b, 1, "ids unaffected by dropped batches");
        assert_eq!(t.summary().instructions, 2);
    }

    #[test]
    fn forward_deps_normalize_to_none() {
        // A dep must reference an earlier op; self/forward references are
        // recorded as None (the models treated them as ready-at-zero).
        let mut t = Trace::new();
        t.push(TraceOp::Load {
            va: va(8),
            dep: Some(0), // self-reference at id 0
        });
        t.push(TraceOp::Store {
            va: va(16),
            dep: Some(99), // forward reference
        });
        assert_eq!(
            collect(&t),
            vec![
                TraceOp::Load {
                    va: va(8),
                    dep: None
                },
                TraceOp::Store {
                    va: va(16),
                    dep: None
                },
            ]
        );
    }

    #[test]
    fn summary_counts_every_kind() {
        let mut t = Trace::new();
        t.push(TraceOp::Exec { n: 10 });
        t.push(TraceOp::Load {
            va: va(1),
            dep: None,
        });
        t.push(TraceOp::Store {
            va: va(2),
            dep: None,
        });
        t.push(TraceOp::NvLoad {
            oid: ObjectId::NULL,
            va: va(3),
            dep: None,
        });
        t.push(TraceOp::NvStore {
            oid: ObjectId::NULL,
            va: va(4),
            dep: None,
        });
        t.push(TraceOp::Clwb { va: va(5) });
        t.push(TraceOp::Fence);
        t.push(TraceOp::Branch { mispredicted: true });
        t.push(TraceOp::Branch {
            mispredicted: false,
        });
        let s = t.summary();
        assert_eq!(s.instructions, 18);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.nvloads, 1);
        assert_eq!(s.nvstores, 1);
        assert_eq!(s.clwbs, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.branches, 2);
        assert_eq!(s.mispredictions, 1);
        // The incremental summary matches a recomputation from the stream.
        let mut recomputed = TraceSummary::default();
        for op in t.ops() {
            recomputed.account(&op);
        }
        assert_eq!(s, recomputed);
    }

    #[test]
    fn op_classification() {
        assert!(TraceOp::Load {
            va: va(0),
            dep: None
        }
        .is_memory());
        assert!(TraceOp::NvStore {
            oid: ObjectId::NULL,
            va: va(0),
            dep: None
        }
        .is_persistent_access());
        assert!(!TraceOp::Fence.is_memory());
        assert_eq!(TraceOp::Exec { n: 9 }.instructions(), 9);
        assert_eq!(TraceOp::Fence.instructions(), 1);
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = vec![TraceOp::Exec { n: 2 }, TraceOp::Fence]
            .into_iter()
            .collect();
        assert_eq!(t.summary().instructions, 3);
    }

    #[test]
    fn roundtrip_every_kind_with_extreme_values() {
        let ops = vec![
            TraceOp::Exec { n: 1 },
            TraceOp::Load {
                va: va(u64::MAX),
                dep: None,
            },
            TraceOp::Store {
                va: va(0),
                dep: Some(1),
            },
            TraceOp::NvLoad {
                oid: ObjectId::from_raw(u64::MAX),
                va: va(0x7FFF_FFFF_FFFF),
                dep: Some(0),
            },
            TraceOp::NvStore {
                oid: ObjectId::from_raw(0),
                va: va(1),
                dep: Some(3),
            },
            TraceOp::Clwb { va: va(1 << 47) },
            TraceOp::Fence,
            TraceOp::Branch { mispredicted: true },
            TraceOp::Exec { n: u32::MAX },
        ];
        let t: Trace = ops.iter().copied().collect();
        assert_eq!(collect(&t), ops);
    }

    #[test]
    fn bytes_per_op_stays_in_budget() {
        // A pointer-chase-like stream: nearby addresses, near deps.
        let mut t = Trace::new();
        let mut prev = None;
        for i in 0..1000u64 {
            t.push(TraceOp::Exec { n: 4 });
            prev = Some(t.push(TraceOp::Load {
                va: va(0x2000_0000_0000 + i * 64),
                dep: prev,
            }));
        }
        assert!(
            t.encoded_bytes() <= 12 * t.len(),
            "{} bytes for {} ops",
            t.encoded_bytes(),
            t.len()
        );
    }

    #[test]
    fn from_encoded_validates() {
        let mut t = Trace::new();
        t.push(TraceOp::Load {
            va: va(0x1000),
            dep: None,
        });
        t.push(TraceOp::Exec { n: 100 });
        let (tags, data) = t.encoded_columns();
        let rebuilt = Trace::from_encoded(tags.to_vec(), data.to_vec()).unwrap();
        assert_eq!(rebuilt, t);
        assert_eq!(rebuilt.summary(), t.summary());

        // Truncated payload.
        let r = Trace::from_encoded(tags.to_vec(), data[..data.len() - 1].to_vec());
        assert_eq!(r, Err(TraceCorruption::Truncated));
        // Trailing payload.
        let mut fat = data.to_vec();
        fat.push(0);
        assert_eq!(
            Trace::from_encoded(tags.to_vec(), fat),
            Err(TraceCorruption::TrailingData)
        );
        // Undefined flag bits on a Fence.
        assert_eq!(
            Trace::from_encoded(vec![K_FENCE | F_BIT0], Vec::new()),
            Err(TraceCorruption::BadTag(K_FENCE | F_BIT0))
        );
        // A dep backreference before op 0.
        assert_eq!(
            Trace::from_encoded(vec![K_LOAD | F_BIT0], vec![0, 5]),
            Err(TraceCorruption::BadDep)
        );
        // An overlong varint.
        assert_eq!(
            Trace::from_encoded(vec![K_LOAD], vec![0x80; 11]),
            Err(TraceCorruption::BadVarint)
        );
    }

    #[test]
    fn from_encoded_continues_coalescing() {
        let mut t = Trace::new();
        t.push(TraceOp::Fence);
        t.push(TraceOp::Exec { n: 3 });
        let (tags, data) = t.encoded_columns();
        let mut rebuilt = Trace::from_encoded(tags.to_vec(), data.to_vec()).unwrap();
        rebuilt.push(TraceOp::Exec { n: 4 });
        assert_eq!(rebuilt.len(), 2, "trailing batch still coalesces");
        assert_eq!(
            rebuilt.ops().last(),
            Some(TraceOp::Exec { n: 7 }),
            "merged across from_encoded"
        );
    }

    /// A mixed-kind stream with deltas and deps crossing any chunk cut.
    fn mixed_trace(n: u64) -> Trace {
        let mut t = Trace::new();
        let mut prev = None;
        for i in 0..n {
            t.push(TraceOp::Exec { n: 2 });
            prev = Some(t.push(TraceOp::Load {
                va: va(0x2000_0000_0000 + (i % 17) * 4096 + i * 8),
                dep: prev,
            }));
            if i % 5 == 0 {
                t.push(TraceOp::NvStore {
                    oid: ObjectId::from_raw(0x3_0000_0000 + i * 64),
                    va: va(0x7F00_0000_0000 + i * 256),
                    dep: prev,
                });
                t.push(TraceOp::Clwb {
                    va: va(0x7F00_0000_0000 + i * 256),
                });
                t.push(TraceOp::Fence);
            }
            if i % 7 == 0 {
                t.push(TraceOp::Branch {
                    mispredicted: i % 14 == 0,
                });
            }
        }
        t
    }

    #[test]
    fn chunk_bounds_cover_the_trace_exactly() {
        let t = mixed_trace(200);
        for per in [1, 7, 64, 1000] {
            let bounds = t.chunk_bounds(per);
            assert_eq!(bounds.iter().map(|b| b.ops).sum::<usize>(), t.len());
            assert_eq!(
                bounds.iter().map(|b| b.payload_len).sum::<usize>(),
                t.encoded_bytes() - t.len()
            );
            let mut expect_op = 0u64;
            let mut expect_off = 0usize;
            for b in &bounds {
                assert_eq!(b.first_op, expect_op);
                assert_eq!(b.payload_off, expect_off);
                assert!(b.ops <= per.max(1));
                expect_op += b.ops as u64;
                expect_off += b.payload_len;
            }
        }
        assert!(Trace::new().chunk_bounds(8).is_empty());
    }

    #[test]
    fn slices_concatenate_to_the_full_stream_with_rebased_deps() {
        let t = mixed_trace(150);
        let whole: Vec<TraceOp> = t.ops().collect();
        let bounds = t.chunk_bounds(37);
        let mut at = 0usize;
        for b in &bounds {
            let slice = t.slice(b);
            assert_eq!(slice.first_op(), b.first_op);
            assert_eq!(slice.len(), b.ops);
            for (i, got) in slice.ops().enumerate() {
                let expect = whole[at + i];
                // Kinds and operands match; deps are rebased.
                match (got, expect) {
                    (TraceOp::Load { va: gv, dep: gd }, TraceOp::Load { va: ev, dep: ed })
                    | (TraceOp::Store { va: gv, dep: gd }, TraceOp::Store { va: ev, dep: ed }) => {
                        assert_eq!(gv, ev);
                        assert_eq!(gd, ed.and_then(|d| d.checked_sub(b.first_op)));
                    }
                    (
                        TraceOp::NvLoad {
                            oid: go,
                            va: gv,
                            dep: gd,
                        },
                        TraceOp::NvLoad {
                            oid: eo,
                            va: ev,
                            dep: ed,
                        },
                    )
                    | (
                        TraceOp::NvStore {
                            oid: go,
                            va: gv,
                            dep: gd,
                        },
                        TraceOp::NvStore {
                            oid: eo,
                            va: ev,
                            dep: ed,
                        },
                    ) => {
                        assert_eq!((go, gv), (eo, ev));
                        assert_eq!(gd, ed.and_then(|d| d.checked_sub(b.first_op)));
                    }
                    (g, e) => assert_eq!(g, e),
                }
            }
            at += b.ops;
        }
        assert_eq!(at, whole.len());
    }

    #[test]
    fn checked_ops_matches_unchecked_decode() {
        let t = mixed_trace(80);
        let (tags, data) = t.encoded_columns();
        let checked: Result<Vec<TraceOp>, TraceCorruption> = CheckedOps::new(tags, data).collect();
        assert_eq!(checked.unwrap(), t.ops().collect::<Vec<_>>());
    }

    #[test]
    fn checked_ops_resumes_from_chunk_snapshots() {
        let t = mixed_trace(90);
        let whole: Vec<TraceOp> = t.ops().collect();
        let (tags, data) = t.encoded_columns();
        let mut decoded = Vec::new();
        for b in t.chunk_bounds(29) {
            let chunk_tags = &tags[b.first_op as usize..b.first_op as usize + b.ops];
            let chunk_data = &data[b.payload_off..b.payload_off + b.payload_len];
            let co = CheckedOps::resume(chunk_tags, chunk_data, b.first_op, b.prev_va, b.prev_oid);
            for r in co {
                decoded.push(r.unwrap());
            }
        }
        assert_eq!(decoded, whole);
    }

    #[test]
    fn checked_ops_surfaces_errors_and_fuses() {
        // Trailing payload garbage.
        let t = mixed_trace(10);
        let (tags, data) = t.encoded_columns();
        let mut fat = data.to_vec();
        fat.push(0x00);
        let results: Vec<_> = CheckedOps::new(tags, &fat).collect();
        assert_eq!(
            results.last(),
            Some(&Err(TraceCorruption::TrailingData)),
            "trailing garbage is the final item"
        );
        assert_eq!(results.len(), t.len() + 1);

        // Truncated payload: fused after the first error.
        let cut = &data[..data.len() - 1];
        let mut it = CheckedOps::new(tags, cut);
        let mut saw_err = false;
        for r in it.by_ref() {
            if r.is_err() {
                assert_eq!(r, Err(TraceCorruption::Truncated));
                saw_err = true;
            } else {
                assert!(!saw_err, "no items after the first error");
            }
        }
        assert!(saw_err);
        assert_eq!(it.next(), None, "fused");

        // Undefined flag bits.
        let bad: Vec<_> = CheckedOps::new(&[K_FENCE | F_BIT0], &[]).collect();
        assert_eq!(bad, vec![Err(TraceCorruption::BadTag(K_FENCE | F_BIT0))]);
    }

    #[test]
    fn pushing_after_iteration_keeps_deltas_consistent() {
        let mut t = Trace::new();
        t.push(TraceOp::Load {
            va: va(0x5000),
            dep: None,
        });
        let _ = collect(&t);
        t.push(TraceOp::Load {
            va: va(0x5008),
            dep: None,
        });
        assert_eq!(
            collect(&t)[1],
            TraceOp::Load {
                va: va(0x5008),
                dep: None
            }
        );
    }
}

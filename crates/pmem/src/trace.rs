//! The dynamic instruction trace the runtime emits.
//!
//! The paper uses Pin as a front-end for Sniper: the workload executes
//! natively and the simulator replays its instruction stream against a
//! timing model (§5.1). We reproduce that structure: the workloads run
//! natively in Rust against the [`crate::Runtime`], which emits one
//! [`TraceOp`] per dynamic instruction (batching non-memory instructions),
//! and `poat-sim`'s core models replay the trace.
//!
//! Memory operations carry an optional **dependency edge** (`dep`): the
//! index of the earlier operation that produced the address being accessed.
//! Pointer-chasing chains (a linked-list traversal, a tree descent, the
//! probe chain inside `oid_direct`) are serialized through these edges,
//! which is what lets the out-of-order core model extract realistic —
//! rather than unbounded — memory-level parallelism. This is why, as in the
//! paper, hardware translation helps an in-order core more than an
//! out-of-order core.

use poat_core::{ObjectId, VirtAddr};

/// Index of an operation within a [`Trace`]; usable as a dependency target.
pub type OpId = u64;

/// One dynamic instruction (or batch of non-memory instructions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` back-to-back non-memory instructions (ALU, moves, compares).
    Exec {
        /// Number of instructions in the batch.
        n: u32,
    },
    /// A regular load through a virtual address.
    Load {
        /// Accessed virtual address.
        va: VirtAddr,
        /// Producer of the address (pointer-chasing edge), if any.
        dep: Option<OpId>,
    },
    /// A regular store through a virtual address.
    Store {
        /// Accessed virtual address.
        va: VirtAddr,
        /// Producer of the address, if any.
        dep: Option<OpId>,
    },
    /// `nvld`: a load addressed by ObjectID, translated in hardware.
    NvLoad {
        /// The ObjectID operand.
        oid: ObjectId,
        /// The virtual address the POLB/POT translation resolves to
        /// (recorded so cache behavior can be replayed exactly).
        va: VirtAddr,
        /// Producer of the ObjectID, if any.
        dep: Option<OpId>,
    },
    /// `nvst`: a store addressed by ObjectID, translated in hardware.
    NvStore {
        /// The ObjectID operand.
        oid: ObjectId,
        /// The translated virtual address.
        va: VirtAddr,
        /// Producer of the ObjectID, if any.
        dep: Option<OpId>,
    },
    /// `clwb`: initiate write-back of the line containing `va`.
    Clwb {
        /// Line address being written back.
        va: VirtAddr,
    },
    /// `sfence`: order preceding write-backs.
    Fence,
    /// A conditional branch.
    Branch {
        /// Whether the branch mispredicted (charged the Table 4 penalty).
        mispredicted: bool,
    },
}

impl TraceOp {
    /// Number of dynamic instructions this op represents.
    pub fn instructions(&self) -> u64 {
        match self {
            TraceOp::Exec { n } => *n as u64,
            _ => 1,
        }
    }

    /// Whether this op accesses memory through the data cache.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            TraceOp::Load { .. }
                | TraceOp::Store { .. }
                | TraceOp::NvLoad { .. }
                | TraceOp::NvStore { .. }
        )
    }

    /// Whether this is an ObjectID-addressed (`nvld`/`nvst`) access.
    pub fn is_persistent_access(&self) -> bool {
        matches!(self, TraceOp::NvLoad { .. } | TraceOp::NvStore { .. })
    }
}

/// Aggregate counts over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Regular loads.
    pub loads: u64,
    /// Regular stores.
    pub stores: u64,
    /// `nvld` count.
    pub nvloads: u64,
    /// `nvst` count.
    pub nvstores: u64,
    /// `clwb` count.
    pub clwbs: u64,
    /// `sfence` count.
    pub fences: u64,
    /// Branch count.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredictions: u64,
}

/// A recorded dynamic instruction stream.
///
/// ```
/// use poat_core::VirtAddr;
/// use poat_pmem::trace::{Trace, TraceOp};
///
/// let mut t = Trace::new();
/// let a = t.push(TraceOp::Load { va: VirtAddr::new(0x1000), dep: None });
/// t.push(TraceOp::Load { va: VirtAddr::new(0x2000), dep: Some(a) });
/// t.push(TraceOp::Exec { n: 5 });
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.summary().instructions, 7);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op, returning its [`OpId`].
    pub fn push(&mut self, op: TraceOp) -> OpId {
        let id = self.ops.len() as OpId;
        // Coalesce adjacent Exec batches to keep traces compact.
        if let (TraceOp::Exec { n }, Some(TraceOp::Exec { n: last })) = (&op, self.ops.last_mut()) {
            if let Some(sum) = last.checked_add(*n) {
                *last = sum;
                return id - 1;
            }
        }
        self.ops.push(op);
        id
    }

    /// The ops in program order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of trace entries (batches count once).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Computes aggregate counts.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for op in &self.ops {
            s.instructions += op.instructions();
            match op {
                TraceOp::Load { .. } => s.loads += 1,
                TraceOp::Store { .. } => s.stores += 1,
                TraceOp::NvLoad { .. } => s.nvloads += 1,
                TraceOp::NvStore { .. } => s.nvstores += 1,
                TraceOp::Clwb { .. } => s.clwbs += 1,
                TraceOp::Fence => s.fences += 1,
                TraceOp::Branch { mispredicted } => {
                    s.branches += 1;
                    if *mispredicted {
                        s.mispredictions += 1;
                    }
                }
                TraceOp::Exec { .. } => {}
            }
        }
        s
    }
}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceOp>>(iter: I) -> Self {
        let mut t = Trace::new();
        for op in iter {
            t.push(op);
        }
        t
    }
}

impl Extend<TraceOp> for Trace {
    fn extend<I: IntoIterator<Item = TraceOp>>(&mut self, iter: I) {
        for op in iter {
            self.push(op);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceOp;
    type IntoIter = std::slice::Iter<'a, TraceOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(x: u64) -> VirtAddr {
        VirtAddr::new(x)
    }

    #[test]
    fn push_returns_sequential_ids() {
        let mut t = Trace::new();
        let a = t.push(TraceOp::Load {
            va: va(1),
            dep: None,
        });
        let b = t.push(TraceOp::Store {
            va: va(2),
            dep: Some(a),
        });
        assert_eq!(a, 0);
        assert_eq!(b, 1);
    }

    #[test]
    fn exec_batches_coalesce() {
        let mut t = Trace::new();
        t.push(TraceOp::Exec { n: 3 });
        t.push(TraceOp::Exec { n: 4 });
        assert_eq!(t.len(), 1);
        assert_eq!(t.summary().instructions, 7);
        t.push(TraceOp::Fence);
        t.push(TraceOp::Exec { n: 1 });
        assert_eq!(t.len(), 3, "fence breaks coalescing");
    }

    #[test]
    fn summary_counts_every_kind() {
        let mut t = Trace::new();
        t.push(TraceOp::Exec { n: 10 });
        t.push(TraceOp::Load {
            va: va(1),
            dep: None,
        });
        t.push(TraceOp::Store {
            va: va(2),
            dep: None,
        });
        t.push(TraceOp::NvLoad {
            oid: ObjectId::NULL,
            va: va(3),
            dep: None,
        });
        t.push(TraceOp::NvStore {
            oid: ObjectId::NULL,
            va: va(4),
            dep: None,
        });
        t.push(TraceOp::Clwb { va: va(5) });
        t.push(TraceOp::Fence);
        t.push(TraceOp::Branch { mispredicted: true });
        t.push(TraceOp::Branch {
            mispredicted: false,
        });
        let s = t.summary();
        assert_eq!(s.instructions, 18);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.nvloads, 1);
        assert_eq!(s.nvstores, 1);
        assert_eq!(s.clwbs, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.branches, 2);
        assert_eq!(s.mispredictions, 1);
    }

    #[test]
    fn op_classification() {
        assert!(TraceOp::Load {
            va: va(0),
            dep: None
        }
        .is_memory());
        assert!(TraceOp::NvStore {
            oid: ObjectId::NULL,
            va: va(0),
            dep: None
        }
        .is_persistent_access());
        assert!(!TraceOp::Fence.is_memory());
        assert_eq!(TraceOp::Exec { n: 9 }.instructions(), 9);
        assert_eq!(TraceOp::Fence.instructions(), 1);
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = vec![TraceOp::Exec { n: 2 }, TraceOp::Fence]
            .into_iter()
            .collect();
        assert_eq!(t.summary().instructions, 3);
    }
}

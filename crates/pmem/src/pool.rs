//! Pools: the file-like containers of persistent objects (paper §2.1.1).
//!
//! A pool is a contiguous persistent region identified system-wide by its
//! [`PoolId`]. Its on-media layout is:
//!
//! ```text
//! +--------+-----------------+--------------------------------------+
//! | header | undo-log area   | data area (allocator-managed)        |
//! | 64 B   | log_bytes       | ...                                  |
//! +--------+-----------------+--------------------------------------+
//! ```
//!
//! The per-pool undo-log area follows NVML's design (each pool carries its
//! own transaction log). This is also what makes the paper's Figure 10
//! observation reproducible: without logging, small pools fit in a single
//! page; with logging they span several, which is what penalizes the
//! per-page *Parallel* POLB.
//!
//! The [`PoolDirectory`] plays the role of the DAX filesystem: the durable
//! name → (id, size, physical frames) catalog that survives crashes. Pool
//! *contents* go through the full persistence model; the directory itself
//! is assumed durably maintained by the OS, as file metadata would be.

use std::collections::HashMap;

use poat_core::{PhysAddr, PoolId, VirtAddr};

/// Access mode a pool is created/opened with (the `mode` argument of
/// `pool_create` in the paper's Table 1). `pool_open` re-checks it, as the
/// paper notes ("Permissions will be checked").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PoolMode {
    /// Reads and writes permitted.
    #[default]
    ReadWrite,
    /// Reads only: writes, allocation, and transactions are rejected.
    ReadOnly,
}

/// Byte offsets of the pool-header fields (all fields are `u64` LE).
pub mod header {
    /// Magic number identifying a formatted pool.
    pub const MAGIC: u32 = 0x00;
    /// Total pool size in bytes.
    pub const SIZE: u32 = 0x08;
    /// Offset of the root object's payload (0 = not yet allocated).
    pub const ROOT_OFF: u32 = 0x10;
    /// Size requested for the root object.
    pub const ROOT_SIZE: u32 = 0x18;
    /// Bump pointer: offset of the first never-allocated byte.
    pub const BUMP: u32 = 0x20;
    /// Head of the free list (offset of a block header, 0 = empty).
    pub const FREE_HEAD: u32 = 0x28;
    /// Size of the undo-log area in bytes.
    pub const LOG_BYTES: u32 = 0x30;
    /// Total header size; the log area starts here.
    pub const SIZE_BYTES: u32 = 0x40;
}

/// Magic value stored in [`header::MAGIC`] ("POATPOOL").
pub const POOL_MAGIC: u64 = 0x504F_4154_504F_4F4C;

/// Byte offsets within a pool's undo-log area (relative to the area start).
pub mod log_layout {
    /// The transaction status word (see [`super::log_status`]): the low
    /// two bits hold the state, the rest the record tail. Packing both
    /// into one `u64` makes every log-state transition a single-word
    /// store, which stays atomic even under a torn-line crash — a
    /// two-word (flag + tail) layout can crash with a *new* flag and a
    /// *stale* tail and replay the wrong records.
    pub const STATUS: u32 = 0x00;
    /// First record starts here (0x08 is reserved).
    pub const RECORDS: u32 = 0x10;
}

/// Encoding of the undo-log status word at [`log_layout::STATUS`]:
/// `status = (tail << 2) | state`, where `tail` is the byte offset one
/// past the last valid record (relative to the log area).
pub mod log_status {
    /// No transaction: the records area is dead.
    pub const IDLE: u64 = 0;
    /// Transaction in flight: recovery must undo records up to the tail.
    pub const ACTIVE: u64 = 1;
    /// Commit point passed but deferred frees may be incomplete:
    /// recovery must redo the free intents (idempotently).
    pub const COMMITTED: u64 = 2;

    /// Packs a state and a record tail into one status word.
    pub fn encode(state: u64, tail: u32) -> u64 {
        ((tail as u64) << 2) | state
    }

    /// Unpacks `(state, tail)` from a status word.
    pub fn decode(word: u64) -> (u64, u32) {
        (word & 3, (word >> 2) as u32)
    }
}

/// Durable metadata for one pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolMeta {
    /// The pool's system-wide id.
    pub id: PoolId,
    /// The name it was created under.
    pub name: String,
    /// Total size in bytes (page-rounded).
    pub size: u64,
    /// Physical frames backing the pool, in order.
    pub frames: Vec<PhysAddr>,
    /// The access mode it was created with.
    pub mode: PoolMode,
}

/// The durable pool catalog (name ↔ id ↔ frames).
///
/// ```
/// use poat_core::PhysAddr;
/// use poat_pmem::pool::{PoolDirectory, PoolMode};
///
/// let mut dir = PoolDirectory::new();
/// let id = dir.register(
///     "accounts",
///     8192,
///     vec![PhysAddr::new(0), PhysAddr::new(4096)],
///     PoolMode::ReadWrite,
/// );
/// assert_eq!(dir.by_name("accounts").unwrap().id, id);
/// assert_eq!(dir.by_id(id).unwrap().name, "accounts");
/// ```
#[derive(Clone, Debug, Default)]
pub struct PoolDirectory {
    by_name: HashMap<String, PoolId>,
    pools: HashMap<PoolId, PoolMeta>,
    next_id: u32,
}

impl PoolDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        PoolDirectory {
            by_name: HashMap::new(),
            pools: HashMap::new(),
            next_id: 1,
        }
    }

    /// Registers a new pool, assigning it the next system-wide id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered (callers check first and
    /// return [`crate::PmemError::PoolExists`]).
    pub fn register(
        &mut self,
        name: &str,
        size: u64,
        frames: Vec<PhysAddr>,
        mode: PoolMode,
    ) -> PoolId {
        assert!(
            !self.by_name.contains_key(name),
            "pool {name:?} already registered"
        );
        let id = PoolId::new(self.next_id).expect("pool ids start at 1");
        self.next_id += 1;
        self.by_name.insert(name.to_owned(), id);
        self.pools.insert(
            id,
            PoolMeta {
                id,
                name: name.to_owned(),
                size,
                frames,
                mode,
            },
        );
        id
    }

    /// Looks a pool up by name.
    pub fn by_name(&self, name: &str) -> Option<&PoolMeta> {
        self.by_name.get(name).and_then(|id| self.pools.get(id))
    }

    /// Looks a pool up by id.
    pub fn by_id(&self, id: PoolId) -> Option<&PoolMeta> {
        self.pools.get(&id)
    }

    /// Removes a pool, returning its metadata (for frame release).
    pub fn unregister(&mut self, name: &str) -> Option<PoolMeta> {
        let id = self.by_name.remove(name)?;
        self.pools.remove(&id)
    }

    /// Whether a pool with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Number of registered pools.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Iterates over all pools in id order (deterministic recovery order).
    pub fn iter(&self) -> impl Iterator<Item = &PoolMeta> {
        let mut v: Vec<&PoolMeta> = self.pools.values().collect();
        v.sort_by_key(|m| m.id);
        v.into_iter()
    }
}

/// Runtime state of an open (mapped) pool.
#[derive(Clone, Copy, Debug)]
pub struct OpenPool {
    /// The pool's id.
    pub id: PoolId,
    /// Where it is currently mapped.
    pub base: VirtAddr,
    /// Total size in bytes.
    pub size: u64,
    /// Size of the undo-log area (0 when created without failure safety).
    pub log_bytes: u64,
    /// The access mode this mapping permits.
    pub mode: PoolMode,
}

impl OpenPool {
    /// First data-area offset (after header and log area).
    pub fn data_start(&self) -> u32 {
        header::SIZE_BYTES + self.log_bytes as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_sequential_ids() {
        let mut d = PoolDirectory::new();
        let a = d.register("a", 4096, vec![], PoolMode::default());
        let b = d.register("b", 4096, vec![], PoolMode::default());
        assert_eq!(a.raw(), 1);
        assert_eq!(b.raw(), 2);
        assert_eq!(d.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_panics() {
        let mut d = PoolDirectory::new();
        d.register("a", 4096, vec![], PoolMode::default());
        d.register("a", 4096, vec![], PoolMode::default());
    }

    #[test]
    fn unregister_frees_the_name() {
        let mut d = PoolDirectory::new();
        let id = d.register("a", 4096, vec![PhysAddr::new(0)], PoolMode::default());
        let meta = d.unregister("a").unwrap();
        assert_eq!(meta.id, id);
        assert!(!d.contains("a"));
        assert!(d.by_id(id).is_none());
        // Name reusable; id is not recycled (system-wide unique).
        let id2 = d.register("a", 4096, vec![], PoolMode::default());
        assert_ne!(id, id2);
    }

    #[test]
    fn iter_is_id_ordered() {
        let mut d = PoolDirectory::new();
        d.register("x", 1, vec![], PoolMode::default());
        d.register("y", 1, vec![], PoolMode::default());
        d.register("z", 1, vec![], PoolMode::default());
        let ids: Vec<u32> = d.iter().map(|m| m.id.raw()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn open_pool_data_start() {
        let p = OpenPool {
            id: PoolId::new(1).unwrap(),
            base: VirtAddr::new(0x1000),
            size: 1 << 16,
            log_bytes: 8192,
            mode: PoolMode::ReadWrite,
        };
        assert_eq!(p.data_start(), 0x40 + 8192);
    }

    #[test]
    fn log_status_word_roundtrips() {
        for state in [log_status::IDLE, log_status::ACTIVE, log_status::COMMITTED] {
            for tail in [0u32, log_layout::RECORDS, 8192, u32::MAX >> 2] {
                let (s, t) = log_status::decode(log_status::encode(state, tail));
                assert_eq!((s, t), (state, tail));
            }
        }
    }

    #[test]
    fn header_layout_is_disjoint() {
        let offs = [
            header::MAGIC,
            header::SIZE,
            header::ROOT_OFF,
            header::ROOT_SIZE,
            header::BUMP,
            header::FREE_HEAD,
            header::LOG_BYTES,
        ];
        for w in offs.windows(2) {
            assert!(w[1] - w[0] >= 8);
        }
        assert!(offs[offs.len() - 1] + 8 <= header::SIZE_BYTES);
    }
}

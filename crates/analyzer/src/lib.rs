// SPDX-License-Identifier: MIT OR Apache-2.0
//! `poat-analyzer`: an offline static-analysis pass that enforces the
//! POAT simulator's architectural invariants.
//!
//! The simulator's fidelity rests on invariants `rustc` cannot see:
//! every cycle/instruction cost must come from the centralized cost
//! model (`crates/pmem/src/costs.rs` — the paper's 17/97-instruction
//! software path and 30/60-cycle POT-walk penalties), every `unsafe`
//! must justify its soundness, every telemetry event and metric must
//! actually be emitted, and `docs/METRICS.md` must describe exactly
//! what the code publishes. This crate checks those invariants as a
//! CI gate (`poat-analyze --deny-warnings`).
//!
//! Design constraints:
//!
//! * **Fully offline and dependency-free.** No `syn`, no `serde` —
//!   the vendored stubs stay stubs. A ~300-line lexer
//!   ([`lexer`]) is sufficient for token-stream rules.
//! * **Machine-readable output.** `file:line: severity[rule] message`
//!   text, or `--json`.
//! * **Baselines, not suppressions-in-code.** `analyzer.toml` carries
//!   per-rule severity overrides and `file`/`file:line` allowlists
//!   ([`config`]), so pre-existing debt can be burned down without
//!   littering the source with attribute noise.
//!
//! The rules themselves are documented in [`rules`] and, with their
//! paper rationale, in `docs/ANALYZER.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod engine;
pub mod ir;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use diag::{Diagnostic, Severity};
pub use engine::{run, SourceFile, Workspace};
pub use rules::{all_rules, Rule};

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Per-function control-flow graphs lowered from the [`crate::ir`]
//! statement tree.
//!
//! The CFG is the substrate for the flow-sensitive rules (R7/R8): each
//! basic block carries the [`CallEvent`]s that execute when control
//! passes through it, and edges encode the branch/loop/match/early-exit
//! skeleton. Lowering is conservative for *may*-analyses:
//!
//! * `?` adds an edge to the *error* exit block after the statement's
//!   events — the statement may complete or may leave the function
//!   with an `Err`. Error exits are kept separate from the normal exit
//!   so exit-obligation rules (R7's "commit must be persisted before
//!   returning") do not fire on paths where the operation itself
//!   failed and reported so.
//! * loops get a header block with a back edge from the body and a
//!   skip edge past the body (zero iterations), which also
//!   over-approximates `break`.
//! * `match` arms all merge at a join block; a missing `else` gets a
//!   fall-through edge.

use crate::ir::{Block, CallEvent, Function, Stmt};

/// A basic block: straight-line events plus successor edges.
#[derive(Clone, Debug, Default)]
pub struct BasicBlock {
    /// Events executed, in order, when control passes through.
    pub events: Vec<CallEvent>,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All blocks; indices are stable.
    pub blocks: Vec<BasicBlock>,
    /// Index of the entry block.
    pub entry: usize,
    /// Index of the normal exit block: fall-off-the-end, tail
    /// expressions and `return` statements land here (always empty of
    /// events).
    pub exit: usize,
    /// Index of the error exit block: `?` early exits land here
    /// (always empty of events).
    pub err_exit: usize,
}

impl Cfg {
    /// Lowers a parsed function body into a CFG.
    pub fn build(f: &Function) -> Cfg {
        let mut b = Builder {
            blocks: vec![
                BasicBlock::default(),
                BasicBlock::default(),
                BasicBlock::default(),
            ],
            err_exit: 2,
        };
        let entry = 0;
        let exit = 1;
        let last = b.lower_block(&f.body, entry, exit);
        b.edge(last, exit);
        Cfg {
            blocks: b.blocks,
            entry,
            exit,
            err_exit: 2,
        }
    }
}

struct Builder {
    blocks: Vec<BasicBlock>,
    err_exit: usize,
}

impl Builder {
    fn fresh(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lowers `blk` starting in block `cur`; returns the block where
    /// control continues after the last statement.
    fn lower_block(&mut self, blk: &Block, mut cur: usize, exit: usize) -> usize {
        for s in &blk.stmts {
            cur = self.lower_stmt(s, cur, exit);
        }
        cur
    }

    fn lower_stmt(&mut self, s: &Stmt, cur: usize, exit: usize) -> usize {
        match s {
            Stmt::Linear { events, early_exit } => {
                self.blocks[cur].events.extend(events.iter().cloned());
                if *early_exit {
                    // The statement may bail with `Err` after its
                    // events; continue in a fresh block on the
                    // completed path.
                    let err = self.err_exit;
                    self.edge(cur, err);
                    let next = self.fresh();
                    self.edge(cur, next);
                    next
                } else {
                    cur
                }
            }
            Stmt::Return { events } => {
                self.blocks[cur].events.extend(events.iter().cloned());
                self.edge(cur, exit);
                // Fresh, unreachable-from-here block for anything after
                // the return in the same block (dead code).
                self.fresh()
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.blocks[cur].events.extend(cond.iter().cloned());
                let join = self.fresh();
                let t = self.fresh();
                self.edge(cur, t);
                let t_end = self.lower_block(then_blk, t, exit);
                self.edge(t_end, join);
                match else_blk {
                    Some(e) => {
                        let eb = self.fresh();
                        self.edge(cur, eb);
                        let e_end = self.lower_block(e, eb, exit);
                        self.edge(e_end, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            Stmt::Loop { header, body } => {
                let h = self.fresh();
                self.edge(cur, h);
                self.blocks[h].events.extend(header.iter().cloned());
                let after = self.fresh();
                let bstart = self.fresh();
                self.edge(h, bstart);
                // Exit edge: condition false / iterator dry / `break`
                // (over-approximated as exiting from the header).
                self.edge(h, after);
                let b_end = self.lower_block(body, bstart, exit);
                self.edge(b_end, h);
                after
            }
            Stmt::Match { scrutinee, arms } => {
                self.blocks[cur].events.extend(scrutinee.iter().cloned());
                let join = self.fresh();
                if arms.is_empty() {
                    self.edge(cur, join);
                }
                for arm in arms {
                    let a = self.fresh();
                    self.edge(cur, a);
                    let a_end = self.lower_block(arm, a, exit);
                    self.edge(a_end, join);
                }
                join
            }
            Stmt::Sub(b) => self.lower_block(b, cur, exit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::functions;
    use crate::lexer::lex;

    fn cfg_of(src: &str) -> Cfg {
        let fns = functions(&lex(src).tokens);
        Cfg::build(&fns[0])
    }

    /// Depth-first enumeration of every event-callee sequence from
    /// entry to exit, with loop bodies taken at most once.
    fn paths(cfg: &Cfg) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![(cfg.entry, Vec::new(), vec![0u8; cfg.blocks.len()])];
        while let Some((b, mut evs, mut seen)) = stack.pop() {
            if seen[b] >= 2 {
                continue;
            }
            seen[b] += 1;
            evs.extend(cfg.blocks[b].events.iter().map(|e| e.callee.clone()));
            if b == cfg.exit || b == cfg.err_exit {
                out.push(evs);
                continue;
            }
            for &s in &cfg.blocks[b].succs {
                stack.push((s, evs.clone(), seen.clone()));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn if_without_else_has_skip_path() {
        let cfg = cfg_of("fn f() { a(); if c { b(); } d(); }");
        let ps = paths(&cfg);
        assert!(ps.contains(&vec!["a".into(), "d".into()]));
        assert!(ps.contains(&vec!["a".into(), "b".into(), "d".into()]));
    }

    #[test]
    fn question_mark_creates_early_exit_path() {
        let cfg = cfg_of("fn f() -> R { a()?; b(); Ok(()) }");
        let ps = paths(&cfg);
        // One path stops after a()'s events, one continues through b().
        assert!(ps.iter().any(|p| p == &vec!["a".to_string()]));
        assert!(ps
            .iter()
            .any(|p| p.first().map(String::as_str) == Some("a") && p.contains(&"b".to_string())));
    }

    #[test]
    fn loop_has_zero_iteration_path_and_back_edge() {
        let cfg = cfg_of("fn f() { for x in it() { a(x); } b(); }");
        let ps = paths(&cfg);
        assert!(ps.contains(&vec!["it".into(), "b".into()]));
        assert!(ps
            .iter()
            .any(|p| p.contains(&"a".to_string()) && p.last().map(String::as_str) == Some("b")));
    }

    #[test]
    fn match_arms_are_alternative_paths() {
        let cfg = cfg_of("fn f() { match k() { A => a(), B => { b(); } } z(); }");
        let ps = paths(&cfg);
        assert!(ps.contains(&vec!["k".into(), "a".into(), "z".into()]));
        assert!(ps.contains(&vec!["k".into(), "b".into(), "z".into()]));
        assert!(!ps.contains(&vec!["k".into(), "z".into()]));
    }

    #[test]
    fn return_cuts_fall_through() {
        let cfg = cfg_of("fn f() { if c { return a(); } b(); }");
        let ps = paths(&cfg);
        assert!(ps.contains(&vec!["a".into()]));
        assert!(ps.contains(&vec!["b".into()]));
        assert!(!ps
            .iter()
            .any(|p| p.contains(&"a".to_string()) && p.contains(&"b".to_string())));
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! The six repo-specific rules.
//!
//! Each rule is a token-stream walker over the [`Workspace`]; see
//! `docs/ANALYZER.md` for the paper rationale behind every rule and
//! the conventions (e.g. `invariant:`-prefixed `expect` messages) they
//! recognize.

use crate::diag::{Diagnostic, Severity};
use crate::engine::{SourceFile, Workspace};
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// A single analysis rule.
pub trait Rule {
    /// Stable rule id, used in diagnostics and `analyzer.toml`.
    fn id(&self) -> &'static str;
    /// Default severity when `analyzer.toml` does not override it.
    fn default_severity(&self) -> Severity;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Paper rationale for `--explain <rule>`: why this invariant
    /// matters to the reproduction, in a few sentences.
    fn rationale(&self) -> &'static str;
    /// Appends findings for the whole workspace.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// The full rule set, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(MagicLatency),
        Box::new(UnsafeWithoutSafety),
        Box::new(UnwrapInHotPath),
        Box::new(TelemetryDrift),
        Box::new(NoPrintlnInLibs),
        Box::new(DocAttrHygiene),
        Box::new(PersistBeforeCommit),
        Box::new(FaultpointCoverage),
        Box::new(OrderedAtomics),
    ]
}

fn diag(
    rule: &'static str,
    sev: Severity,
    file: &SourceFile,
    line: u32,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity: sev,
        file: file.path.clone(),
        line,
        message,
    }
}

// ---------------------------------------------------------------------------
// R1: magic-latency
// ---------------------------------------------------------------------------

/// R1: bare numeric literals in cycle/instruction cost positions.
///
/// The paper's cost model (17/97-instruction software path, 30/60-cycle
/// POT-walk penalties) lives in `crates/pmem/src/costs.rs` and the
/// config defaults in `*/config.rs`; everywhere else in `sim`, `core`
/// and `pmem`, a literal `> 1` flowing into a cost-named position means
/// the model has been bypassed.
pub struct MagicLatency;

/// Whether an identifier names a cost/latency-like quantity.
fn costy_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("cycle")
        || lower.contains("latency")
        || lower.contains("penalty")
        || lower.contains("cost")
        || lower.contains("instr")
        || lower.ends_with("_lat")
}

fn int_type_ident(name: &str) -> bool {
    matches!(
        name,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

impl Rule for MagicLatency {
    fn id(&self) -> &'static str {
        "magic-latency"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "bare numeric literal in a cycle/instruction cost position; use crates/pmem/src/costs.rs or the config"
    }
    fn rationale(&self) -> &'static str {
        "The paper's evaluation hinges on exact cost constants: the 17/97-instruction \
         software translation paths and the 30/60-cycle POT-walk penalties. Those live \
         in crates/pmem/src/costs.rs and the design configs; a bare literal charged \
         anywhere else silently forks the cost model and invalidates every figure that \
         compares designs."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            let in_scope = ["crates/sim/src/", "crates/core/src/", "crates/pmem/src/"]
                .iter()
                .any(|p| f.path.starts_with(p));
            let exempt = f.path.ends_with("/costs.rs") || f.path.ends_with("/config.rs");
            if !in_scope || exempt {
                continue;
            }
            let toks = &f.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident || f.in_test(t.line) {
                    continue;
                }
                // Pattern A: advance_cycle(<literal>) — charging
                // hand-written extra cycles instead of model-derived
                // ones.
                if t.text == "advance_cycle" {
                    if let (Some(p), Some(arg)) = (toks.get(i + 1), toks.get(i + 2)) {
                        if p.is_punct('(') && arg.kind == TokKind::Int {
                            if magic_value(arg) {
                                out.push(diag(
                                    self.id(),
                                    self.default_severity(),
                                    f,
                                    arg.line,
                                    format!(
                                        "bare literal `{}` passed to advance_cycle(); derive the cost from crates/pmem/src/costs.rs or the SimConfig",
                                        arg.text
                                    ),
                                ));
                            }
                            continue;
                        }
                    }
                }
                if !costy_ident(&t.text) {
                    continue;
                }
                // Pattern B: `<cost ident> = <literal>` or
                // `<cost ident> += <literal>`.
                let rhs = match (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)) {
                    (Some(eq), Some(v), _)
                        if eq.is_punct('=')
                            && !matches!(toks.get(i + 2), Some(n) if n.is_punct('=')) =>
                    {
                        // Exclude `==` (the token after `=` being `=`)
                        // and `<=`/`>=`/`!=` (those have the other
                        // punct *before* `=`, so `eq` would not
                        // directly follow the ident).
                        if v.kind == TokKind::Int {
                            Some(v)
                        } else {
                            None
                        }
                    }
                    (Some(plus), Some(eq), Some(v))
                        if plus.is_punct('+') && eq.is_punct('=') && v.kind == TokKind::Int =>
                    {
                        Some(v)
                    }
                    _ => None,
                };
                // Pattern C: struct-literal / const positions —
                // `<cost ident>: <literal>` and
                // `<cost ident>: <int type> = <literal>`.
                let rhs = rhs.or_else(|| match (toks.get(i + 1), toks.get(i + 2)) {
                    (Some(c), Some(v))
                        if c.is_punct(':')
                            && !matches!(toks.get(i + 2), Some(n) if n.is_punct(':'))
                            && v.kind == TokKind::Int =>
                    {
                        Some(v)
                    }
                    (Some(c), Some(ty))
                        if c.is_punct(':')
                            && ty.kind == TokKind::Ident
                            && int_type_ident(&ty.text) =>
                    {
                        match (toks.get(i + 3), toks.get(i + 4)) {
                            (Some(eq), Some(v)) if eq.is_punct('=') && v.kind == TokKind::Int => {
                                Some(v)
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                });
                if let Some(v) = rhs {
                    if magic_value(v) {
                        out.push(diag(
                            self.id(),
                            self.default_severity(),
                            f,
                            v.line,
                            format!(
                                "bare literal `{}` assigned to cost-like `{}`; hoist it into crates/pmem/src/costs.rs or the config",
                                v.text, t.text
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// `0` and `1` are structural (reset, unit step); anything larger in a
/// cost position is a modeling decision that belongs in the cost model.
fn magic_value(t: &Tok) -> bool {
    t.int_value.map(|v| v > 1).unwrap_or(true)
}

// ---------------------------------------------------------------------------
// R2: unsafe-without-safety
// ---------------------------------------------------------------------------

/// R2: every `unsafe` keyword must be preceded by a `// SAFETY:`
/// comment within the three lines above it (or on the same line).
pub struct UnsafeWithoutSafety;

impl Rule for UnsafeWithoutSafety {
    fn id(&self) -> &'static str {
        "unsafe-without-safety"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "`unsafe` block/fn/impl without a preceding `// SAFETY:` comment"
    }
    fn rationale(&self) -> &'static str {
        "The simulator models persistent memory, where a soundness bug does not just \
         crash — it fabricates translation results and corrupts the very state whose \
         durability we are measuring. Every `unsafe` must carry a `// SAFETY:` comment \
         stating the invariant that makes it sound, so reviews and future edits have \
         the proof obligation in front of them."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            for t in &f.lexed.tokens {
                if !t.is_ident("unsafe") {
                    continue;
                }
                let lo = t.line.saturating_sub(3);
                let justified = f.lexed.comments.iter().any(|c| {
                    c.line_end >= lo && c.line_end <= t.line && c.text.contains("SAFETY:")
                });
                if !justified {
                    out.push(diag(
                        self.id(),
                        self.default_severity(),
                        f,
                        t.line,
                        "`unsafe` without a `// SAFETY:` comment justifying soundness".into(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R3: unwrap-in-hot-path
// ---------------------------------------------------------------------------

/// R3: `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!`
/// forbidden in hot-path library code. An `expect` whose message starts
/// with `invariant: ` is exempt — it documents a structural invariant
/// rather than papering over an error path. Test regions are exempt.
pub struct UnwrapInHotPath;

/// The hot-path scope: the whole simulator plus the POLB/POT hardware
/// models and the software-translation path.
fn hot_path(path: &str) -> bool {
    path.starts_with("crates/sim/src/")
        || path == "crates/core/src/polb.rs"
        || path == "crates/core/src/pot.rs"
        || path == "crates/pmem/src/translate.rs"
}

impl Rule for UnwrapInHotPath {
    fn id(&self) -> &'static str {
        "unwrap-in-hot-path"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "unwrap()/expect()/panic! in hot-path library code (sim, core::polb, core::pot, pmem::translate)"
    }
    fn rationale(&self) -> &'static str {
        "The hot path (simulator loop, POLB/POT hardware models, software translation) \
         executes per memory access; a panic there aborts a multi-minute run and loses \
         the telemetry that would explain it. Errors must propagate as values. \
         `expect(\"invariant: ...\")` is exempt because it documents a structural \
         invariant whose violation is a bug, not an error path."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            if !hot_path(&f.path) {
                continue;
            }
            let toks = &f.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident || f.in_test(t.line) {
                    continue;
                }
                let preceded_by_dot = i > 0 && toks[i - 1].is_punct('.');
                let followed_by_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                let followed_by_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                match t.text.as_str() {
                    "unwrap" if preceded_by_dot && followed_by_paren => {
                        out.push(diag(
                            self.id(),
                            self.default_severity(),
                            f,
                            t.line,
                            "`.unwrap()` on a hot path; return a typed error or use `.expect(\"invariant: …\")`"
                                .into(),
                        ));
                    }
                    "expect" if preceded_by_dot && followed_by_paren => {
                        let msg = toks.get(i + 2);
                        let documented = msg.is_some_and(|m| {
                            m.kind == TokKind::Str && m.text.starts_with("invariant:")
                        });
                        if !documented {
                            out.push(diag(
                                self.id(),
                                self.default_severity(),
                                f,
                                t.line,
                                "`.expect()` on a hot path without an `invariant: …` message documenting why it cannot fail"
                                    .into(),
                            ));
                        }
                    }
                    "panic" | "todo" | "unimplemented" if followed_by_bang => {
                        out.push(diag(
                            self.id(),
                            self.default_severity(),
                            f,
                            t.line,
                            format!(
                                "`{}!` in hot-path library code; return a typed error instead",
                                t.text
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R4: telemetry-drift
// ---------------------------------------------------------------------------

/// R4: telemetry declarations, emission sites, and `docs/METRICS.md`
/// must agree.
///
/// Three checks:
/// 1. every `EventKind` variant declared in
///    `crates/telemetry/src/events.rs` is emitted somewhere outside the
///    telemetry crate (dead variants are modeling debt);
/// 2. every metric name in `docs/METRICS.md` exists in code;
/// 3. every metric name in code is documented in `docs/METRICS.md`.
///
/// "Metric name in code" means a string literal of shape
/// `seg.seg.seg…` (≥ 3 lowercase segments) in non-test library code,
/// plus the `span.<phase>.nanos`/`.count` pairs synthesized from the
/// `PHASE_*` constants. Docs names may use `<placeholder>` segments,
/// which match any single segment.
pub struct TelemetryDrift;

const EVENTS_PATH: &str = "crates/telemetry/src/events.rs";
const METRICS_DOC: &str = "docs/METRICS.md";

impl Rule for TelemetryDrift {
    fn id(&self) -> &'static str {
        "telemetry-drift"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "EventKind variants without emission sites, or docs/METRICS.md out of sync with the code"
    }
    fn rationale(&self) -> &'static str {
        "Every figure reproduction is read off the telemetry layer, so the event and \
         metric catalogue is part of the experiment's interface. An EventKind nobody \
         emits, or a metric name the code publishes but docs/METRICS.md does not list \
         (or vice versa), means the observability contract has drifted and downstream \
         analysis scripts are reading stale names."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        self.check_event_kinds(ws, out);
        self.check_metric_names(ws, out);
    }
}

impl TelemetryDrift {
    fn check_event_kinds(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(events) = ws.file(EVENTS_PATH) else {
            return;
        };
        let variants = parse_enum_variants(events, "EventKind");
        for (variant, decl_line) in &variants {
            let emitted = ws.rust_files().any(|f| {
                !f.path.starts_with("crates/telemetry/src/")
                    && f.lexed
                        .tokens
                        .iter()
                        .any(|t| t.is_ident(variant) && !f.in_test(t.line))
            });
            if !emitted {
                out.push(diag(
                    self.id(),
                    self.default_severity(),
                    events,
                    *decl_line,
                    format!(
                        "EventKind::{variant} has no emission site outside the telemetry crate; emit it or remove the variant"
                    ),
                ));
            }
        }
    }

    fn check_metric_names(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(doc) = ws.file(METRICS_DOC) else {
            return;
        };
        // Code side: metric-shaped string literals in non-test library
        // code, with their first occurrence location.
        let mut code: BTreeMap<String, (String, u32)> = BTreeMap::new();
        for f in ws.rust_files() {
            for t in &f.lexed.tokens {
                if t.kind == TokKind::Str && !f.in_test(t.line) && metric_shape(&t.text) {
                    code.entry(t.text.clone())
                        .or_insert_with(|| (f.path.clone(), t.line));
                }
            }
        }
        // Span metrics are built with format!("span.{phase}.nanos"),
        // so synthesize them from the PHASE_* constants.
        if let Some(lib) = ws.file("crates/telemetry/src/lib.rs") {
            let toks = &lib.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind == TokKind::Ident && t.text.starts_with("PHASE_") && !lib.in_test(t.line)
                {
                    // `pub const PHASE_X: &str = "phase";` — find the
                    // string within the next few tokens.
                    if let Some(s) = toks[i + 1..]
                        .iter()
                        .take(6)
                        .find(|n| n.kind == TokKind::Str)
                    {
                        for suffix in ["nanos", "count"] {
                            code.entry(format!("span.{}.{}", s.text, suffix))
                                .or_insert_with(|| (lib.path.clone(), t.line));
                        }
                    }
                }
            }
        }
        // Docs side: backticked names outside fenced code blocks.
        let docs = doc_metric_names(&doc.text);
        // Direction 1: every docs name exists in code.
        for (name, line) in &docs {
            let matched = code.keys().any(|c| doc_name_matches(name, c));
            if !matched {
                out.push(diag(
                    self.id(),
                    self.default_severity(),
                    doc,
                    *line,
                    format!(
                        "`{name}` is documented in docs/METRICS.md but never emitted by the code"
                    ),
                ));
            }
        }
        // Direction 2: every code name is documented.
        for (name, (path, line)) in &code {
            let documented = docs.iter().any(|(d, _)| doc_name_matches(d, name));
            if !documented {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.default_severity(),
                    file: path.clone(),
                    line: *line,
                    message: format!(
                        "metric `{name}` is emitted here but missing from docs/METRICS.md"
                    ),
                });
            }
        }
    }
}

/// Parses the unit variants of `enum <name>` from a file's token
/// stream. Returns `(variant, line)` pairs. Handles doc comments
/// (not tokens), attributes, and explicit discriminants (`= N`).
fn parse_enum_variants(f: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let toks = &f.lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            // Find the `{`.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            j += 1;
            let mut depth = 1usize;
            let mut expect_variant = true;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if t.is_punct('{') || t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') {
                    depth -= 1;
                } else if depth == 1 {
                    if t.is_punct('#') {
                        // Skip the attribute `[…]`.
                        let mut adepth = 0usize;
                        j += 1;
                        while j < toks.len() {
                            if toks[j].is_punct('[') {
                                adepth += 1;
                            } else if toks[j].is_punct(']') {
                                adepth -= 1;
                                if adepth == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else if expect_variant && t.kind == TokKind::Ident {
                        out.push((t.text.clone(), t.line));
                        expect_variant = false;
                    } else if t.is_punct(',') {
                        expect_variant = true;
                    }
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    out
}

/// Whether a string literal looks like a metric name: at least three
/// dot-separated segments of `[a-z0-9_]+`.
fn metric_shape(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 3
        && segs.iter().all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Extracts metric names from `docs/METRICS.md`: inline backticked
/// spans outside fenced code blocks, with `{…}` label suffixes
/// stripped. Names containing `*` or other non-name characters are
/// ignored (prose globs); `<placeholder>` segments are kept for
/// wildcard matching.
fn doc_metric_names(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    let mut in_fence = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(start) = rest.find('`') {
            let after = &rest[start + 1..];
            let Some(len) = after.find('`') else {
                break;
            };
            let span = &after[..len];
            rest = &after[len + 1..];
            // Strip a `{…}` label suffix (both `{…}` and `{k=v,…}`).
            let name = match span.find('{') {
                Some(b) if span.ends_with('}') => &span[..b],
                Some(_) => continue, // unbalanced braces — prose
                None => span,
            };
            if doc_name_shape(name) && seen.insert(name.to_string()) {
                out.push((name.to_string(), idx as u32 + 1));
            }
        }
    }
    out
}

/// Docs-side name shape: ≥ 3 segments, each `[a-z0-9_]+` or a
/// `<placeholder>`.
fn doc_name_shape(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 3
        && segs.iter().all(|seg| {
            (seg.starts_with('<') && seg.ends_with('>') && seg.len() > 2)
                || (!seg.is_empty()
                    && seg
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
        })
}

/// Whether a docs name (possibly with `<placeholder>` segments) matches
/// a concrete code name.
fn doc_name_matches(doc: &str, code: &str) -> bool {
    let d: Vec<&str> = doc.split('.').collect();
    let c: Vec<&str> = code.split('.').collect();
    d.len() == c.len()
        && d.iter()
            .zip(&c)
            .all(|(ds, cs)| (ds.starts_with('<') && ds.ends_with('>')) || ds == cs)
}

// ---------------------------------------------------------------------------
// R5: no-println-in-libs
// ---------------------------------------------------------------------------

/// R5: library code must not print; output goes through the telemetry
/// registry or the harness report layer. Binary roots (`main.rs`,
/// `src/bin/`) and test regions are exempt.
pub struct NoPrintlnInLibs;

impl Rule for NoPrintlnInLibs {
    fn id(&self) -> &'static str {
        "no-println-in-libs"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "println!/eprintln!/dbg! in library code; route output through telemetry or the report layer"
    }
    fn rationale(&self) -> &'static str {
        "Library crates feed the harness, whose stdout is machine-parsed (--json, CSV, \
         report tables). A stray println! in a library interleaves with that output and \
         corrupts it; diagnostics belong in the telemetry registry or in returned \
         values the binary layer chooses how to render."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            let is_bin = f.path.ends_with("/main.rs") || f.path.contains("/src/bin/");
            if is_bin {
                continue;
            }
            let toks = &f.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident || f.in_test(t.line) {
                    continue;
                }
                let is_print_macro = matches!(
                    t.text.as_str(),
                    "println" | "print" | "eprintln" | "eprint" | "dbg"
                );
                if is_print_macro && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    out.push(diag(
                        self.id(),
                        self.default_severity(),
                        f,
                        t.line,
                        format!(
                            "`{}!` in library code; use the telemetry registry or return the text to the caller",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R6: doc-attr-hygiene
// ---------------------------------------------------------------------------

/// R6: crate hygiene. Every `lib.rs` crate root carries
/// `#![warn(missing_docs)]` (or stricter), and every crate root —
/// `lib.rs` and `main.rs` alike — starts with an SPDX license header
/// within its first five lines.
pub struct DocAttrHygiene;

fn is_crate_root(path: &str) -> Option<bool> {
    // Returns Some(is_lib) for crate roots, None otherwise.
    let lib =
        path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"));
    let bin =
        (path.starts_with("crates/") && path.ends_with("/src/main.rs")) || path == "src/main.rs";
    if lib {
        Some(true)
    } else if bin {
        Some(false)
    } else {
        None
    }
}

impl Rule for DocAttrHygiene {
    fn id(&self) -> &'static str {
        "doc-attr-hygiene"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "crate root missing #![warn(missing_docs)] or the SPDX license header"
    }
    fn rationale(&self) -> &'static str {
        "The repo is a reference reproduction: its public items are read as \
         documentation of the paper's mechanisms. #![warn(missing_docs)] on every \
         crate root keeps `cargo doc -D warnings` meaningful, and the SPDX header \
         keeps licensing auditable file-by-file."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            let Some(is_lib) = is_crate_root(&f.path) else {
                continue;
            };
            let has_spdx = f
                .lexed
                .comments
                .iter()
                .any(|c| c.line_start <= 5 && c.text.contains("SPDX-License-Identifier:"));
            if !has_spdx {
                out.push(diag(
                    self.id(),
                    self.default_severity(),
                    f,
                    1,
                    "crate root missing an `// SPDX-License-Identifier:` header in its first 5 lines"
                        .into(),
                ));
            }
            if is_lib && !has_missing_docs_lint(f) {
                out.push(diag(
                    self.id(),
                    self.default_severity(),
                    f,
                    1,
                    "library crate root missing `#![warn(missing_docs)]` (or deny/forbid)".into(),
                ));
            }
        }
    }
}

/// Scans for an inner attribute `#![warn|deny|forbid(… missing_docs …)]`.
fn has_missing_docs_lint(f: &SourceFile) -> bool {
    let toks = &f.lexed.tokens;
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('[') {
            let mut depth = 1usize;
            let mut j = i + 3;
            let mut level_ok = false;
            let mut has_lint = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if matches!(toks[j].text.as_str(), "warn" | "deny" | "forbid") {
                    level_ok = true;
                } else if toks[j].is_ident("missing_docs") {
                    has_lint = true;
                }
                j += 1;
            }
            if level_ok && has_lint {
                return true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R7: persist-before-commit (flow-sensitive)
// ---------------------------------------------------------------------------

/// The files whose writes land on (simulated) persistent media and are
/// therefore subject to the persist-ordering discipline: the pmem
/// runtime/undo-log/pool layers, the ledger's pmem medium, and the
/// serve-mode run-catalog store (POATCAT1) built on the same log.
const PERSIST_SCOPE: [&str; 5] = [
    "crates/pmem/src/runtime.rs",
    "crates/pmem/src/log.rs",
    "crates/pmem/src/pool.rs",
    "crates/ledger/src/medium.rs",
    "crates/catalog/src/store.rs",
];

/// Callees that flush-and-fence: after one of these, previously issued
/// writes are durable.
const PERSIST_CALLEES: [&str; 6] = [
    "persist_lines",
    "raw_persist",
    "raw_persist_direct",
    "persist_at",
    "persist",
    "sync_data",
];

/// Callees that store to persistent media.
const WRITE_CALLEES: [&str; 5] = [
    "write_u64_at",
    "write_bytes_at",
    "write_u64",
    "write",
    "write_all",
];

/// Argument markers that make a write a *commit/publish* operation:
/// the pool MAGIC word, the undo-log STATUS word, and the ledger
/// tail word. Writing one of these makes earlier writes reachable
/// after a crash, so everything they cover must already be persisted.
const COMMIT_MARKERS: [&str; 3] = ["MAGIC", "STATUS", "TAIL_WORD_OFF"];

/// How one call event participates in the persist-ordering discipline.
#[derive(Clone, Copy, PartialEq)]
enum PersistEvent {
    /// Flush + fence: everything issued before is now durable.
    Persist,
    /// A plain store to persistent media.
    DataWrite,
    /// A store that commits/publishes (MAGIC/STATUS/tail word) — it
    /// must itself be persisted before function exit.
    CommitWrite,
    /// `set_tail(..)`: the ledger's commit helper, which persists the
    /// tail word internally. Checked as a commit point for the caller's
    /// pending writes but adds no obligation of its own.
    SelfPersistingCommit,
    /// Not interesting to this rule.
    Other,
}

fn classify_persist_event(ev: &crate::ir::CallEvent) -> PersistEvent {
    let c = ev.callee.as_str();
    if PERSIST_CALLEES.contains(&c) {
        return PersistEvent::Persist;
    }
    if c == "set_tail" {
        return PersistEvent::SelfPersistingCommit;
    }
    if WRITE_CALLEES.contains(&c) {
        if ev.args.iter().any(|a| COMMIT_MARKERS.contains(&a.as_str())) {
            return PersistEvent::CommitWrite;
        }
        return PersistEvent::DataWrite;
    }
    PersistEvent::Other
}

/// Dataflow state for R7: the writes that may still be sitting in the
/// cache (not yet covered by a flush+fence) along some path.
#[derive(Clone, PartialEq, Default)]
struct PersistState {
    /// Unpersisted plain writes: (line, callee).
    pending_data: BTreeSet<(u32, String)>,
    /// Unpersisted commit writes: (line, callee).
    pending_commit: BTreeSet<(u32, String)>,
}

struct PersistFlow;

impl crate::dataflow::Flow for PersistFlow {
    type State = PersistState;

    fn entry_state(&self) -> PersistState {
        PersistState::default()
    }

    fn transfer(&self, ev: &crate::ir::CallEvent, state: &mut PersistState) {
        match classify_persist_event(ev) {
            PersistEvent::Persist => {
                state.pending_data.clear();
                state.pending_commit.clear();
            }
            PersistEvent::DataWrite => {
                state.pending_data.insert((ev.line, ev.callee.clone()));
            }
            PersistEvent::CommitWrite => {
                state.pending_commit.insert((ev.line, ev.callee.clone()));
            }
            PersistEvent::SelfPersistingCommit | PersistEvent::Other => {}
        }
    }

    fn join(&self, into: &mut PersistState, from: &PersistState) -> bool {
        let before = (into.pending_data.len(), into.pending_commit.len());
        into.pending_data.extend(from.pending_data.iter().cloned());
        into.pending_commit
            .extend(from.pending_commit.iter().cloned());
        (into.pending_data.len(), into.pending_commit.len()) != before
    }
}

/// R7: flow-sensitive persist-before-commit.
///
/// Along **every** path through the pmem/ledger persistence layers, a
/// write to persistent media must be covered by a flush+fence
/// (`persist_lines` / `raw_persist*` / `persist_at` / `persist` /
/// `sync_data`) before any commit/publish write (pool `MAGIC`, log
/// `STATUS`, ledger tail word) makes it reachable, and every commit
/// write must itself be persisted before the function exits. This is
/// the static form of the bug class the PR-4 crash-point sweep found
/// dynamically (six instances).
pub struct PersistBeforeCommit;

impl Rule for PersistBeforeCommit {
    fn id(&self) -> &'static str {
        "persist-before-commit"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a path exists where a persistent-media write reaches a commit/publish (or function exit) without persist"
    }
    fn rationale(&self) -> &'static str {
        "Crash consistency is an ordering property: a commit write (pool MAGIC, log \
         STATUS, ledger tail word) makes earlier writes reachable after a crash, so \
         those writes must be clwb+fenced first, and the commit itself must be \
         persisted before the function returns success. PR 4's dynamic crash-point \
         sweep found six bugs of exactly this class; this rule re-derives them \
         statically over a per-function CFG so the class cannot regress between \
         sweeps."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        use crate::dataflow::solve;
        for f in ws.rust_files() {
            if !PERSIST_SCOPE.contains(&f.path.as_str()) {
                continue;
            }
            for func in crate::ir::functions(&f.lexed.tokens) {
                if f.in_test(func.line) {
                    continue;
                }
                let cfg = crate::cfg::Cfg::build(&func);
                let entry_states = solve(&cfg, &PersistFlow);
                let mut reported: BTreeSet<(u32, String)> = BTreeSet::new();
                // Re-walk each reachable block with its solved entry
                // state to report commits that may see unpersisted
                // writes, at the exact commit line.
                for (b, entry) in entry_states.iter().enumerate() {
                    let Some(entry) = entry else { continue };
                    let mut state = entry.clone();
                    for ev in &cfg.blocks[b].events {
                        let kind = classify_persist_event(ev);
                        if matches!(
                            kind,
                            PersistEvent::CommitWrite | PersistEvent::SelfPersistingCommit
                        ) && !state.pending_data.is_empty()
                        {
                            let pending: Vec<String> = state
                                .pending_data
                                .iter()
                                .map(|(l, c)| format!("`{c}` at line {l}"))
                                .collect();
                            let msg = format!(
                                "commit via `{}` in fn `{}` may publish unpersisted write(s): {} — \
                                 persist them (clwb+fence) before the commit",
                                ev.callee,
                                func.name,
                                pending.join(", ")
                            );
                            if reported.insert((ev.line, msg.clone())) {
                                out.push(diag(self.id(), self.default_severity(), f, ev.line, msg));
                            }
                        }
                        crate::dataflow::Flow::transfer(&PersistFlow, ev, &mut state);
                    }
                }
                // Commit writes still pending at function exit were
                // never themselves persisted on some path.
                if let Some(exit_state) = &entry_states[cfg.exit] {
                    for (line, callee) in &exit_state.pending_commit {
                        let msg = format!(
                            "commit write `{callee}` in fn `{}` is not persisted on some path to \
                             function exit — add a persist before returning",
                            func.name
                        );
                        if reported.insert((*line, msg.clone())) {
                            out.push(diag(self.id(), self.default_severity(), f, *line, msg));
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R8: faultpoint-coverage
// ---------------------------------------------------------------------------

/// R8: every persist boundary in the pmem/ledger layers must be
/// reachable by the dynamic crash-point sweep.
///
/// Two facets: (a) any function that issues `clwb`/`fence` itself must
/// poll `crash_pending` (the sweep's injection hook) so a crash can be
/// simulated at that boundary; (b) every *call site* of the persist
/// family outside the family's own bodies must carry a
/// `// faultpoint: <justification>` comment within the two preceding
/// lines, tying the site to the sweep that covers it. Sites can instead
/// be baselined in `analyzer.toml` with a justification.
pub struct FaultpointCoverage;

/// Persist-family callees whose *call sites* must be annotated.
/// `sync_data` is excluded: file media flush through the OS and cannot
/// be fault-injected by the in-process sweep.
const FAULTPOINT_CALLEES: [&str; 5] = [
    "persist_lines",
    "raw_persist",
    "raw_persist_direct",
    "persist_at",
    "persist",
];

impl Rule for FaultpointCoverage {
    fn id(&self) -> &'static str {
        "faultpoint-coverage"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "persist boundary without a faultpoint: missing crash_pending poll or un-annotated persist call site"
    }
    fn rationale(&self) -> &'static str {
        "The crash-point sweep can only prove recovery at boundaries it can crash at. \
         A flush/fence path that never polls crash_pending is invisible to the sweep, \
         and a persist call site without a `// faultpoint:` annotation has no recorded \
         owner among the sweeps — both let dynamic coverage rot silently as the \
         persistence layer grows. Pangolin's lesson (PAPERS.md): fault-tolerance \
         guarantees are only as strong as the checking that enforces them."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            if !PERSIST_SCOPE.contains(&f.path.as_str()) {
                continue;
            }
            for func in crate::ir::functions(&f.lexed.tokens) {
                if f.in_test(func.line) {
                    continue;
                }
                let events = func.all_events();
                let is_family = FAULTPOINT_CALLEES.contains(&func.name.as_str());
                // Facet (a): flush/fence issuers must poll the
                // injection hook.
                let issues_flush = events
                    .iter()
                    .any(|e| e.callee == "clwb" || e.callee == "fence");
                let polls = events.iter().any(|e| e.callee == "crash_pending");
                if issues_flush && !polls {
                    out.push(diag(
                        self.id(),
                        self.default_severity(),
                        f,
                        func.line,
                        format!(
                            "fn `{}` issues clwb/fence but never polls crash_pending — the \
                             crash-point sweep cannot inject at this persist boundary",
                            func.name
                        ),
                    ));
                }
                if is_family {
                    continue; // family bodies delegate inward; call sites are the annotation points
                }
                // Facet (b): persist call sites carry a faultpoint
                // annotation within the two preceding lines.
                for ev in &events {
                    if !FAULTPOINT_CALLEES.contains(&ev.callee.as_str()) || f.in_test(ev.line) {
                        continue;
                    }
                    let lo = ev.line.saturating_sub(2);
                    let annotated = f.lexed.comments.iter().any(|c| {
                        c.line_end >= lo
                            && c.line_end <= ev.line
                            && c.text
                                .split_once("faultpoint:")
                                .is_some_and(|(_, tail)| !tail.trim().is_empty())
                    });
                    if !annotated {
                        out.push(diag(
                            self.id(),
                            self.default_severity(),
                            f,
                            ev.line,
                            format!(
                                "persist call `{}` in fn `{}` has no `// faultpoint:` annotation \
                                 naming the sweep that covers it",
                                ev.callee, func.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R9: ordered-atomics
// ---------------------------------------------------------------------------

/// R9: publication atomics must pair Release with Acquire.
///
/// For every atomic variable (grouped per file by receiver identifier),
/// the rule classifies its operations: a variable with both an
/// acquire-side (Acquire/SeqCst load or acquiring RMW) and a
/// release-side (Release/SeqCst store or releasing RMW) is a
/// *publication word* — `Relaxed` operations on it are flagged, because
/// a single relaxed access breaks the happens-before edge the seqlock
/// protocol needs. A variable with only one side is flagged as an
/// unpaired acquire/release: the fence it implies synchronizes with
/// nothing and either hides a missing store or taxes the hot path for
/// no ordering benefit.
pub struct OrderedAtomics;

const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

const ORDERING_NAMES: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One atomic operation on a receiver.
struct AtomicOp {
    method: String,
    orderings: Vec<String>,
    line: u32,
}

/// Walks back from the `.` before a method call to the receiver
/// identifier, skipping over one `[index]` expression (e.g.
/// `self.buckets[i].fetch_add(..)` → `buckets`). Returns `None` when
/// the receiver is not attributable to a simple name.
fn receiver_ident(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut i = dot - 1;
    if toks[i].is_punct(']') {
        let mut depth = 1usize;
        while i > 0 {
            i -= 1;
            if toks[i].is_punct(']') {
                depth += 1;
            } else if toks[i].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        if depth != 0 || i == 0 {
            return None;
        }
        i -= 1;
    }
    match toks[i].kind {
        // `self.0.fetch_add(..)` — tuple-struct field receiver.
        TokKind::Ident | TokKind::Int => Some(toks[i].text.clone()),
        _ => None,
    }
}

impl OrderedAtomics {
    fn collect(f: &SourceFile) -> BTreeMap<String, Vec<AtomicOp>> {
        let toks = &f.lexed.tokens;
        let mut vars: BTreeMap<String, Vec<AtomicOp>> = BTreeMap::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || !ATOMIC_METHODS.contains(&t.text.as_str())
                || f.in_test(t.line)
                || i == 0
                || !toks[i - 1].is_punct('.')
                || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            // Orderings named inside the call's parentheses.
            let mut depth = 0usize;
            let mut orderings = Vec::new();
            for u in &toks[i + 1..] {
                if u.is_punct('(') {
                    depth += 1;
                } else if u.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if u.kind == TokKind::Ident && ORDERING_NAMES.contains(&u.text.as_str()) {
                    orderings.push(u.text.clone());
                }
            }
            if orderings.is_empty() {
                continue; // not an atomic op (e.g. Config::load, io write)
            }
            let Some(recv) = receiver_ident(toks, i - 1) else {
                continue;
            };
            vars.entry(recv).or_default().push(AtomicOp {
                method: t.text.clone(),
                orderings,
                line: t.line,
            });
        }
        vars
    }
}

fn acquire_side(op: &AtomicOp) -> bool {
    let rmw = op.method != "load" && op.method != "store";
    op.orderings.iter().any(|o| match o.as_str() {
        "Acquire" | "SeqCst" => op.method == "load" || rmw,
        "AcqRel" => rmw,
        _ => false,
    })
}

fn release_side(op: &AtomicOp) -> bool {
    let rmw = op.method != "load" && op.method != "store";
    op.orderings.iter().any(|o| match o.as_str() {
        "Release" | "SeqCst" => op.method == "store" || rmw,
        "AcqRel" => rmw,
        _ => false,
    })
}

impl Rule for OrderedAtomics {
    fn id(&self) -> &'static str {
        "ordered-atomics"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "publication atomics must pair Release/Acquire; no Relaxed on publication words, no one-sided fences"
    }
    fn rationale(&self) -> &'static str {
        "The telemetry ring is a seqlock: writers publish slots with Release stores to \
         the sequence word and readers validate with Acquire loads. One Relaxed access \
         on a publication word removes the happens-before edge and lets readers observe \
         torn payloads; an Acquire with no Release partner (or vice versa) synchronizes \
         with nothing — it either hides a missing store or charges the lock-free hot \
         path a fence for free. The pairing is checked per variable so purely-Relaxed \
         counters stay untouched."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            for (var, ops) in OrderedAtomics::collect(f) {
                let has_acq = ops.iter().any(acquire_side);
                let has_rel = ops.iter().any(release_side);
                if has_acq && has_rel {
                    // Publication word: every op must be ordered.
                    for op in &ops {
                        if op.orderings.iter().any(|o| o == "Relaxed") {
                            out.push(diag(
                                self.id(),
                                self.default_severity(),
                                f,
                                op.line,
                                format!(
                                    "Relaxed `{}` on publication word `{var}` — this word pairs \
                                     Release/Acquire elsewhere; a relaxed access breaks the \
                                     happens-before edge",
                                    op.method
                                ),
                            ));
                        }
                    }
                } else if has_acq || has_rel {
                    let (side, partner) = if has_acq {
                        ("Acquire", "Release store")
                    } else {
                        ("Release", "Acquire load")
                    };
                    for op in ops.iter().filter(|o| acquire_side(o) || release_side(o)) {
                        out.push(diag(
                            self.id(),
                            self.default_severity(),
                            f,
                            op.line,
                            format!(
                                "unpaired {side} on `{var}`: no {partner} on this word anywhere in \
                                 the file — the fence synchronizes with nothing (downgrade to \
                                 Relaxed or add the missing partner)",
                                ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Behavioral good/bad coverage for every rule lives in the fixture
    // corpus (tests/fixtures.rs); only pure-helper tests remain here.

    #[test]
    fn enum_variant_parsing() {
        let f = SourceFile::new(
            "crates/telemetry/src/events.rs".into(),
            "/// Doc.\npub enum EventKind {\n    /// a\n    NvLoad = 0,\n    #[allow(dead_code)]\n    PolbHit,\n    Fault,\n}\n"
                .into(),
        );
        let v = parse_enum_variants(&f, "EventKind");
        let names: Vec<&str> = v.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["NvLoad", "PolbHit", "Fault"]);
    }

    #[test]
    fn telemetry_drift_placeholder_matching() {
        assert!(doc_name_matches(
            "span.<phase>.nanos",
            "span.pot_walk.nanos"
        ));
        assert!(!doc_name_matches(
            "span.<phase>.nanos",
            "span.pot_walk.count"
        ));
        assert!(!doc_name_matches("a.b.c", "a.b.c.d"));
        assert!(metric_shape("core.polb.hits"));
        assert!(!metric_shape("core.polb"));
        assert!(!metric_shape("a.B.c"));
        assert!(!metric_shape("span..nanos"));
    }
}

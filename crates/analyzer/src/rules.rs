// SPDX-License-Identifier: MIT OR Apache-2.0
//! The six repo-specific rules.
//!
//! Each rule is a token-stream walker over the [`Workspace`]; see
//! `docs/ANALYZER.md` for the paper rationale behind every rule and
//! the conventions (e.g. `invariant:`-prefixed `expect` messages) they
//! recognize.

use crate::diag::{Diagnostic, Severity};
use crate::engine::{SourceFile, Workspace};
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// A single analysis rule.
pub trait Rule {
    /// Stable rule id, used in diagnostics and `analyzer.toml`.
    fn id(&self) -> &'static str;
    /// Default severity when `analyzer.toml` does not override it.
    fn default_severity(&self) -> Severity;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Appends findings for the whole workspace.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// The full rule set, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(MagicLatency),
        Box::new(UnsafeWithoutSafety),
        Box::new(UnwrapInHotPath),
        Box::new(TelemetryDrift),
        Box::new(NoPrintlnInLibs),
        Box::new(DocAttrHygiene),
    ]
}

fn diag(
    rule: &'static str,
    sev: Severity,
    file: &SourceFile,
    line: u32,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity: sev,
        file: file.path.clone(),
        line,
        message,
    }
}

// ---------------------------------------------------------------------------
// R1: magic-latency
// ---------------------------------------------------------------------------

/// R1: bare numeric literals in cycle/instruction cost positions.
///
/// The paper's cost model (17/97-instruction software path, 30/60-cycle
/// POT-walk penalties) lives in `crates/pmem/src/costs.rs` and the
/// config defaults in `*/config.rs`; everywhere else in `sim`, `core`
/// and `pmem`, a literal `> 1` flowing into a cost-named position means
/// the model has been bypassed.
pub struct MagicLatency;

/// Whether an identifier names a cost/latency-like quantity.
fn costy_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("cycle")
        || lower.contains("latency")
        || lower.contains("penalty")
        || lower.contains("cost")
        || lower.contains("instr")
        || lower.ends_with("_lat")
}

fn int_type_ident(name: &str) -> bool {
    matches!(
        name,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

impl Rule for MagicLatency {
    fn id(&self) -> &'static str {
        "magic-latency"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "bare numeric literal in a cycle/instruction cost position; use crates/pmem/src/costs.rs or the config"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            let in_scope = ["crates/sim/src/", "crates/core/src/", "crates/pmem/src/"]
                .iter()
                .any(|p| f.path.starts_with(p));
            let exempt = f.path.ends_with("/costs.rs") || f.path.ends_with("/config.rs");
            if !in_scope || exempt {
                continue;
            }
            let toks = &f.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident || f.in_test(t.line) {
                    continue;
                }
                // Pattern A: advance_cycle(<literal>) — charging
                // hand-written extra cycles instead of model-derived
                // ones.
                if t.text == "advance_cycle" {
                    if let (Some(p), Some(arg)) = (toks.get(i + 1), toks.get(i + 2)) {
                        if p.is_punct('(') && arg.kind == TokKind::Int {
                            if magic_value(arg) {
                                out.push(diag(
                                    self.id(),
                                    self.default_severity(),
                                    f,
                                    arg.line,
                                    format!(
                                        "bare literal `{}` passed to advance_cycle(); derive the cost from crates/pmem/src/costs.rs or the SimConfig",
                                        arg.text
                                    ),
                                ));
                            }
                            continue;
                        }
                    }
                }
                if !costy_ident(&t.text) {
                    continue;
                }
                // Pattern B: `<cost ident> = <literal>` or
                // `<cost ident> += <literal>`.
                let rhs = match (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)) {
                    (Some(eq), Some(v), _)
                        if eq.is_punct('=')
                            && !matches!(toks.get(i + 2), Some(n) if n.is_punct('=')) =>
                    {
                        // Exclude `==` (the token after `=` being `=`)
                        // and `<=`/`>=`/`!=` (those have the other
                        // punct *before* `=`, so `eq` would not
                        // directly follow the ident).
                        if v.kind == TokKind::Int {
                            Some(v)
                        } else {
                            None
                        }
                    }
                    (Some(plus), Some(eq), Some(v))
                        if plus.is_punct('+') && eq.is_punct('=') && v.kind == TokKind::Int =>
                    {
                        Some(v)
                    }
                    _ => None,
                };
                // Pattern C: struct-literal / const positions —
                // `<cost ident>: <literal>` and
                // `<cost ident>: <int type> = <literal>`.
                let rhs = rhs.or_else(|| match (toks.get(i + 1), toks.get(i + 2)) {
                    (Some(c), Some(v))
                        if c.is_punct(':')
                            && !matches!(toks.get(i + 2), Some(n) if n.is_punct(':'))
                            && v.kind == TokKind::Int =>
                    {
                        Some(v)
                    }
                    (Some(c), Some(ty))
                        if c.is_punct(':')
                            && ty.kind == TokKind::Ident
                            && int_type_ident(&ty.text) =>
                    {
                        match (toks.get(i + 3), toks.get(i + 4)) {
                            (Some(eq), Some(v)) if eq.is_punct('=') && v.kind == TokKind::Int => {
                                Some(v)
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                });
                if let Some(v) = rhs {
                    if magic_value(v) {
                        out.push(diag(
                            self.id(),
                            self.default_severity(),
                            f,
                            v.line,
                            format!(
                                "bare literal `{}` assigned to cost-like `{}`; hoist it into crates/pmem/src/costs.rs or the config",
                                v.text, t.text
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// `0` and `1` are structural (reset, unit step); anything larger in a
/// cost position is a modeling decision that belongs in the cost model.
fn magic_value(t: &Tok) -> bool {
    t.int_value.map(|v| v > 1).unwrap_or(true)
}

// ---------------------------------------------------------------------------
// R2: unsafe-without-safety
// ---------------------------------------------------------------------------

/// R2: every `unsafe` keyword must be preceded by a `// SAFETY:`
/// comment within the three lines above it (or on the same line).
pub struct UnsafeWithoutSafety;

impl Rule for UnsafeWithoutSafety {
    fn id(&self) -> &'static str {
        "unsafe-without-safety"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "`unsafe` block/fn/impl without a preceding `// SAFETY:` comment"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            for t in &f.lexed.tokens {
                if !t.is_ident("unsafe") {
                    continue;
                }
                let lo = t.line.saturating_sub(3);
                let justified = f.lexed.comments.iter().any(|c| {
                    c.line_end >= lo && c.line_end <= t.line && c.text.contains("SAFETY:")
                });
                if !justified {
                    out.push(diag(
                        self.id(),
                        self.default_severity(),
                        f,
                        t.line,
                        "`unsafe` without a `// SAFETY:` comment justifying soundness".into(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R3: unwrap-in-hot-path
// ---------------------------------------------------------------------------

/// R3: `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!`
/// forbidden in hot-path library code. An `expect` whose message starts
/// with `invariant: ` is exempt — it documents a structural invariant
/// rather than papering over an error path. Test regions are exempt.
pub struct UnwrapInHotPath;

/// The hot-path scope: the whole simulator plus the POLB/POT hardware
/// models and the software-translation path.
fn hot_path(path: &str) -> bool {
    path.starts_with("crates/sim/src/")
        || path == "crates/core/src/polb.rs"
        || path == "crates/core/src/pot.rs"
        || path == "crates/pmem/src/translate.rs"
}

impl Rule for UnwrapInHotPath {
    fn id(&self) -> &'static str {
        "unwrap-in-hot-path"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "unwrap()/expect()/panic! in hot-path library code (sim, core::polb, core::pot, pmem::translate)"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            if !hot_path(&f.path) {
                continue;
            }
            let toks = &f.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident || f.in_test(t.line) {
                    continue;
                }
                let preceded_by_dot = i > 0 && toks[i - 1].is_punct('.');
                let followed_by_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                let followed_by_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                match t.text.as_str() {
                    "unwrap" if preceded_by_dot && followed_by_paren => {
                        out.push(diag(
                            self.id(),
                            self.default_severity(),
                            f,
                            t.line,
                            "`.unwrap()` on a hot path; return a typed error or use `.expect(\"invariant: …\")`"
                                .into(),
                        ));
                    }
                    "expect" if preceded_by_dot && followed_by_paren => {
                        let msg = toks.get(i + 2);
                        let documented = msg.is_some_and(|m| {
                            m.kind == TokKind::Str && m.text.starts_with("invariant:")
                        });
                        if !documented {
                            out.push(diag(
                                self.id(),
                                self.default_severity(),
                                f,
                                t.line,
                                "`.expect()` on a hot path without an `invariant: …` message documenting why it cannot fail"
                                    .into(),
                            ));
                        }
                    }
                    "panic" | "todo" | "unimplemented" if followed_by_bang => {
                        out.push(diag(
                            self.id(),
                            self.default_severity(),
                            f,
                            t.line,
                            format!(
                                "`{}!` in hot-path library code; return a typed error instead",
                                t.text
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R4: telemetry-drift
// ---------------------------------------------------------------------------

/// R4: telemetry declarations, emission sites, and `docs/METRICS.md`
/// must agree.
///
/// Three checks:
/// 1. every `EventKind` variant declared in
///    `crates/telemetry/src/events.rs` is emitted somewhere outside the
///    telemetry crate (dead variants are modeling debt);
/// 2. every metric name in `docs/METRICS.md` exists in code;
/// 3. every metric name in code is documented in `docs/METRICS.md`.
///
/// "Metric name in code" means a string literal of shape
/// `seg.seg.seg…` (≥ 3 lowercase segments) in non-test library code,
/// plus the `span.<phase>.nanos`/`.count` pairs synthesized from the
/// `PHASE_*` constants. Docs names may use `<placeholder>` segments,
/// which match any single segment.
pub struct TelemetryDrift;

const EVENTS_PATH: &str = "crates/telemetry/src/events.rs";
const METRICS_DOC: &str = "docs/METRICS.md";

impl Rule for TelemetryDrift {
    fn id(&self) -> &'static str {
        "telemetry-drift"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "EventKind variants without emission sites, or docs/METRICS.md out of sync with the code"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        self.check_event_kinds(ws, out);
        self.check_metric_names(ws, out);
    }
}

impl TelemetryDrift {
    fn check_event_kinds(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(events) = ws.file(EVENTS_PATH) else {
            return;
        };
        let variants = parse_enum_variants(events, "EventKind");
        for (variant, decl_line) in &variants {
            let emitted = ws.rust_files().any(|f| {
                !f.path.starts_with("crates/telemetry/src/")
                    && f.lexed
                        .tokens
                        .iter()
                        .any(|t| t.is_ident(variant) && !f.in_test(t.line))
            });
            if !emitted {
                out.push(diag(
                    self.id(),
                    self.default_severity(),
                    events,
                    *decl_line,
                    format!(
                        "EventKind::{variant} has no emission site outside the telemetry crate; emit it or remove the variant"
                    ),
                ));
            }
        }
    }

    fn check_metric_names(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(doc) = ws.file(METRICS_DOC) else {
            return;
        };
        // Code side: metric-shaped string literals in non-test library
        // code, with their first occurrence location.
        let mut code: BTreeMap<String, (String, u32)> = BTreeMap::new();
        for f in ws.rust_files() {
            for t in &f.lexed.tokens {
                if t.kind == TokKind::Str && !f.in_test(t.line) && metric_shape(&t.text) {
                    code.entry(t.text.clone())
                        .or_insert_with(|| (f.path.clone(), t.line));
                }
            }
        }
        // Span metrics are built with format!("span.{phase}.nanos"),
        // so synthesize them from the PHASE_* constants.
        if let Some(lib) = ws.file("crates/telemetry/src/lib.rs") {
            let toks = &lib.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind == TokKind::Ident && t.text.starts_with("PHASE_") && !lib.in_test(t.line)
                {
                    // `pub const PHASE_X: &str = "phase";` — find the
                    // string within the next few tokens.
                    if let Some(s) = toks[i + 1..]
                        .iter()
                        .take(6)
                        .find(|n| n.kind == TokKind::Str)
                    {
                        for suffix in ["nanos", "count"] {
                            code.entry(format!("span.{}.{}", s.text, suffix))
                                .or_insert_with(|| (lib.path.clone(), t.line));
                        }
                    }
                }
            }
        }
        // Docs side: backticked names outside fenced code blocks.
        let docs = doc_metric_names(&doc.text);
        // Direction 1: every docs name exists in code.
        for (name, line) in &docs {
            let matched = code.keys().any(|c| doc_name_matches(name, c));
            if !matched {
                out.push(diag(
                    self.id(),
                    self.default_severity(),
                    doc,
                    *line,
                    format!(
                        "`{name}` is documented in docs/METRICS.md but never emitted by the code"
                    ),
                ));
            }
        }
        // Direction 2: every code name is documented.
        for (name, (path, line)) in &code {
            let documented = docs.iter().any(|(d, _)| doc_name_matches(d, name));
            if !documented {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.default_severity(),
                    file: path.clone(),
                    line: *line,
                    message: format!(
                        "metric `{name}` is emitted here but missing from docs/METRICS.md"
                    ),
                });
            }
        }
    }
}

/// Parses the unit variants of `enum <name>` from a file's token
/// stream. Returns `(variant, line)` pairs. Handles doc comments
/// (not tokens), attributes, and explicit discriminants (`= N`).
fn parse_enum_variants(f: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let toks = &f.lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            // Find the `{`.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            j += 1;
            let mut depth = 1usize;
            let mut expect_variant = true;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if t.is_punct('{') || t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') {
                    depth -= 1;
                } else if depth == 1 {
                    if t.is_punct('#') {
                        // Skip the attribute `[…]`.
                        let mut adepth = 0usize;
                        j += 1;
                        while j < toks.len() {
                            if toks[j].is_punct('[') {
                                adepth += 1;
                            } else if toks[j].is_punct(']') {
                                adepth -= 1;
                                if adepth == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else if expect_variant && t.kind == TokKind::Ident {
                        out.push((t.text.clone(), t.line));
                        expect_variant = false;
                    } else if t.is_punct(',') {
                        expect_variant = true;
                    }
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    out
}

/// Whether a string literal looks like a metric name: at least three
/// dot-separated segments of `[a-z0-9_]+`.
fn metric_shape(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 3
        && segs.iter().all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Extracts metric names from `docs/METRICS.md`: inline backticked
/// spans outside fenced code blocks, with `{…}` label suffixes
/// stripped. Names containing `*` or other non-name characters are
/// ignored (prose globs); `<placeholder>` segments are kept for
/// wildcard matching.
fn doc_metric_names(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    let mut in_fence = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(start) = rest.find('`') {
            let after = &rest[start + 1..];
            let Some(len) = after.find('`') else {
                break;
            };
            let span = &after[..len];
            rest = &after[len + 1..];
            // Strip a `{…}` label suffix (both `{…}` and `{k=v,…}`).
            let name = match span.find('{') {
                Some(b) if span.ends_with('}') => &span[..b],
                Some(_) => continue, // unbalanced braces — prose
                None => span,
            };
            if doc_name_shape(name) && seen.insert(name.to_string()) {
                out.push((name.to_string(), idx as u32 + 1));
            }
        }
    }
    out
}

/// Docs-side name shape: ≥ 3 segments, each `[a-z0-9_]+` or a
/// `<placeholder>`.
fn doc_name_shape(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 3
        && segs.iter().all(|seg| {
            (seg.starts_with('<') && seg.ends_with('>') && seg.len() > 2)
                || (!seg.is_empty()
                    && seg
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
        })
}

/// Whether a docs name (possibly with `<placeholder>` segments) matches
/// a concrete code name.
fn doc_name_matches(doc: &str, code: &str) -> bool {
    let d: Vec<&str> = doc.split('.').collect();
    let c: Vec<&str> = code.split('.').collect();
    d.len() == c.len()
        && d.iter()
            .zip(&c)
            .all(|(ds, cs)| (ds.starts_with('<') && ds.ends_with('>')) || ds == cs)
}

// ---------------------------------------------------------------------------
// R5: no-println-in-libs
// ---------------------------------------------------------------------------

/// R5: library code must not print; output goes through the telemetry
/// registry or the harness report layer. Binary roots (`main.rs`,
/// `src/bin/`) and test regions are exempt.
pub struct NoPrintlnInLibs;

impl Rule for NoPrintlnInLibs {
    fn id(&self) -> &'static str {
        "no-println-in-libs"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "println!/eprintln!/dbg! in library code; route output through telemetry or the report layer"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            let is_bin = f.path.ends_with("/main.rs") || f.path.contains("/src/bin/");
            if is_bin {
                continue;
            }
            let toks = &f.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident || f.in_test(t.line) {
                    continue;
                }
                let is_print_macro = matches!(
                    t.text.as_str(),
                    "println" | "print" | "eprintln" | "eprint" | "dbg"
                );
                if is_print_macro && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    out.push(diag(
                        self.id(),
                        self.default_severity(),
                        f,
                        t.line,
                        format!(
                            "`{}!` in library code; use the telemetry registry or return the text to the caller",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R6: doc-attr-hygiene
// ---------------------------------------------------------------------------

/// R6: crate hygiene. Every `lib.rs` crate root carries
/// `#![warn(missing_docs)]` (or stricter), and every crate root —
/// `lib.rs` and `main.rs` alike — starts with an SPDX license header
/// within its first five lines.
pub struct DocAttrHygiene;

fn is_crate_root(path: &str) -> Option<bool> {
    // Returns Some(is_lib) for crate roots, None otherwise.
    let lib =
        path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"));
    let bin =
        (path.starts_with("crates/") && path.ends_with("/src/main.rs")) || path == "src/main.rs";
    if lib {
        Some(true)
    } else if bin {
        Some(false)
    } else {
        None
    }
}

impl Rule for DocAttrHygiene {
    fn id(&self) -> &'static str {
        "doc-attr-hygiene"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "crate root missing #![warn(missing_docs)] or the SPDX license header"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.rust_files() {
            let Some(is_lib) = is_crate_root(&f.path) else {
                continue;
            };
            let has_spdx = f
                .lexed
                .comments
                .iter()
                .any(|c| c.line_start <= 5 && c.text.contains("SPDX-License-Identifier:"));
            if !has_spdx {
                out.push(diag(
                    self.id(),
                    self.default_severity(),
                    f,
                    1,
                    "crate root missing an `// SPDX-License-Identifier:` header in its first 5 lines"
                        .into(),
                ));
            }
            if is_lib && !has_missing_docs_lint(f) {
                out.push(diag(
                    self.id(),
                    self.default_severity(),
                    f,
                    1,
                    "library crate root missing `#![warn(missing_docs)]` (or deny/forbid)".into(),
                ));
            }
        }
    }
}

/// Scans for an inner attribute `#![warn|deny|forbid(… missing_docs …)]`.
fn has_missing_docs_lint(f: &SourceFile) -> bool {
    let toks = &f.lexed.tokens;
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('[') {
            let mut depth = 1usize;
            let mut j = i + 3;
            let mut level_ok = false;
            let mut has_lint = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if matches!(toks[j].text.as_str(), "warn" | "deny" | "forbid") {
                    level_ok = true;
                } else if toks[j].is_ident("missing_docs") {
                    has_lint = true;
                }
                j += 1;
            }
            if level_ok && has_lint {
                return true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(rule: &dyn Rule, sources: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(
            sources
                .into_iter()
                .map(|(p, t)| (p.to_string(), t.to_string()))
                .collect(),
        );
        let mut out = Vec::new();
        rule.check(&ws, &mut out);
        out
    }

    #[test]
    fn magic_latency_flags_cost_assignments() {
        let d = run_rule(
            &MagicLatency,
            vec![(
                "crates/sim/src/bad.rs",
                "fn f(x: &mut S) { x.miss_penalty = 30; x.cycles += 1; cost_of(); }\n",
            )],
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("miss_penalty"));
    }

    #[test]
    fn magic_latency_exempts_costs_config_and_tests() {
        let d = run_rule(
            &MagicLatency,
            vec![
                ("crates/pmem/src/costs.rs", "pub const MISS: u64 = 97;\n"),
                (
                    "crates/sim/src/config.rs",
                    "fn d() -> u32 { let hit_latency: u32 = 2; hit_latency }\n",
                ),
                (
                    "crates/sim/src/ok.rs",
                    "#[cfg(test)]\nmod tests {\n fn t() { let c = C { miss_penalty: 30 }; }\n}\n",
                ),
                (
                    "crates/harness/src/out_of_scope.rs",
                    "fn f() { let pot_latency = 300; }\n",
                ),
            ],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn magic_latency_ignores_comparisons() {
        let d = run_rule(
            &MagicLatency,
            vec![(
                "crates/sim/src/cmp.rs",
                "fn f(c: u64) -> bool { c == 30 || latency_of() <= 60 }\n",
            )],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = run_rule(
            &UnsafeWithoutSafety,
            vec![("crates/x/src/a.rs", "fn f() { unsafe { g() } }\n")],
        );
        assert_eq!(bad.len(), 1);
        let good = run_rule(
            &UnsafeWithoutSafety,
            vec![(
                "crates/x/src/a.rs",
                "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}\n",
            )],
        );
        assert!(good.is_empty());
    }

    #[test]
    fn unwrap_rules_and_invariant_exemption() {
        let d = run_rule(
            &UnwrapInHotPath,
            vec![(
                "crates/sim/src/hot.rs",
                "fn f(x: Option<u32>) -> u32 {\n\
                     let a = x.unwrap();\n\
                     let b = x.expect(\"oops\");\n\
                     let c = x.expect(\"invariant: set in new()\");\n\
                     let d = x.unwrap_or(0);\n\
                     a + b + c + d\n\
                 }\n#[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); panic!(); } }\n",
            )],
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("unwrap"));
        assert!(d[1].message.contains("expect"));
    }

    #[test]
    fn unwrap_out_of_scope_files_ignored() {
        let d = run_rule(
            &UnwrapInHotPath,
            vec![(
                "crates/harness/src/lib.rs",
                "fn f(x: Option<u32>) { x.unwrap(); }\n",
            )],
        );
        assert!(d.is_empty());
    }

    #[test]
    fn println_in_lib_flagged_main_exempt() {
        let d = run_rule(
            &NoPrintlnInLibs,
            vec![
                ("crates/x/src/lib.rs", "fn f() { println!(\"hi\"); }\n"),
                ("crates/x/src/main.rs", "fn main() { println!(\"hi\"); }\n"),
            ],
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, "crates/x/src/lib.rs");
    }

    #[test]
    fn doc_attr_hygiene_checks_roots_only() {
        let d = run_rule(
            &DocAttrHygiene,
            vec![
                (
                    "crates/x/src/lib.rs",
                    "// SPDX-License-Identifier: MIT OR Apache-2.0\n#![warn(missing_docs)]\n//! Docs.\n",
                ),
                ("crates/y/src/lib.rs", "//! No header, no lint.\n"),
                ("crates/y/src/other.rs", "fn not_a_root() {}\n"),
                ("crates/x/src/main.rs", "// SPDX-License-Identifier: MIT OR Apache-2.0\nfn main() {}\n"),
            ],
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.file == "crates/y/src/lib.rs"));
    }

    #[test]
    fn enum_variant_parsing() {
        let f = SourceFile::new(
            "crates/telemetry/src/events.rs".into(),
            "/// Doc.\npub enum EventKind {\n    /// a\n    NvLoad = 0,\n    #[allow(dead_code)]\n    PolbHit,\n    Fault,\n}\n"
                .into(),
        );
        let v = parse_enum_variants(&f, "EventKind");
        let names: Vec<&str> = v.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["NvLoad", "PolbHit", "Fault"]);
    }

    #[test]
    fn telemetry_drift_event_emission() {
        let events = "pub enum EventKind { NvLoad, PolbHit }\n";
        let d = run_rule(
            &TelemetryDrift,
            vec![
                ("crates/telemetry/src/events.rs", events),
                (
                    "crates/sim/src/x.rs",
                    "fn f() { emit(EventKind::NvLoad); }\n",
                ),
            ],
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("PolbHit"));
    }

    #[test]
    fn telemetry_drift_docs_both_directions() {
        let d = run_rule(
            &TelemetryDrift,
            vec![
                (
                    "crates/core/src/x.rs",
                    "fn f(r: &R) { r.counter(\"core.polb.hits\").inc(); r.counter(\"core.polb.ghost\").inc(); }\n",
                ),
                (
                    "docs/METRICS.md",
                    "# Metrics\n\n| `core.polb.hits` | counter |\n| `core.polb.phantom` | counter |\n\n```\nnot.scanned.here\n```\n",
                ),
            ],
        );
        let msgs: Vec<&str> = d.iter().map(|x| x.message.as_str()).collect();
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(msgs.iter().any(|m| m.contains("core.polb.phantom")));
        assert!(msgs.iter().any(|m| m.contains("core.polb.ghost")));
    }

    #[test]
    fn telemetry_drift_placeholder_matching() {
        assert!(doc_name_matches(
            "span.<phase>.nanos",
            "span.pot_walk.nanos"
        ));
        assert!(!doc_name_matches(
            "span.<phase>.nanos",
            "span.pot_walk.count"
        ));
        assert!(!doc_name_matches("a.b.c", "a.b.c.d"));
        assert!(metric_shape("core.polb.hits"));
        assert!(!metric_shape("core.polb"));
        assert!(!metric_shape("a.B.c"));
        assert!(!metric_shape("span..nanos"));
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! A lightweight statement/branch IR lifted straight from the token
//! stream — the middle layer between [`crate::lexer`] and
//! [`crate::cfg`].
//!
//! This is deliberately not a Rust parser. It recovers exactly the
//! structure the flow-sensitive rules need and nothing more:
//!
//! * function boundaries (`fn name … { body }`),
//! * statement sequencing inside a body,
//! * the branch/loop/match skeleton (`if`/`else`, `while`/`for`/`loop`,
//!   `match` arms, `return`, `?` early exits),
//! * the ordered [`CallEvent`]s inside each statement — callee name
//!   plus the identifiers appearing in the argument list.
//!
//! Everything else (expressions, types, patterns, operator structure)
//! is skipped over with depth counting. Control flow that this layer
//! does not model — `break`/`continue` targets, `if`/`match` used in
//! expression position — degrades soundly for the *may*-analyses built
//! on top: events are still observed in source order, only with fewer
//! merge points, which can at worst add paths (conservative for
//! bug-finding rules that look for "some path without X").

use crate::lexer::{Tok, TokKind};

/// One call (or macro invocation) observed in a statement, in source
/// order.
#[derive(Clone, Debug)]
pub struct CallEvent {
    /// The called name: the identifier directly before the `(` — method
    /// name for `recv.m(…)`, last path segment for `a::b::m(…)`, macro
    /// name for `m!(…)`.
    pub callee: String,
    /// Identifier texts appearing inside the call's parentheses,
    /// including path segments of nested expressions (used for
    /// argument-marker classification, e.g. `log_layout::STATUS`).
    pub args: Vec<String>,
    /// 1-indexed source line of the callee token.
    pub line: u32,
}

/// A `{ … }` statement sequence.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement in the IR.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// A linear statement: its call events in order. `early_exit` is
    /// set when the statement contains `?` (it may leave the function
    /// after any of its events).
    Linear {
        /// Call events, in token order.
        events: Vec<CallEvent>,
        /// Whether the statement can return early (`?`).
        early_exit: bool,
    },
    /// `if cond { then } else { else }`; `else if` chains nest inside
    /// `else_blk`.
    If {
        /// Events in the condition, evaluated before the branch.
        cond: Vec<CallEvent>,
        /// The then-block.
        then_blk: Block,
        /// The else-block, if any.
        else_blk: Option<Block>,
    },
    /// `while`/`for`/`loop`. Header events are evaluated each
    /// iteration before the body.
    Loop {
        /// Events in the loop header (empty for bare `loop`).
        header: Vec<CallEvent>,
        /// The loop body.
        body: Block,
    },
    /// `match scrutinee { arms }` — scrutinee events, then exactly one
    /// arm runs.
    Match {
        /// Events in the scrutinee expression.
        scrutinee: Vec<CallEvent>,
        /// One block per arm (guard + body events together).
        arms: Vec<Block>,
    },
    /// `return …;` — events, then function exit.
    Return {
        /// Events in the returned expression.
        events: Vec<CallEvent>,
    },
    /// A nested `{ … }` (or `unsafe { … }`) in statement position.
    Sub(Block),
}

/// One function with its parsed body.
#[derive(Clone, Debug)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// The parsed body.
    pub body: Block,
}

impl Function {
    /// All call events of the function, in source order (pre-order over
    /// the statement tree).
    pub fn all_events(&self) -> Vec<&CallEvent> {
        let mut out = Vec::new();
        collect_events(&self.body, &mut out);
        out
    }
}

fn collect_events<'a>(b: &'a Block, out: &mut Vec<&'a CallEvent>) {
    for s in &b.stmts {
        match s {
            Stmt::Linear { events, .. } | Stmt::Return { events } => out.extend(events.iter()),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                out.extend(cond.iter());
                collect_events(then_blk, out);
                if let Some(e) = else_blk {
                    collect_events(e, out);
                }
            }
            Stmt::Loop { header, body } => {
                out.extend(header.iter());
                collect_events(body, out);
            }
            Stmt::Match { scrutinee, arms } => {
                out.extend(scrutinee.iter());
                for a in arms {
                    collect_events(a, out);
                }
            }
            Stmt::Sub(b) => collect_events(b, out),
        }
    }
}

/// Parses every `fn` with a body out of a token stream. Trait-method
/// signatures without bodies are skipped; nested functions are returned
/// as their own entries (their bodies also remain part of the enclosing
/// function's body, which is harmless for may-analyses).
pub fn functions(toks: &[Tok]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Find the body `{` — or a `;` (no body) — at paren depth 0.
            let mut j = i + 2;
            let mut depth = 0usize;
            let mut body_at = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && t.is_punct('{') {
                    body_at = Some(j);
                    break;
                } else if depth == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body_at {
                let mut p = Parser {
                    toks,
                    pos: open + 1,
                };
                let body = p.block();
                out.push(Function { name, line, body });
                // Continue scanning *inside* the body too (nested fns),
                // so only advance past the signature.
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + ahead)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    /// Parses statements until the matching `}` (consumed) or EOF.
    fn block(&mut self) -> Block {
        let mut stmts = Vec::new();
        loop {
            if self.peek(0).is_none() {
                break;
            }
            if self.at_punct('}') {
                self.pos += 1;
                break;
            }
            if self.at_punct(';') {
                self.pos += 1;
                continue;
            }
            if self.at_ident("if") {
                stmts.push(self.if_stmt());
            } else if self.at_ident("while") || self.at_ident("for") {
                self.pos += 1;
                let header = self.consume_until_open_brace();
                let body = self.block();
                stmts.push(Stmt::Loop { header, body });
            } else if self.at_ident("loop") && self.peek(1).is_some_and(|t| t.is_punct('{')) {
                self.pos += 2;
                let body = self.block();
                stmts.push(Stmt::Loop {
                    header: Vec::new(),
                    body,
                });
            } else if self.at_ident("match") {
                self.pos += 1;
                let scrutinee = self.consume_until_open_brace();
                let arms = self.match_arms();
                stmts.push(Stmt::Match { scrutinee, arms });
            } else if self.at_ident("return") {
                self.pos += 1;
                let (events, _) = self.consume_statement_tail();
                stmts.push(Stmt::Return { events });
            } else if self.at_punct('{') {
                self.pos += 1;
                stmts.push(Stmt::Sub(self.block()));
            } else if self.at_ident("unsafe") && self.peek(1).is_some_and(|t| t.is_punct('{')) {
                self.pos += 2;
                stmts.push(Stmt::Sub(self.block()));
            } else {
                let (events, early_exit) = self.consume_statement_tail();
                stmts.push(Stmt::Linear { events, early_exit });
            }
        }
        Block { stmts }
    }

    fn if_stmt(&mut self) -> Stmt {
        self.pos += 1; // `if`
        let cond = self.consume_until_open_brace();
        let then_blk = self.block();
        let else_blk = if self.at_ident("else") {
            self.pos += 1;
            if self.at_ident("if") {
                Some(Block {
                    stmts: vec![self.if_stmt()],
                })
            } else if self.at_punct('{') {
                self.pos += 1;
                Some(self.block())
            } else {
                None
            }
        } else {
            None
        };
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        }
    }

    /// Consumes tokens up to (and including) the next `{` at depth 0,
    /// returning the call events seen. Used for `if`/`while`/`for`
    /// conditions and `match` scrutinees, where Rust forbids bare
    /// struct literals so the first depth-0 `{` is the block.
    fn consume_until_open_brace(&mut self) -> Vec<CallEvent> {
        let start = self.pos;
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct('{') {
                break;
            }
            self.pos += 1;
        }
        let events = events_in(&self.toks[start..self.pos]);
        if self.at_punct('{') {
            self.pos += 1;
        }
        events
    }

    /// Consumes a linear statement: everything up to the `;` at depth 0
    /// (consumed) or the enclosing block's `}` (not consumed, for tail
    /// expressions). Braces inside the statement (closures, struct
    /// literals, `match`/`if` in expression position, let-else) are
    /// depth-tracked and their events kept in order.
    fn consume_statement_tail(&mut self) -> (Vec<CallEvent>, bool) {
        let start = self.pos;
        let mut depth = 0usize;
        let mut early_exit = false;
        while let Some(t) = self.peek(0) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct('}') {
                if depth == 0 {
                    break; // tail expression: leave `}` for block()
                }
                depth -= 1;
            } else if t.is_punct('?') {
                early_exit = true;
            } else if depth == 0 && t.is_punct(';') {
                self.pos += 1;
                break;
            }
            self.pos += 1;
        }
        (events_in(&self.toks[start..self.pos]), early_exit)
    }

    /// Parses `match` arms until the matching `}` (consumed). Each arm
    /// becomes one block: `pat (if guard)? => body`, where the body is
    /// either a `{ … }` block or an expression up to the `,`.
    fn match_arms(&mut self) -> Vec<Block> {
        let mut arms = Vec::new();
        loop {
            if self.peek(0).is_none() || self.at_punct('}') {
                self.pos += 1;
                break;
            }
            // Pattern + optional guard: consume until `=>` at depth 0.
            let pat_start = self.pos;
            let mut depth = 0usize;
            while let Some(t) = self.peek(0) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0
                    && t.is_punct('=')
                    && self.peek(1).is_some_and(|n| n.is_punct('>'))
                {
                    break;
                }
                self.pos += 1;
            }
            let guard_events = events_in(&self.toks[pat_start..self.pos]);
            if self.peek(0).is_some() {
                self.pos += 2; // `=>`
            }
            let mut arm = if self.at_punct('{') {
                self.pos += 1;
                self.block()
            } else {
                // Expression arm: consume until `,` at depth 0 or the
                // match's closing `}`.
                let start = self.pos;
                let mut depth = 0usize;
                while let Some(t) = self.peek(0) {
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth = depth.saturating_sub(1);
                    } else if t.is_punct('}') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(',') {
                        break;
                    }
                    self.pos += 1;
                }
                Block {
                    stmts: vec![Stmt::Linear {
                        events: events_in(&self.toks[start..self.pos]),
                        early_exit: self.toks[start..self.pos].iter().any(|t| t.is_punct('?')),
                    }],
                }
            };
            if !guard_events.is_empty() {
                arm.stmts.insert(
                    0,
                    Stmt::Linear {
                        events: guard_events,
                        early_exit: false,
                    },
                );
            }
            arms.push(arm);
            if self.at_punct(',') {
                self.pos += 1;
            }
        }
        arms
    }
}

/// Extracts call events from a flat token slice: every `ident (` and
/// `ident ! (`/`ident ! [` starts an event; the identifiers inside its
/// delimiters become `args`. Events are emitted in token order (an
/// outer call precedes its nested calls).
pub fn events_in(toks: &[Tok]) -> Vec<CallEvent> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let (open_at, open, close) = match toks.get(i + 1) {
            Some(n) if n.is_punct('(') => (i + 1, '(', ')'),
            Some(n) if n.is_punct('!') => match toks.get(i + 2) {
                Some(m) if m.is_punct('(') => (i + 2, '(', ')'),
                Some(m) if m.is_punct('[') => (i + 2, '[', ']'),
                _ => continue,
            },
            _ => continue,
        };
        let mut depth = 0usize;
        let mut args = Vec::new();
        let mut j = open_at;
        while j < toks.len() {
            let u = &toks[j];
            if u.is_punct(open) || u.is_punct(if open == '(' { '[' } else { '(' }) {
                depth += 1;
            } else if u.is_punct(close) || u.is_punct(if close == ')' { ']' } else { ')' }) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if u.kind == TokKind::Ident {
                args.push(u.text.clone());
            }
            j += 1;
        }
        out.push(CallEvent {
            callee: t.text.clone(),
            args,
            line: t.line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Function> {
        functions(&lex(src).tokens)
    }

    #[test]
    fn function_extraction_skips_bodyless_signatures() {
        let fns = parse(
            "trait T { fn sig(&mut self) -> Result<u64, E>; fn with_body(&self) { a(); } }\n\
             fn free(x: u32) -> u32 { b(x) }\n",
        );
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_body", "free"]);
    }

    #[test]
    fn call_events_in_order_with_args() {
        let fns = parse("fn f(&mut self) { self.write_u64_at(&log, log_layout::STATUS, status)?; self.persist_at(&log, 8)?; }");
        let evs = fns[0].all_events();
        let callees: Vec<&str> = evs.iter().map(|e| e.callee.as_str()).collect();
        assert_eq!(callees, vec!["write_u64_at", "persist_at"]);
        assert!(evs[0].args.iter().any(|a| a == "STATUS"));
    }

    #[test]
    fn branch_and_loop_structure() {
        let fns = parse(
            "fn f() { if cond(x) { a(); } else { b(); } for i in it() { c(i); } match k { K::A => d(), K::B => { e(); } } }",
        );
        let body = &fns[0].body;
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(
            &body.stmts[0],
            Stmt::If {
                else_blk: Some(_),
                ..
            }
        ));
        assert!(matches!(&body.stmts[1], Stmt::Loop { .. }));
        match &body.stmts[2] {
            Stmt::Match { arms, .. } => assert_eq!(arms.len(), 2),
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn early_exit_and_return_detected() {
        let fns = parse("fn f() -> Result<(), E> { g()?; if x { return Err(E); } h(); Ok(()) }");
        let body = &fns[0].body;
        assert!(matches!(
            &body.stmts[0],
            Stmt::Linear {
                early_exit: true,
                ..
            }
        ));
        match &body.stmts[1] {
            Stmt::If { then_blk, .. } => {
                assert!(matches!(&then_blk.stmts[0], Stmt::Return { .. }))
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn let_else_and_expression_braces_stay_linear() {
        let fns = parse(
            "fn f() { let Some(k) = from(v) else { break; }; let x = if c { a() } else { b() }; }",
        );
        let body = &fns[0].body;
        assert_eq!(body.stmts.len(), 2);
        let evs = fns[0].all_events();
        let callees: Vec<&str> = evs.iter().map(|e| e.callee.as_str()).collect();
        assert_eq!(callees, vec!["Some", "from", "a", "b"]);
    }

    #[test]
    fn nested_functions_both_extracted() {
        let fns = parse("fn outer() { fn inner() { x(); } inner(); }");
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! `poat-analyze`: the CLI for the POAT static-analysis pass.
//!
//! ```text
//! poat-analyze [--root DIR] [--config PATH] [--json] [--deny-warnings]
//!              [--write-baseline PATH] [--list-rules] [--explain RULE]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (errors always; warnings only
//! under `--deny-warnings`), `2` usage or I/O error. `--explain` exits
//! `0` after printing the rule's catalogue entry and rationale, or `2`
//! for an unknown rule id.

use poat_analyzer::{all_rules, Config, Severity, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny_warnings: bool,
    write_baseline: Option<PathBuf>,
    list_rules: bool,
    explain: Option<String>,
}

const USAGE: &str = "usage: poat-analyze [--root DIR] [--config PATH] [--json] \
[--deny-warnings] [--write-baseline PATH] [--list-rules] [--explain RULE]\n\n\
Static-analysis gate for the POAT workspace; see docs/ANALYZER.md.\n\
  --root DIR             workspace root to analyze (default: .)\n\
  --config PATH          analyzer.toml (default: <root>/analyzer.toml if present)\n\
  --json                 emit findings as JSON\n\
  --deny-warnings        exit non-zero on warnings, not just errors\n\
  --write-baseline PATH  append current findings to the allowlists and write PATH\n\
  --list-rules           print the rule catalogue and exit\n\
  --explain RULE         print one rule's catalogue entry and paper rationale,\n\
                         then exit (0 on success, 2 for an unknown rule id)\n";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        deny_warnings: false,
        write_baseline: None,
        list_rules: false,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?))
            }
            "--json" => args.json = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(
                    it.next().ok_or("--write-baseline needs a value")?,
                ))
            }
            "--list-rules" => args.list_rules = true,
            "--explain" => args.explain = Some(it.next().ok_or("--explain needs a rule id")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("poat-analyze: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let rules = all_rules();
    if args.list_rules {
        for r in &rules {
            println!(
                "{:<24} {:<8} {}",
                r.id(),
                r.default_severity().to_string(),
                r.description()
            );
        }
        return ExitCode::SUCCESS;
    }
    if let Some(id) = &args.explain {
        // Same strings as --list-rules, plus the rationale paragraph.
        let Some(r) = rules.iter().find(|r| r.id() == id) else {
            eprintln!("poat-analyze: unknown rule `{id}` (see --list-rules)");
            return ExitCode::from(2);
        };
        println!(
            "{:<24} {:<8} {}\n\n{}",
            r.id(),
            r.default_severity().to_string(),
            r.description(),
            r.rationale()
        );
        return ExitCode::SUCCESS;
    }

    let config_path = args.config.clone().or_else(|| {
        let p = args.root.join("analyzer.toml");
        p.is_file().then_some(p)
    });
    let mut config = Config::default();
    if let Some(path) = &config_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("poat-analyze: read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        config = match Config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("poat-analyze: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
    }

    let ws = match Workspace::load(&args.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("poat-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = poat_analyzer::run(&ws, &rules, &config);

    if let Some(path) = &args.write_baseline {
        let mut baseline = config.clone();
        for d in &diags {
            baseline
                .rules
                .entry(d.rule.to_string())
                .or_default()
                .allow
                .push(d.location_key());
        }
        for rc in baseline.rules.values_mut() {
            rc.allow.sort();
            rc.allow.dedup();
        }
        if let Err(e) = std::fs::write(path, baseline.render()) {
            eprintln!("poat-analyze: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "poat-analyze: baselined {} finding(s) into {}",
            diags.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", poat_analyzer::diag::render_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    if !args.json {
        let scanned = ws.files.len();
        if errors + warnings == 0 {
            eprintln!("poat-analyze: {scanned} files clean");
        } else {
            eprintln!(
                "poat-analyze: {errors} error(s), {warnings} warning(s) across {scanned} files"
            );
        }
    }
    if errors > 0 || (args.deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

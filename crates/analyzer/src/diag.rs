// SPDX-License-Identifier: MIT OR Apache-2.0
//! Diagnostics: severities, findings, and text/JSON rendering.

use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never affects the exit code.
    Note,
    /// A warning; fails the run only under `--deny-warnings`.
    Warning,
    /// An error; always fails the run.
    Error,
}

impl Severity {
    /// Parses a severity name as written in `analyzer.toml`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "note" | "allow" => Some(Severity::Note),
            "warn" | "warning" => Some(Severity::Warning),
            "deny" | "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// One finding from one rule at one source location.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `magic-latency`).
    pub rule: &'static str,
    /// Severity after config overrides are applied.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-indexed line (0 for file-level findings such as a missing
    /// crate attribute).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Renders the canonical single-line machine-readable form:
    /// `file:line: severity[rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}[{}] {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }

    /// The `file:line` key used by allowlists and baselines. File-level
    /// findings use line 0, so `path:0` (or the bare path in an
    /// allowlist) matches them.
    pub fn location_key(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a batch of diagnostics as a JSON document (hand-rolled — the
/// analyzer is dependency-free by design).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(d.rule),
            d.severity,
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    out.push_str(&format!(
        "  ],\n  \"errors\": {errors},\n  \"warnings\": {warnings}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_forms() {
        let d = Diagnostic {
            rule: "magic-latency",
            severity: Severity::Warning,
            file: "crates/sim/src/xlate.rs".into(),
            line: 42,
            message: "bare literal `30` in cost position".into(),
        };
        assert_eq!(
            d.render(),
            "crates/sim/src/xlate.rs:42: warning[magic-latency] bare literal `30` in cost position"
        );
        assert_eq!(d.location_key(), "crates/sim/src/xlate.rs:42");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let d = Diagnostic {
            rule: "r",
            severity: Severity::Error,
            file: "a\"b.rs".into(),
            line: 1,
            message: "line1\nline2\ttab".into(),
        };
        let j = render_json(&[d]);
        assert!(j.contains("\\\"b.rs"));
        assert!(j.contains("line1\\nline2\\ttab"));
        assert!(j.contains("\"errors\": 1"));
        assert!(j.contains("\"warnings\": 0"));
    }

    #[test]
    fn severity_parse_and_order() {
        assert_eq!(Severity::parse("warn"), Some(Severity::Warning));
        assert_eq!(Severity::parse("deny"), Some(Severity::Error));
        assert_eq!(Severity::parse("allow"), Some(Severity::Note));
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Workspace loading, test-region detection, and the rule-running
//! engine.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{self, Lexed};
use crate::rules::Rule;
use std::fs;
use std::path::{Path, PathBuf};

/// One file under analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Raw file contents.
    pub text: String,
    /// Token stream + comments (empty for non-Rust files).
    pub lexed: Lexed,
    /// 1-indexed lines that fall inside `#[cfg(test)]` / `#[test]`
    /// regions. `test_lines[line as usize - 1]`, `false` past the end.
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Builds a source file, lexing `.rs` contents and marking test
    /// regions.
    pub fn new(path: String, text: String) -> SourceFile {
        let is_rust = path.ends_with(".rs");
        let lexed = if is_rust {
            lexer::lex(&text)
        } else {
            Lexed::default()
        };
        let test_lines = if is_rust {
            mark_test_lines(&lexed, &text)
        } else {
            Vec::new()
        };
        SourceFile {
            path,
            text,
            lexed,
            test_lines,
        }
    }

    /// Whether 1-indexed `line` is inside a test region.
    pub fn in_test(&self, line: u32) -> bool {
        line >= 1
            && self
                .test_lines
                .get(line as usize - 1)
                .copied()
                .unwrap_or(false)
    }
}

/// Marks the line span of every item annotated `#[cfg(test)]` or
/// `#[test]`: from the attribute through the matching close brace of
/// the item body (or through the `;` for brace-less items).
fn mark_test_lines(lexed: &Lexed, text: &str) -> Vec<bool> {
    let line_count = text.lines().count();
    let mut marks = vec![false; line_count];
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
            } else if matches!(toks[j].kind, crate::lexer::TokKind::Ident) {
                idents.push(&toks[j].text);
            }
            j += 1;
        }
        let is_test_attr = match idents.first() {
            Some(&"test") => true,
            Some(&"cfg") => idents.iter().any(|s| *s == "test"),
            _ => false,
        };
        if !is_test_attr {
            i = attr_start + 1;
            continue;
        }
        // Find the item body: the first `{` before any `;` at depth 0,
        // then its matching `}`.
        let mut k = j;
        let mut body_end = None;
        while k < toks.len() {
            if toks[k].is_punct(';') {
                body_end = Some(k);
                break;
            }
            if toks[k].is_punct('{') {
                let mut bdepth = 1usize;
                let mut m = k + 1;
                while m < toks.len() && bdepth > 0 {
                    if toks[m].is_punct('{') {
                        bdepth += 1;
                    } else if toks[m].is_punct('}') {
                        bdepth -= 1;
                    }
                    m += 1;
                }
                body_end = Some(m.saturating_sub(1));
                break;
            }
            k += 1;
        }
        let first = toks[attr_start].line as usize;
        let last = body_end
            .and_then(|e| toks.get(e))
            .map(|t| t.line as usize)
            .unwrap_or(line_count);
        for line in first..=last.min(line_count) {
            marks[line - 1] = true;
        }
        i = j;
    }
    marks
}

/// The set of files a run analyzes.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All files, in walk order.
    pub files: Vec<SourceFile>,
}

/// Path components that are never analyzed: test/fixture/bench/example
/// code is exempt from library-code rules by construction, and build
/// output is not source.
const EXCLUDED_COMPONENTS: &[&str] = &[
    "tests", "fixtures", "benches", "examples", "target", "vendor",
];

impl Workspace {
    /// Loads the on-disk workspace rooted at `root`: `src/`,
    /// `crates/*/src/`, and `docs/METRICS.md`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        let mut roots: Vec<PathBuf> = vec![root.join("src")];
        if let Ok(entries) = fs::read_dir(root.join("crates")) {
            let mut crates: Vec<PathBuf> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path().join("src"))
                .filter(|p| p.is_dir())
                .collect();
            crates.sort();
            roots.extend(crates);
        }
        for dir in roots {
            if dir.is_dir() {
                walk(root, &dir, &mut files)?;
            }
        }
        let metrics = root.join("docs").join("METRICS.md");
        if metrics.is_file() {
            let text = fs::read_to_string(&metrics)
                .map_err(|e| format!("read {}: {e}", metrics.display()))?;
            files.push(SourceFile::new("docs/METRICS.md".into(), text));
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory sources — the unit-test entry
    /// point. Paths should look like real workspace-relative paths
    /// (e.g. `crates/sim/src/bad.rs`) so rule scoping applies.
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .into_iter()
            .map(|(p, t)| SourceFile::new(p, t))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Looks up a file by exact path.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// All Rust files.
    pub fn rust_files(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.iter().filter(|f| f.path.ends_with(".rs"))
    }
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if EXCLUDED_COMPONENTS.contains(&name.as_ref()) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            files.push(SourceFile::new(rel, text));
        }
    }
    Ok(())
}

/// Runs every rule over the workspace and applies config overrides:
/// allowlisted findings are dropped, `level` overrides replace the
/// rule's default severity. Findings come back sorted by file, line,
/// then rule.
pub fn run(ws: &Workspace, rules: &[Box<dyn Rule>], config: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rule in rules {
        let mut found = Vec::new();
        rule.check(ws, &mut found);
        let level = config.level(rule.id());
        for mut d in found {
            debug_assert_eq!(d.rule, rule.id());
            if config.is_allowed(d.rule, &d.file, d.line) {
                continue;
            }
            if let Some(level) = level {
                d.severity = level;
            }
            diags.push(d);
        }
    }
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_marking() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn lib2() {}\n";
        let f = SourceFile::new("crates/sim/src/a.rs".into(), src.into());
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(5));
        assert!(f.in_test(6));
        assert!(!f.in_test(7));
    }

    #[test]
    fn standalone_test_fn_marked() {
        let src = "fn a() {}\n#[test]\nfn t() {\n  panic!();\n}\nfn b() {}\n";
        let f = SourceFile::new("x.rs".into(), src.into());
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(4));
        assert!(f.in_test(5));
        assert!(!f.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(feature = \"x\")]\nfn a() { b.unwrap(); }\n";
        let f = SourceFile::new("x.rs".into(), src.into());
        assert!(!f.in_test(2));
    }

    #[test]
    fn braceless_test_item_marks_through_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() {}\n";
        let f = SourceFile::new("x.rs".into(), src.into());
        assert!(f.in_test(2));
        assert!(!f.in_test(3));
    }
}

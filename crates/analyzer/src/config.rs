// SPDX-License-Identifier: MIT OR Apache-2.0
//! `analyzer.toml`: per-rule severity overrides and allowlists.
//!
//! The analyzer is dependency-free, so this module implements the tiny
//! TOML subset the config actually uses:
//!
//! ```toml
//! # Comments and blank lines are ignored.
//! [rules.magic-latency]
//! level = "warn"                       # "allow" | "warn" | "deny"
//! allow = [
//!     "crates/sim/src/legacy.rs",      # whole file
//!     "crates/sim/src/xlate.rs:42",    # one specific finding
//! ]
//!
//! [rules.unsafe-without-safety]
//! level = "deny"
//! ```
//!
//! Anything outside this shape (nested tables, multi-line strings,
//! datetimes, …) is rejected with a line-numbered error rather than
//! silently misread.

use crate::diag::Severity;
use std::collections::BTreeMap;

/// Configuration for one rule.
#[derive(Clone, Debug, Default)]
pub struct RuleConfig {
    /// Severity override (`None` keeps the rule's default).
    pub level: Option<Severity>,
    /// Allowlisted locations: either `path` (whole file) or
    /// `path:line` (one finding).
    pub allow: Vec<String>,
}

/// Parsed `analyzer.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Per-rule sections, keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Parses config text. Returns a line-numbered message on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut current: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let rule = section
                    .strip_prefix("rules.")
                    .ok_or_else(|| format!("line {lineno}: unknown section [{section}] (only [rules.<id>] is supported)"))?;
                if rule.is_empty()
                    || !rule
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                {
                    return Err(format!("line {lineno}: invalid rule id `{rule}`"));
                }
                cfg.rules.entry(rule.to_string()).or_default();
                current = Some(rule.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value` or `[rules.<id>]`"
                ));
            };
            let rule = current.as_ref().ok_or_else(|| {
                format!(
                    "line {lineno}: `{}` outside any [rules.<id>] section",
                    key.trim()
                )
            })?;
            let entry = cfg
                .rules
                .get_mut(rule)
                .expect("invariant: section inserted when current was set");
            let key = key.trim();
            let mut value = value.trim().to_string();
            match key {
                "level" => {
                    let s = parse_string(&value)
                        .ok_or_else(|| format!("line {lineno}: level must be a quoted string"))?;
                    entry.level = Some(Severity::parse(&s).ok_or_else(|| {
                        format!("line {lineno}: unknown level `{s}` (use allow/warn/deny)")
                    })?);
                }
                "allow" => {
                    // Array of strings, possibly spanning lines until `]`.
                    while !value.contains(']') {
                        let Some((_, next)) = lines.next() else {
                            return Err(format!("line {lineno}: unterminated `allow = [` array"));
                        };
                        value.push(' ');
                        value.push_str(strip_comment(next).trim());
                    }
                    let inner = value
                        .trim()
                        .strip_prefix('[')
                        .and_then(|s| s.strip_suffix(']'))
                        .ok_or_else(|| {
                            format!("line {lineno}: allow must be an array of strings")
                        })?;
                    for item in split_array(inner) {
                        let s = parse_string(item.trim()).ok_or_else(|| {
                            format!("line {lineno}: allow entries must be quoted strings")
                        })?;
                        entry.allow.push(s);
                    }
                }
                other => {
                    return Err(format!(
                        "line {lineno}: unknown key `{other}` (only level/allow)"
                    ))
                }
            }
        }
        Ok(cfg)
    }

    /// Whether a finding at `file` / `file:line` is allowlisted for
    /// `rule`.
    pub fn is_allowed(&self, rule: &str, file: &str, line: u32) -> bool {
        let Some(rc) = self.rules.get(rule) else {
            return false;
        };
        let key = format!("{file}:{line}");
        rc.allow.iter().any(|a| a == file || *a == key)
    }

    /// Severity override for `rule`, if configured.
    pub fn level(&self, rule: &str) -> Option<Severity> {
        self.rules.get(rule).and_then(|rc| rc.level)
    }

    /// Renders the config back to TOML — used by `--write-baseline`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (rule, rc) in &self.rules {
            out.push_str(&format!("[rules.{rule}]\n"));
            if let Some(level) = rc.level {
                let name = match level {
                    Severity::Note => "allow",
                    Severity::Warning => "warn",
                    Severity::Error => "deny",
                };
                out.push_str(&format!("level = \"{name}\"\n"));
            }
            if !rc.allow.is_empty() {
                out.push_str("allow = [\n");
                for a in &rc.allow {
                    out.push_str(&format!("    \"{a}\",\n"));
                }
                out.push_str("]\n");
            }
            out.push('\n');
        }
        out
    }
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parses a double-quoted TOML string (basic escapes only).
fn parse_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                _ => return None,
            }
        } else if c == '"' {
            return None; // unescaped quote inside — malformed
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Splits array contents on commas outside quotes; tolerates a trailing
/// comma.
fn split_array(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    let tail = inner[start..].trim();
    if !tail.is_empty() {
        items.push(tail);
    }
    items.into_iter().filter(|s| !s.trim().is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_levels_and_allowlists() {
        let cfg = Config::parse(
            r#"
# top comment
[rules.magic-latency]
level = "warn"     # inline comment
allow = [
    "crates/sim/src/legacy.rs",
    "crates/sim/src/xlate.rs:42",
]

[rules.unsafe-without-safety]
level = "deny"
allow = ["a.rs:1"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.level("magic-latency"), Some(Severity::Warning));
        assert_eq!(cfg.level("unsafe-without-safety"), Some(Severity::Error));
        assert!(cfg.is_allowed("magic-latency", "crates/sim/src/legacy.rs", 7));
        assert!(cfg.is_allowed("magic-latency", "crates/sim/src/xlate.rs", 42));
        assert!(!cfg.is_allowed("magic-latency", "crates/sim/src/xlate.rs", 43));
        assert!(!cfg.is_allowed("unsafe-without-safety", "crates/sim/src/legacy.rs", 7));
    }

    #[test]
    fn round_trips_through_render() {
        let text = r#"
[rules.magic-latency]
level = "warn"
allow = ["a.rs", "b.rs:3"]
"#;
        let cfg = Config::parse(text).unwrap();
        let cfg2 = Config::parse(&cfg.render()).unwrap();
        assert_eq!(cfg2.level("magic-latency"), Some(Severity::Warning));
        assert!(cfg2.is_allowed("magic-latency", "a.rs", 9));
        assert!(cfg2.is_allowed("magic-latency", "b.rs", 3));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Config::parse("[other.section]").is_err());
        assert!(Config::parse("level = \"warn\"").is_err());
        assert!(Config::parse("[rules.x]\nlevel = warn").is_err());
        assert!(Config::parse("[rules.x]\nlevel = \"loud\"").is_err());
        assert!(Config::parse("[rules.x]\nallow = [\"a.rs\"").is_err());
        assert!(Config::parse("[rules.x]\nfrobnicate = 3").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[rules.x]\nallow = [\"a#b.rs\"]\n").unwrap();
        assert!(cfg.is_allowed("x", "a#b.rs", 1));
    }
}

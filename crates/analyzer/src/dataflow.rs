// SPDX-License-Identifier: MIT OR Apache-2.0
//! A small forward-dataflow engine over [`crate::cfg::Cfg`].
//!
//! Rules describe themselves as a [`Flow`]: a lattice state, a transfer
//! function over call events, and a join. [`solve`] runs the classic
//! worklist fixpoint and hands back the state at each block *entry*;
//! rules then re-walk the events of interesting blocks with the solved
//! entry state to produce line-accurate diagnostics.
//!
//! The engine is generic but currently only instantiated with
//! union-of-sets *may*-analyses (R7 `persist-before-commit`), for
//! which termination is guaranteed because states grow monotonically
//! and the event alphabet per function is finite.

use crate::cfg::Cfg;
use crate::ir::CallEvent;

/// A forward dataflow problem.
pub trait Flow {
    /// The abstract state attached to block entries.
    type State: Clone + PartialEq;

    /// State at the function entry.
    fn entry_state(&self) -> Self::State;

    /// Applies one call event to the state, in place.
    fn transfer(&self, ev: &CallEvent, state: &mut Self::State);

    /// Merges `from` into `into`; returns `true` if `into` changed.
    fn join(&self, into: &mut Self::State, from: &Self::State) -> bool;
}

/// Runs the worklist fixpoint; returns the solved state at each block's
/// entry (`None` for blocks never reached from the entry).
pub fn solve<F: Flow>(cfg: &Cfg, flow: &F) -> Vec<Option<F::State>> {
    let mut entry_states: Vec<Option<F::State>> = vec![None; cfg.blocks.len()];
    entry_states[cfg.entry] = Some(flow.entry_state());
    let mut work = vec![cfg.entry];
    while let Some(b) = work.pop() {
        let mut state = entry_states[b]
            .clone()
            .expect("worklist blocks always have an entry state");
        for ev in &cfg.blocks[b].events {
            flow.transfer(ev, &mut state);
        }
        for &s in &cfg.blocks[b].succs {
            let changed = match &mut entry_states[s] {
                Some(existing) => flow.join(existing, &state),
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed && !work.contains(&s) {
                work.push(s);
            }
        }
    }
    entry_states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::ir::functions;
    use crate::lexer::lex;
    use std::collections::BTreeSet;

    /// Toy may-analysis: the set of callees that may have been called.
    struct Called;

    impl Flow for Called {
        type State = BTreeSet<String>;

        fn entry_state(&self) -> Self::State {
            BTreeSet::new()
        }

        fn transfer(&self, ev: &CallEvent, state: &mut Self::State) {
            state.insert(ev.callee.clone());
        }

        fn join(&self, into: &mut Self::State, from: &Self::State) -> bool {
            let before = into.len();
            into.extend(from.iter().cloned());
            into.len() != before
        }
    }

    #[test]
    fn fixpoint_unions_over_branches_and_loops() {
        let src = "fn f() { a(); if c { b(); } while t() { l(); } }";
        let fns = functions(&lex(src).tokens);
        let cfg = Cfg::build(&fns[0]);
        let states = solve(&cfg, &Called);
        let at_exit = states[cfg.exit].as_ref().expect("exit reachable");
        for callee in ["a", "b", "t", "l"] {
            assert!(at_exit.contains(callee), "missing {callee}");
        }
        // Loop body block's entry must include its own effect via the
        // back edge (l may already have run on a second iteration).
        let body_entry_has_l = states
            .iter()
            .flatten()
            .any(|s| s.contains("l") && s.contains("t"));
        assert!(body_entry_has_l);
    }

    #[test]
    fn unreachable_blocks_stay_none() {
        let src = "fn f() { return a(); }";
        let fns = functions(&lex(src).tokens);
        let cfg = Cfg::build(&fns[0]);
        let states = solve(&cfg, &Called);
        assert!(states.iter().any(Option::is_none));
        assert!(states[cfg.exit].as_ref().unwrap().contains("a"));
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! A minimal Rust lexer: good enough to walk token streams for rule
//! checks, deliberately far short of a parser.
//!
//! The lexer understands exactly what the rules need and nothing more:
//!
//! * identifiers and keywords (one token kind — rules match on text),
//! * integer and float literals (with the integer's numeric value),
//! * string / raw-string / byte-string / char literals,
//! * single-character punctuation (multi-character operators arrive as
//!   consecutive tokens, e.g. `+=` is `+` then `=`),
//! * comments, which are *not* tokens but are retained on the side with
//!   their line spans (rule R2 needs to find `// SAFETY:` comments, and
//!   rule R6 looks for the SPDX header).
//!
//! Lifetimes (`'a`) are recognized so they are not confused with char
//! literals, and emitted as [`TokKind::Lifetime`] tokens.
//!
//! Every token carries its 1-indexed source line for diagnostics.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`cycles`, `unsafe`, `fn`, ...).
    Ident,
    /// An integer literal; its parsed value is in [`Tok::int_value`].
    Int,
    /// A float literal.
    Float,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); the
    /// token text is the *unquoted* content for plain strings and the
    /// raw content for raw strings (escapes are not processed).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `!`, `{`, `+`, ...).
    Punct(char),
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (see [`TokKind::Str`] for the string convention).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
    /// Parsed value for integer literals (`None` on overflow).
    pub int_value: Option<u128>,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment retained alongside the token stream.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Full comment text, including the `//` / `/*` markers.
    pub text: String,
    /// 1-indexed first line of the comment.
    pub line_start: u32,
    /// 1-indexed last line of the comment.
    pub line_end: u32,
}

/// Lexer output: tokens plus the comment side-channel.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unrecognized bytes are skipped, and an
/// unterminated string or comment simply consumes the rest of the file.
/// The goal is robustness on arbitrary checked-in sources, not
/// validation — `rustc` owns rejecting malformed code.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, int_value: Option<u128>) {
        self.out.tokens.push(Tok {
            kind,
            text,
            line,
            int_value,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(),
                c if c.is_ascii_digit() => self.number(),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(),
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), c.to_string(), line, None);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line_start: line,
            line_end: line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let end = self.line;
        self.out.comments.push(Comment {
            text,
            line_start: start,
            line_end: end,
        });
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        // Raw identifier r#ident: one Ident token. The `r#` prefix is
        // kept in the text so keyword-matching rules (e.g. R2 looking
        // for `unsafe`) never fire on `r#unsafe`-style identifiers.
        if c0 == Some('r') && c1 == Some('#') && c2.is_some_and(|c| c.is_alphabetic() || c == '_') {
            let mut text = String::from("r#");
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Ident, text, line, None);
            return;
        }
        match (c0, c1, c2) {
            (Some('r'), Some('"' | '#'), _)
                if c1 == Some('"') || c2 == Some('"') || c2 == Some('#') =>
            {
                self.bump();
                self.raw_string(line);
                return;
            }
            (Some('b'), Some('r'), Some('"' | '#')) => {
                self.bump();
                self.bump();
                self.raw_string(line);
                return;
            }
            (Some('b'), Some('"'), _) => {
                self.bump();
                self.string(line);
                return;
            }
            (Some('b'), Some('\''), _) => {
                self.bump();
                self.char_or_lifetime();
                return;
            }
            _ => {}
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, None);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut is_float = false;
        // Integer part (handles 0x / 0o / 0b digits too, since hex digits
        // are alphanumeric).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: only when followed by a digit (so `1..n` and
        // tuple access `x.0` stay punctuation + int).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if is_float
            || text.contains(['e', 'E']) && !text.starts_with("0x") && !text.starts_with("0X")
        {
            // `1e3` floats (but not hex digits that happen to contain e).
            let float_exp = !text.starts_with("0x") && text.contains(['e', 'E']);
            if is_float || float_exp {
                self.push(TokKind::Float, text, line, None);
                return;
            }
        }
        let value = parse_int(&text);
        self.push(TokKind::Int, text, line, value);
    }

    fn string(&mut self, line: u32) {
        // Opening quote.
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Keep the escape verbatim; rules only inspect plain
                    // content prefixes.
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line, None);
    }

    fn raw_string(&mut self, line: u32) {
        // At `#…"` or `"`. Count hashes.
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#ident` raw identifier: lex the identifier.
            self.ident_or_prefixed_literal();
            return;
        }
        self.bump();
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // Check for the closing hash run.
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        text.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line, None);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // At `'`. Distinguish `'a'` (char) from `'a` (lifetime).
        self.bump();
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal. The escaped character is
                // consumed unconditionally so `'\''` (and `'\\'`) do not
                // mistake it for the closing quote.
                let mut text = String::from("\\");
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                self.push(TokKind::Char, text, line, None);
            }
            Some(c) if self.peek(1) == Some('\'') => {
                self.bump();
                self.bump();
                self.push(TokKind::Char, c.to_string(), line, None);
            }
            _ => {
                // Lifetime: consume the identifier.
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, text, line, None);
            }
        }
    }
}

/// Parses a Rust integer literal (underscores, 0x/0o/0b radix prefixes,
/// and type suffixes like `u64` / `usize`).
fn parse_int(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (16, h)
    } else if let Some(o) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (8, o)
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (2, b)
    } else {
        (10, t.as_str())
    };
    // Strip a trailing type suffix (first char that is not a digit of the
    // radix starts the suffix).
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    u128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).tokens.iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let l = lex("let x = 30u64 + 0x1F;");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "=", "30u64", "+", "0x1F", ";"]);
        assert_eq!(l.tokens[3].int_value, Some(30));
        assert_eq!(l.tokens[5].int_value, Some(31));
    }

    #[test]
    fn comments_are_retained_not_tokenized() {
        let l = lex("// SAFETY: fine\nunsafe {}\n/* block\nspans */ x");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("SAFETY:"));
        assert_eq!(l.comments[0].line_start, 1);
        assert_eq!(l.comments[1].line_start, 3);
        assert_eq!(l.comments[1].line_end, 4);
        assert!(l.tokens[0].is_ident("unsafe"));
        assert_eq!(l.tokens[0].line, 2);
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        let l = lex(r##"f("a.b.c", 'x', b'\n', 'static, r"raw", r#"ra"w"#)"##);
        let strs: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["a.b.c", "raw", "ra\"w"]);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn escaped_quote_in_string() {
        let l = lex(r#"x("a\"b") y"#);
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Str));
        assert!(l.tokens.last().unwrap().is_ident("y"));
    }

    #[test]
    fn floats_vs_ranges_vs_tuple_access() {
        let l = lex("1.5 0..n x.0 1e3");
        assert_eq!(l.tokens[0].kind, TokKind::Float);
        assert_eq!(l.tokens[1].int_value, Some(0));
        assert!(l.tokens[2].is_punct('.'));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Float && t.text == "1e3"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ token");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.tokens.len(), 1);
        assert!(l.tokens[0].is_ident("token"));
    }

    #[test]
    fn unsafe_in_string_is_not_an_ident() {
        let l = lex(r#"let s = "unsafe { }";"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert_eq!(kinds(r#""unsafe""#), vec![TokKind::Str]);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_leak() {
        // `'\''` once terminated at the escaped quote, leaving a stray
        // `'` that swallowed the rest of the line as a lifetime.
        let l = lex(r"let c = '\''; let x = 1;");
        let chars: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["\\'"]);
        assert!(!l.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(l.tokens.iter().any(|t| t.int_value == Some(1)));
    }

    #[test]
    fn escaped_backslash_and_unicode_char_literals() {
        let l = lex(r"('\\', '\u{1F600}', 'a')");
        let chars: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec![r"\\", r"\u{1F600}", "a"]);
    }

    #[test]
    fn lifetime_vs_char_disambiguation() {
        // Lifetimes in generics/labels vs adjacent char literals.
        let l =
            lex("impl<'rt> S<'rt> { fn f(&'rt self) { 'outer: loop { g('x'); break 'outer; } } }");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["rt", "rt", "rt", "outer", "outer"]);
        let chars: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["x"]);
    }

    #[test]
    fn raw_identifiers_lex_as_one_token() {
        // `r#fn` once split into `r`, `#`, `fn` — garbage for any
        // token-stream walker. The prefix is retained so keyword rules
        // never match raw identifiers.
        let l = lex("let r#fn = r#unsafe + 1;");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "r#fn", "=", "r#unsafe", "+", "1", ";"]);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn many_hash_raw_strings() {
        let l = lex(r####"f(r###"a"##b"###, r"c")"####);
        let strs: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["a\"##b", "c"]);
    }

    #[test]
    fn deeply_nested_and_adjacent_block_comments() {
        let l = lex("/* a /* b /* c */ */ */ x /*/* */*/ y");
        assert_eq!(l.comments.len(), 2);
        let idents: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["x", "y"]);
    }

    #[test]
    fn multi_char_operators_arrive_as_consecutive_puncts() {
        let l = lex("cycles += 30;");
        assert!(l.tokens[0].is_ident("cycles"));
        assert!(l.tokens[1].is_punct('+'));
        assert!(l.tokens[2].is_punct('='));
        assert_eq!(l.tokens[3].int_value, Some(30));
    }
}

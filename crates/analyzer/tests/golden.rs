// SPDX-License-Identifier: MIT OR Apache-2.0
//! Golden-diagnostic tests: the seeded fixture must produce exactly the
//! expected findings, and allowlisting/baselining must silence them.

use poat_analyzer::{all_rules, run, Config, Severity, Workspace};

const FIXTURE: &str = include_str!("fixtures/seeded_violations.rs");

/// The fixture is analyzed under a hot-path pseudo-path so every
/// path-scoped rule applies.
const PSEUDO_PATH: &str = "crates/sim/src/seeded.rs";

/// (rule, line) pairs the fixture must produce — keep in sync with
/// `fixtures/seeded_violations.rs`.
const EXPECTED: &[(&str, u32)] = &[
    ("magic-latency", 7),
    ("magic-latency", 8),
    ("unsafe-without-safety", 13),
    ("unwrap-in-hot-path", 18),
    ("unwrap-in-hot-path", 19),
    ("no-println-in-libs", 25),
];

fn fixture_ws() -> Workspace {
    Workspace::from_sources(vec![(PSEUDO_PATH.to_string(), FIXTURE.to_string())])
}

#[test]
fn seeded_fixture_produces_exactly_the_expected_findings() {
    let diags = run(&fixture_ws(), &all_rules(), &Config::default());
    let got: Vec<(&str, u32)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(got, EXPECTED, "diagnostics:\n{:#?}", diags);
    for d in &diags {
        assert_eq!(d.file, PSEUDO_PATH);
        assert_eq!(d.severity, Severity::Error, "all six rules default to deny");
        // The canonical rendering is machine-parseable: path:line: sev[rule] msg.
        let r = d.render();
        assert!(
            r.starts_with(&format!("{PSEUDO_PATH}:{}: error[{}] ", d.line, d.rule)),
            "{r}"
        );
    }
}

#[test]
fn allowlist_silences_specific_findings() {
    let config = Config::parse(
        "[rules.magic-latency]\nallow = [\"crates/sim/src/seeded.rs:7\"]\n\
         [rules.unwrap-in-hot-path]\nallow = [\"crates/sim/src/seeded.rs\"]\n",
    )
    .unwrap();
    let diags = run(&fixture_ws(), &all_rules(), &config);
    let got: Vec<(&str, u32)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(
        got,
        vec![
            ("magic-latency", 8),
            ("unsafe-without-safety", 13),
            ("no-println-in-libs", 25),
        ]
    );
}

#[test]
fn level_override_downgrades_to_warning() {
    let config = Config::parse("[rules.magic-latency]\nlevel = \"warn\"\n").unwrap();
    let diags = run(&fixture_ws(), &all_rules(), &config);
    for d in diags.iter().filter(|d| d.rule == "magic-latency") {
        assert_eq!(d.severity, Severity::Warning);
    }
    assert!(diags
        .iter()
        .any(|d| d.rule != "magic-latency" && d.severity == Severity::Error));
}

#[test]
fn baseline_round_trip_silences_everything_and_survives_reparse() {
    let ws = fixture_ws();
    let rules = all_rules();
    let diags = run(&ws, &rules, &Config::default());
    assert!(!diags.is_empty());

    // Baseline: allowlist every current finding (what --write-baseline
    // does), render to TOML, re-parse, re-run.
    let mut baseline = Config::default();
    for d in &diags {
        baseline
            .rules
            .entry(d.rule.to_string())
            .or_default()
            .allow
            .push(d.location_key());
    }
    let rendered = baseline.render();
    let reparsed = Config::parse(&rendered).expect("rendered baseline must re-parse");
    let after = run(&ws, &rules, &reparsed);
    assert!(
        after.is_empty(),
        "baseline must silence all findings: {after:#?}"
    );

    // A new violation on an un-baselined line still fires.
    let mut edited = FIXTURE.to_string();
    edited.push_str("\npub fn fresh(s: &mut State) { s.hit_latency = 99; }\n");
    let ws2 = Workspace::from_sources(vec![(PSEUDO_PATH.to_string(), edited)]);
    let after2 = run(&ws2, &rules, &reparsed);
    assert_eq!(after2.len(), 1, "{after2:#?}");
    assert_eq!(after2[0].rule, "magic-latency");
}

#[test]
fn json_output_lists_every_finding() {
    let diags = run(&fixture_ws(), &all_rules(), &Config::default());
    let json = poat_analyzer::diag::render_json(&diags);
    for (rule, line) in EXPECTED {
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "missing {rule} in {json}"
        );
        assert!(
            json.contains(&format!("\"line\": {line}")),
            "missing line {line}"
        );
    }
    assert!(json.contains(&format!("\"errors\": {}", EXPECTED.len())));
}

#[test]
fn clean_equivalent_source_produces_no_findings() {
    // The same shapes as the fixture, written the compliant way.
    let clean = r#"
pub fn charge(state: &mut State, cfg: &SimConfig) {
    state.miss_penalty = cfg.miss_penalty_cycles();
    state.cycles += cfg.hit_latency_cycles();
}

// SAFETY: `ptr` is non-null and exclusively owned by the caller.
pub fn poke(ptr: *mut u64) {
    unsafe { *ptr = 1 };
}

pub fn poke_ok(ptr: *mut u64) -> Result<Slot, Error> {
    let slot = lookup(ptr).ok_or(Error::Missing)?;
    let fine = follow(slot).expect("invariant: inserted by charge() above");
    Ok(fine)
}
"#;
    let ws = Workspace::from_sources(vec![(PSEUDO_PATH.to_string(), clean.to_string())]);
    let diags = run(&ws, &all_rules(), &Config::default());
    assert!(diags.is_empty(), "{diags:#?}");
}

// R9 known-good: the sequence word pairs Release/Acquire on every
// access; the ticket counter and payload are coherently Relaxed.
pub fn publish(slot: &Slot, head: &AtomicU64, v: u64) {
    let _ = head.fetch_add(1, Ordering::Relaxed);
    slot.seq.store(0, Ordering::Release);
    slot.payload.store(v, Ordering::Relaxed);
    slot.seq.store(1, Ordering::Release);
}

pub fn read(slot: &Slot, head: &AtomicU64) -> u64 {
    let _ = head.load(Ordering::Relaxed);
    if slot.seq.load(Ordering::Acquire) == 1 {
        return slot.payload.load(Ordering::Relaxed);
    }
    0
}

// R1 known-good: costs come from the model/config; comparisons and
// unit steps are structural, not modeling decisions.
pub fn charge(state: &mut State, cfg: &SimConfig) {
    state.miss_penalty = cfg.miss_penalty_cycles();
    state.cycles += 1;
    if state.cycles == 30 || latency_of() <= 60 {
        state.cycles += cfg.hit_latency_cycles();
    }
}

// R9 known-bad: a Relaxed hole in a seqlock publication word, and a
// one-sided Acquire with no Release partner anywhere in the file.
pub fn publish(slot: &Slot, head: &AtomicU64, v: u64) {
    slot.seq.store(0, Ordering::Release);
    slot.payload.store(v, Ordering::Relaxed);
    slot.seq.store(1, Ordering::Relaxed);
    let _ = head.load(Ordering::Acquire);
}

pub fn read(slot: &Slot) -> u64 {
    if slot.seq.load(Ordering::Acquire) == 1 {
        return slot.payload.load(Ordering::Relaxed);
    }
    0
}

// R1 known-bad: hand-written cost constants outside the cost model.
pub fn charge(state: &mut State) {
    state.miss_penalty = 30;
    state.cycles += 97;
    advance_cycle(17);
}

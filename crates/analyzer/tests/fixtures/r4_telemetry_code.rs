// R4 fixture code side: emits two metric-shaped names; only one is
// documented by the paired METRICS.md fixture.
pub fn f(r: &Registry) {
    r.counter("core.polb.hits").inc();
    r.counter("core.polb.ghost").inc();
}

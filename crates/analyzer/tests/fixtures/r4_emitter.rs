// R4 fixture emitter: emits NvLoad but never PolbHit.
pub fn f(t: &Recorder) {
    t.emit(EventKind::NvLoad);
}

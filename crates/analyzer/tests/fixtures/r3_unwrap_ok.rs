// R3 known-good: invariant-documented expect, non-panicking fallback,
// and test regions are all exempt.
pub fn f(x: Option<u32>) -> u32 {
    let c = x.expect("invariant: set in new()");
    let d = x.unwrap_or(0);
    c + d
}

#[cfg(test)]
mod tests {
    fn t() {
        None::<u32>.unwrap();
    }
}

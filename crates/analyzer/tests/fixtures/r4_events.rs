// R4 fixture events side: PolbHit has no emission site.
pub enum EventKind {
    NvLoad,
    PolbHit,
}

// R8 known-good: the persist site is annotated with its covering
// sweep, and the flush path polls the injection hook.
impl Runtime {
    pub fn commit(&mut self, log: &LogRef) -> Result<(), PmemError> {
        self.write_u64_at(log, log_layout::STATUS, 1)?;
        // faultpoint: crash-sweep fixture (status publish)
        self.persist_at(log, log_layout::STATUS, 8)?;
        Ok(())
    }

    fn persist_lines(&mut self, va: u64) -> Result<(), PmemError> {
        self.crash_pending(va)?;
        self.mem.clwb(va)?;
        self.mem.fence();
        Ok(())
    }
}

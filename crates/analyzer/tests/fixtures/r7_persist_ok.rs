// R7 known-good: two-phase create (fields durable before the magic
// publish, magic persisted on its own) and a branch where every path
// persists the commit.
impl Runtime {
    pub fn pool_create(&mut self, id: PoolId, size: u64) -> Result<PoolId, PmemError> {
        let h = self.direct_ref(id, 0)?;
        self.write_u64_at(&h, header::SIZE, size)?;
        self.write_u64_at(&h, header::BUMP, size)?;
        self.raw_persist_direct(id, 0, header::SIZE_BYTES as u64)?;
        self.write_u64_at(&h, header::MAGIC, POOL_MAGIC)?;
        self.raw_persist_direct(id, header::MAGIC, 8)?;
        Ok(id)
    }

    pub fn branchy(&mut self, log: &LogRef, fast: bool) -> Result<(), PmemError> {
        self.write_u64_at(log, log_layout::STATUS, 1)?;
        if fast {
            self.persist_at(log, log_layout::STATUS, 8)?;
        } else {
            self.persist_at(log, log_layout::STATUS, 8)?;
        }
        Ok(())
    }
}

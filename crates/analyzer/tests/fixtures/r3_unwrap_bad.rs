// R3 known-bad: panicking calls on the hot path.
pub fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("oops");
    a + b
}

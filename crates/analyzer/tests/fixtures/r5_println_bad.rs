// R5 known-bad: prints from library code.
pub fn f() {
    println!("hi");
    dbg!(42);
}

// R7 known-bad: the PR-4 bug class, statically. This is
// pool_create_with_mode from crates/pmem/src/runtime.rs with the
// field-persist call deleted (the acceptance-criterion mutation), plus
// a commit that only one branch persists.
impl Runtime {
    pub fn pool_create(&mut self, id: PoolId, size: u64) -> Result<PoolId, PmemError> {
        let h = self.direct_ref(id, 0)?;
        self.write_u64_at(&h, header::SIZE, size)?;
        self.write_u64_at(&h, header::BUMP, size)?;
        self.write_u64_at(&h, header::MAGIC, POOL_MAGIC)?;
        self.raw_persist_direct(id, header::MAGIC, 8)?;
        Ok(id)
    }

    pub fn branchy(&mut self, log: &LogRef, fast: bool) -> Result<(), PmemError> {
        self.write_u64_at(log, log_layout::STATUS, 1)?;
        if fast {
            self.persist_at(log, log_layout::STATUS, 8)?;
        }
        Ok(())
    }
}

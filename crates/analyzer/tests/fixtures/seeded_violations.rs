// Seeded-violation fixture. NOT compiled into any crate: the golden
// test feeds this file to the analyzer under the pseudo-path
// `crates/sim/src/seeded.rs` and asserts the exact (rule, line)
// findings listed in tests/golden.rs. Keep edits in sync with it.

pub fn charge(state: &mut State) {
    state.miss_penalty = 30;
    state.cycles += 60;
    state.pot_walk_latency = model_derived();
}

pub fn poke(ptr: *mut u64) {
    unsafe { *ptr = 1 };
}

// SAFETY: a decoy comment for the *next* fn; must not justify line 13.
pub fn poke_ok(ptr: *mut u64) {
    let slot = lookup(ptr).unwrap();
    let next = follow(slot).expect("present");
    let fine = follow(slot).expect("invariant: inserted by charge() above");
    fine
}

pub fn debug_dump(state: &State) {
    println!("state = {state:?}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_region() {
        let v: Option<u32> = None;
        v.unwrap();
        panic!("fine in tests");
        let latency = 300;
        println!("also fine in tests");
    }
}

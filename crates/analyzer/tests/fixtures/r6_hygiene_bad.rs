//! Crate docs, but no SPDX header and no missing_docs lint.
pub fn f() {}

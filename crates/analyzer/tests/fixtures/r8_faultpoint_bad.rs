// R8 known-bad: a persist call site with no faultpoint annotation (the
// acceptance-criterion mutation: the annotation was deleted), and a
// flush/fence path the crash sweep cannot inject into.
impl Runtime {
    pub fn commit(&mut self, log: &LogRef) -> Result<(), PmemError> {
        self.write_u64_at(log, log_layout::STATUS, 1)?;
        self.persist_at(log, log_layout::STATUS, 8)?;
        Ok(())
    }

    fn flush_lines(&mut self, va: u64) -> Result<(), PmemError> {
        self.mem.clwb(va)?;
        self.mem.fence();
        Ok(())
    }
}

// R2 known-bad: unsafe without a soundness justification.
pub fn poke(ptr: *mut u64) {
    unsafe { *ptr = 1 };
}

// R2 known-good: the soundness argument precedes the block, and raw
// identifiers never read as the `unsafe` keyword.
pub fn poke(ptr: *mut u64) {
    // SAFETY: `ptr` is non-null and exclusively owned by the caller.
    unsafe { *ptr = 1 };
}

pub fn not_unsafe() -> u32 {
    let r#unsafe = 1;
    r#unsafe
}

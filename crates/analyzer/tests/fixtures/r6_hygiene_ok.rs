// SPDX-License-Identifier: MIT OR Apache-2.0
//! Crate docs.
#![warn(missing_docs)]
pub fn f() {}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Self-check: the workspace this analyzer ships in must itself be
//! clean — the same gate CI enforces with `poat-analyze
//! --deny-warnings`, run in-process so `cargo test` catches violations
//! without the extra binary invocation.

use poat_analyzer::{all_rules, run, Config, Workspace};
use std::path::Path;

#[test]
fn workspace_is_clean_under_all_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let config_path = root.join("analyzer.toml");
    let config = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path).expect("readable analyzer.toml");
        Config::parse(&text).expect("valid analyzer.toml")
    } else {
        Config::default()
    };
    let ws = Workspace::load(&root).expect("workspace loads");
    assert!(
        ws.files.len() > 40,
        "workspace walk looks wrong: only {} files",
        ws.files.len()
    );
    assert!(ws.file("crates/telemetry/src/events.rs").is_some());
    assert!(ws.file("docs/METRICS.md").is_some());

    let diags = run(&ws, &all_rules(), &config);
    assert!(
        diags.is_empty(),
        "workspace must be clean; run `cargo run -p poat-analyzer --bin poat-analyze` for details:\n{}",
        diags.iter().map(|d| d.render()).collect::<Vec<_>>().join("\n")
    );
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Table-driven fixture corpus: every rule R1–R9 has known-bad /
//! known-good snippet pairs under `tests/fixtures/`, and each case
//! asserts the exact diagnostics (file, line, message fragment) the
//! rule must produce. Scope/exemption behavior is exercised by running
//! the same fixture under different pseudo-paths.

use poat_analyzer::Workspace;
use poat_analyzer::{all_rules, Diagnostic};

struct Case {
    name: &'static str,
    rule: &'static str,
    /// (pseudo-path, fixture content) pairs forming the workspace.
    files: &'static [(&'static str, &'static str)],
    /// Expected (file, line, message fragment), sorted by (file, line).
    expected: &'static [(&'static str, u32, &'static str)],
}

const R1_BAD: &str = include_str!("fixtures/r1_magic_latency_bad.rs");
const R1_OK: &str = include_str!("fixtures/r1_magic_latency_ok.rs");
const R2_BAD: &str = include_str!("fixtures/r2_unsafe_bad.rs");
const R2_OK: &str = include_str!("fixtures/r2_unsafe_ok.rs");
const R3_BAD: &str = include_str!("fixtures/r3_unwrap_bad.rs");
const R3_OK: &str = include_str!("fixtures/r3_unwrap_ok.rs");
const R4_CODE: &str = include_str!("fixtures/r4_telemetry_code.rs");
const R4_MD_BAD: &str = include_str!("fixtures/r4_metrics_bad.md");
const R4_MD_OK: &str = include_str!("fixtures/r4_metrics_ok.md");
const R4_EVENTS: &str = include_str!("fixtures/r4_events.rs");
const R4_EMITTER: &str = include_str!("fixtures/r4_emitter.rs");
const R5_BAD: &str = include_str!("fixtures/r5_println_bad.rs");
const R6_BAD: &str = include_str!("fixtures/r6_hygiene_bad.rs");
const R6_OK: &str = include_str!("fixtures/r6_hygiene_ok.rs");
const R7_BAD: &str = include_str!("fixtures/r7_persist_bad.rs");
const R7_OK: &str = include_str!("fixtures/r7_persist_ok.rs");
const R8_BAD: &str = include_str!("fixtures/r8_faultpoint_bad.rs");
const R8_OK: &str = include_str!("fixtures/r8_faultpoint_ok.rs");
const R9_BAD: &str = include_str!("fixtures/r9_atomics_bad.rs");
const R9_OK: &str = include_str!("fixtures/r9_atomics_ok.rs");

const SIM: &str = "crates/sim/src/fixture.rs";
const PMEM_RT: &str = "crates/pmem/src/runtime.rs";
const CORE: &str = "crates/core/src/fixture.rs";
const EVENTS: &str = "crates/telemetry/src/events.rs";
const METRICS: &str = "docs/METRICS.md";

const CASES: &[Case] = &[
    // --- R1 magic-latency ---
    Case {
        name: "r1-bad",
        rule: "magic-latency",
        files: &[(SIM, R1_BAD)],
        expected: &[
            (
                SIM,
                3,
                "bare literal `30` assigned to cost-like `miss_penalty`",
            ),
            (SIM, 4, "bare literal `97` assigned to cost-like `cycles`"),
            (SIM, 5, "bare literal `17` passed to advance_cycle()"),
        ],
    },
    Case {
        name: "r1-ok",
        rule: "magic-latency",
        files: &[(SIM, R1_OK)],
        expected: &[],
    },
    Case {
        name: "r1-exempt-paths",
        rule: "magic-latency",
        // The same bad content is exempt in the cost model itself and
        // out of scope elsewhere.
        files: &[
            ("crates/pmem/src/costs.rs", R1_BAD),
            ("crates/harness/src/fixture.rs", R1_BAD),
        ],
        expected: &[],
    },
    // --- R2 unsafe-without-safety ---
    Case {
        name: "r2-bad",
        rule: "unsafe-without-safety",
        files: &[(SIM, R2_BAD)],
        expected: &[(SIM, 3, "`unsafe` without a `// SAFETY:` comment")],
    },
    Case {
        name: "r2-ok",
        rule: "unsafe-without-safety",
        files: &[(SIM, R2_OK)],
        expected: &[],
    },
    // --- R3 unwrap-in-hot-path ---
    Case {
        name: "r3-bad",
        rule: "unwrap-in-hot-path",
        files: &[(SIM, R3_BAD)],
        expected: &[(SIM, 3, "unwrap"), (SIM, 4, "expect")],
    },
    Case {
        name: "r3-ok",
        rule: "unwrap-in-hot-path",
        files: &[(SIM, R3_OK)],
        expected: &[],
    },
    Case {
        name: "r3-out-of-scope",
        rule: "unwrap-in-hot-path",
        files: &[("crates/harness/src/fixture.rs", R3_BAD)],
        expected: &[],
    },
    // --- R4 telemetry-drift ---
    Case {
        name: "r4-metrics-bad",
        rule: "telemetry-drift",
        files: &[(CORE, R4_CODE), (METRICS, R4_MD_BAD)],
        expected: &[
            (
                CORE,
                5,
                "metric `core.polb.ghost` is emitted here but missing",
            ),
            (
                METRICS,
                4,
                "`core.polb.phantom` is documented in docs/METRICS.md but never emitted",
            ),
        ],
    },
    Case {
        name: "r4-metrics-ok",
        rule: "telemetry-drift",
        files: &[(CORE, R4_CODE), (METRICS, R4_MD_OK)],
        expected: &[],
    },
    Case {
        name: "r4-events-bad",
        rule: "telemetry-drift",
        files: &[(EVENTS, R4_EVENTS), (SIM, R4_EMITTER)],
        expected: &[(EVENTS, 4, "EventKind::PolbHit has no emission site")],
    },
    // --- R5 no-println-in-libs ---
    Case {
        name: "r5-bad",
        rule: "no-println-in-libs",
        files: &[("crates/x/src/lib.rs", R5_BAD)],
        expected: &[
            ("crates/x/src/lib.rs", 3, "`println!` in library code"),
            ("crates/x/src/lib.rs", 4, "`dbg!` in library code"),
        ],
    },
    Case {
        name: "r5-main-exempt",
        rule: "no-println-in-libs",
        files: &[("crates/x/src/main.rs", R5_BAD)],
        expected: &[],
    },
    // --- R6 doc-attr-hygiene ---
    Case {
        name: "r6-bad",
        rule: "doc-attr-hygiene",
        files: &[("crates/y/src/lib.rs", R6_BAD)],
        expected: &[
            ("crates/y/src/lib.rs", 1, "SPDX-License-Identifier"),
            ("crates/y/src/lib.rs", 1, "missing_docs"),
        ],
    },
    Case {
        name: "r6-ok-and-non-roots",
        rule: "doc-attr-hygiene",
        files: &[
            ("crates/x/src/lib.rs", R6_OK),
            ("crates/y/src/other.rs", R6_BAD),
        ],
        expected: &[],
    },
    // --- R7 persist-before-commit ---
    Case {
        name: "r7-bad",
        rule: "persist-before-commit",
        files: &[(PMEM_RT, R7_BAD)],
        expected: &[
            (PMEM_RT, 10, "may publish unpersisted write(s)"),
            (PMEM_RT, 16, "not persisted on some path to function exit"),
        ],
    },
    Case {
        name: "r7-ok",
        rule: "persist-before-commit",
        files: &[(PMEM_RT, R7_OK)],
        expected: &[],
    },
    Case {
        name: "r7-out-of-scope",
        rule: "persist-before-commit",
        files: &[(SIM, R7_BAD)],
        expected: &[],
    },
    // --- R8 faultpoint-coverage ---
    Case {
        name: "r8-bad",
        rule: "faultpoint-coverage",
        files: &[(PMEM_RT, R8_BAD)],
        expected: &[
            (PMEM_RT, 7, "no `// faultpoint:` annotation"),
            (PMEM_RT, 11, "never polls crash_pending"),
        ],
    },
    Case {
        name: "r8-ok",
        rule: "faultpoint-coverage",
        files: &[(PMEM_RT, R8_OK)],
        expected: &[],
    },
    // --- R9 ordered-atomics ---
    Case {
        name: "r9-bad",
        rule: "ordered-atomics",
        files: &[("crates/telemetry/src/ring.rs", R9_BAD)],
        expected: &[
            (
                "crates/telemetry/src/ring.rs",
                6,
                "Relaxed `store` on publication word `seq`",
            ),
            (
                "crates/telemetry/src/ring.rs",
                7,
                "unpaired Acquire on `head`",
            ),
        ],
    },
    Case {
        name: "r9-ok",
        rule: "ordered-atomics",
        files: &[("crates/telemetry/src/ring.rs", R9_OK)],
        expected: &[],
    },
];

fn run_case(case: &Case) -> Vec<Diagnostic> {
    let rule = all_rules()
        .into_iter()
        .find(|r| r.id() == case.rule)
        .unwrap_or_else(|| panic!("{}: unknown rule {}", case.name, case.rule));
    let ws = Workspace::from_sources(
        case.files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect(),
    );
    let mut out = Vec::new();
    rule.check(&ws, &mut out);
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[test]
fn every_fixture_case_produces_exactly_its_expected_diagnostics() {
    for case in CASES {
        let got = run_case(case);
        assert_eq!(
            got.len(),
            case.expected.len(),
            "{}: expected {} diagnostic(s), got:\n{:#?}",
            case.name,
            case.expected.len(),
            got
        );
        for (d, (file, line, fragment)) in got.iter().zip(case.expected) {
            assert_eq!(&d.file, file, "{}: wrong file:\n{d:#?}", case.name);
            assert_eq!(d.line, *line, "{}: wrong line:\n{d:#?}", case.name);
            assert_eq!(d.rule, case.rule, "{}: wrong rule:\n{d:#?}", case.name);
            assert!(
                d.message.contains(fragment),
                "{}: message `{}` does not contain `{fragment}`",
                case.name,
                d.message
            );
        }
    }
}

#[test]
fn r7_diagnostic_names_the_unpersisted_writes_path_level() {
    // The acceptance-criterion mutation: pool_create minus its
    // field-persist. The diagnostic must name each write left
    // unpersisted on the path, so the fix site is obvious.
    let case = CASES.iter().find(|c| c.name == "r7-bad").unwrap();
    let got = run_case(case);
    let commit = got.iter().find(|d| d.line == 10).unwrap();
    assert!(
        commit.message.contains("`write_u64_at` at line 8"),
        "{}",
        commit.message
    );
    assert!(
        commit.message.contains("`write_u64_at` at line 9"),
        "{}",
        commit.message
    );
    assert!(commit.message.contains("pool_create"), "{}", commit.message);
    let branch = got.iter().find(|d| d.line == 16).unwrap();
    assert!(branch.message.contains("branchy"), "{}", branch.message);
}

#[test]
fn every_rule_has_at_least_one_fixture_case() {
    for rule in all_rules() {
        assert!(
            CASES.iter().any(|c| c.rule == rule.id()),
            "rule {} has no fixture case",
            rule.id()
        );
    }
}

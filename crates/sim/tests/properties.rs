//! Property-based tests for the timing models: determinism, instruction
//! conservation, and latency monotonicity — the invariants any credible
//! cycle model must satisfy regardless of the trace.

use poat_core::{ObjectId, PoolId, TranslationConfig, VirtAddr};
use poat_pmem::{MachineState, Runtime, RuntimeConfig, Trace, TraceOp};
use poat_sim::{simulate_inorder, simulate_ooo, SimConfig};
use proptest::prelude::*;

/// Builds a machine with one mapped pool and returns (state, pool base).
fn machine() -> (MachineState, ObjectId) {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let pool = rt.pool_create("p", 1 << 20).unwrap();
    let oid = rt.pmalloc(pool, 1 << 16).unwrap();
    (rt.machine_state(), oid)
}

/// Strategy: an arbitrary well-formed trace over the mapped pool.
fn trace_ops() -> impl Strategy<Value = Vec<(u8, u32, bool)>> {
    prop::collection::vec((0u8..8, 0u32..(1 << 14), any::<bool>()), 1..300)
}

fn build_trace(ops: &[(u8, u32, bool)], oid: ObjectId, state: &MachineState) -> Trace {
    let base = state
        .pot
        .lookup(oid.pool().expect("pool"))
        .expect("mapped")
        .offset(oid.offset() as u64);
    let mut t = Trace::new();
    let mut last_load: Option<u64> = None;
    for &(tag, off, chain) in ops {
        let off = off & !7;
        let va = base.offset(off as u64);
        let o = oid.add(off);
        let dep = if chain { last_load } else { None };
        match tag {
            0 => {
                t.push(TraceOp::Exec { n: off % 32 + 1 });
            }
            1 => last_load = Some(t.push(TraceOp::Load { va, dep })),
            2 => {
                t.push(TraceOp::Store { va, dep });
            }
            3 => last_load = Some(t.push(TraceOp::NvLoad { oid: o, va, dep })),
            4 => {
                t.push(TraceOp::NvStore { oid: o, va, dep });
            }
            5 => {
                t.push(TraceOp::Clwb { va });
            }
            6 => {
                t.push(TraceOp::Fence);
            }
            _ => {
                t.push(TraceOp::Branch {
                    mispredicted: chain,
                });
            }
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulation_is_deterministic(ops in trace_ops()) {
        let (state, oid) = machine();
        let t = build_trace(&ops, oid, &state);
        let cfg = SimConfig::default();
        let a = simulate_inorder(&t, &state, &cfg).unwrap();
        let b = simulate_inorder(&t, &state, &cfg).unwrap();
        prop_assert_eq!(a, b);
        let c = simulate_ooo(&t, &state, &cfg).unwrap();
        let d = simulate_ooo(&t, &state, &cfg).unwrap();
        prop_assert_eq!(c, d);
    }

    #[test]
    fn instructions_are_conserved(ops in trace_ops()) {
        let (state, oid) = machine();
        let t = build_trace(&ops, oid, &state);
        let want = t.summary().instructions;
        let cfg = SimConfig::default();
        prop_assert_eq!(simulate_inorder(&t, &state, &cfg).unwrap().instructions, want);
        prop_assert_eq!(simulate_ooo(&t, &state, &cfg).unwrap().instructions, want);
    }

    #[test]
    fn ideal_translation_is_a_lower_bound(ops in trace_ops()) {
        let (state, oid) = machine();
        let t = build_trace(&ops, oid, &state);
        let normal = SimConfig::default();
        let ideal = SimConfig::with_translation(TranslationConfig::default().idealized());
        prop_assert!(
            simulate_inorder(&t, &state, &ideal).unwrap().cycles
                <= simulate_inorder(&t, &state, &normal).unwrap().cycles
        );
        prop_assert!(
            simulate_ooo(&t, &state, &ideal).unwrap().cycles
                <= simulate_ooo(&t, &state, &normal).unwrap().cycles
        );
    }

    #[test]
    fn higher_latencies_never_speed_things_up(ops in trace_ops()) {
        let (state, oid) = machine();
        let t = build_trace(&ops, oid, &state);
        let base = SimConfig::default();
        let mut slow = base;
        slow.mem.memory_latency = 400;
        slow.mem.clwb_latency = 300;
        slow.translation.pot_walk_cycles = 200;
        slow.translation.polb_access_cycles = 5;
        prop_assert!(
            simulate_inorder(&t, &state, &base).unwrap().cycles
                <= simulate_inorder(&t, &state, &slow).unwrap().cycles
        );
        prop_assert!(
            simulate_ooo(&t, &state, &base).unwrap().cycles
                <= simulate_ooo(&t, &state, &slow).unwrap().cycles
        );
    }

    #[test]
    fn a_bigger_polb_never_misses_more(ops in trace_ops()) {
        let (state, oid) = machine();
        let t = build_trace(&ops, oid, &state);
        let mut prev_misses = u64::MAX;
        for entries in [1usize, 4, 32] {
            let cfg = SimConfig::with_translation(TranslationConfig {
                polb_entries: entries,
                ..TranslationConfig::default()
            });
            let r = simulate_inorder(&t, &state, &cfg).unwrap();
            prop_assert!(r.translation.polb.misses <= prev_misses);
            prev_misses = r.translation.polb.misses;
        }
    }

    #[test]
    fn cycles_grow_with_the_trace(ops in trace_ops()) {
        // A prefix of a trace never takes longer than the whole trace.
        let (state, oid) = machine();
        let t = build_trace(&ops, oid, &state);
        let half = build_trace(&ops[..ops.len() / 2], oid, &state);
        let cfg = SimConfig::default();
        prop_assert!(
            simulate_inorder(&half, &state, &cfg).unwrap().cycles
                <= simulate_inorder(&t, &state, &cfg).unwrap().cycles
        );
    }

    #[test]
    fn virtual_addresses_not_in_the_page_table_still_simulate(
        vas in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        // Robustness: arbitrary (even wild) addresses must not panic —
        // unmapped pages model volatile DRAM.
        let (state, _) = machine();
        let mut t = Trace::new();
        for va in vas {
            t.push(TraceOp::Load { va: VirtAddr::new(va & 0x7FFF_FFFF_FFFF), dep: None });
        }
        let cfg = SimConfig::default();
        let r = simulate_inorder(&t, &state, &cfg).unwrap();
        prop_assert!(r.cycles >= r.instructions);
    }
}

#[test]
fn faulting_oids_are_counted_not_fatal() {
    let (state, _) = machine();
    let bogus = ObjectId::new(PoolId::new(4040).unwrap(), 64);
    let mut t = Trace::new();
    t.push(TraceOp::NvLoad {
        oid: bogus,
        va: VirtAddr::new(0x5000_0000_0000),
        dep: None,
    });
    let r = simulate_inorder(&t, &state, &SimConfig::default()).unwrap();
    assert_eq!(r.translation.exceptions, 1);
}

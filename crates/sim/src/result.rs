//! Simulation outputs and errors.

use std::fmt;

use poat_core::TranslationStats;

use crate::cache::HierarchyStats;
use crate::tlb::TlbStats;

/// Errors from configuring or running a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The *Parallel* POLB design is not implemented for the out-of-order
    /// core: ObjectIDs in the LSQ would defeat memory disambiguation
    /// (paper §4.3 declines to build it for the same reason).
    ParallelOnOutOfOrder,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ParallelOnOutOfOrder => write!(
                f,
                "the Parallel POLB design is not supported on the out-of-order core"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of replaying one trace on one core model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Total execution time in core cycles.
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Translation-hardware counters (zero for BASE runs, which have no
    /// `nvld`/`nvst`).
    pub translation: TranslationStats,
    /// Cache-hierarchy counters.
    pub cache: HierarchyStats,
    /// D-TLB counters.
    pub tlb: TlbStats,
    /// Loads satisfied by store-to-load forwarding (out-of-order core).
    pub store_forwards: u64,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to `baseline` (baseline cycles / ours).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Publishes this result into the global telemetry registry as the
    /// labeled `sim.result.*` series (one set per label combination).
    ///
    /// The snapshot written by `repro --metrics` therefore carries the
    /// *same* numbers the text tables and JSON artifacts are rendered
    /// from — the registry is just another view of this struct, so the
    /// two cannot diverge. Labels must be in a stable order; the harness
    /// uses `artifact`, then workload identifiers, then `design`.
    pub fn publish(&self, labels: &[(&str, &str)]) {
        let registry = poat_telemetry::global();
        let series = [
            ("sim.result.cycles", self.cycles),
            ("sim.result.instructions", self.instructions),
            ("sim.result.polb_hits", self.translation.polb.hits),
            ("sim.result.polb_misses", self.translation.polb.misses),
            ("sim.result.pot_walks", self.translation.pot_walks),
            ("sim.result.exceptions", self.translation.exceptions),
            (
                "sim.result.translation_cycles",
                self.translation.translation_cycles,
            ),
            ("sim.result.l1d_hits", self.cache.l1d.hits),
            ("sim.result.l1d_misses", self.cache.l1d.misses),
            ("sim.result.l2_hits", self.cache.l2.hits),
            ("sim.result.l2_misses", self.cache.l2.misses),
            ("sim.result.l3_hits", self.cache.l3.hits),
            ("sim.result.l3_misses", self.cache.l3.misses),
            ("sim.result.tlb_hits", self.tlb.hits),
            ("sim.result.tlb_misses", self.tlb.misses),
            ("sim.result.store_forwards", self.store_forwards),
        ];
        for (name, value) in series {
            registry
                .counter(&poat_telemetry::labeled(name, labels))
                .add(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_speedup() {
        let a = SimResult {
            cycles: 100,
            instructions: 200,
            ..Default::default()
        };
        let b = SimResult {
            cycles: 50,
            instructions: 200,
            ..Default::default()
        };
        assert_eq!(a.ipc(), 2.0);
        assert_eq!(b.speedup_over(&a), 2.0);
        assert_eq!(SimResult::default().ipc(), 0.0);
    }

    #[test]
    fn error_displays() {
        assert!(!SimError::ParallelOnOutOfOrder.to_string().is_empty());
    }
}

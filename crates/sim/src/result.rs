//! Simulation outputs and errors.

use std::fmt;

use poat_core::TranslationStats;

use crate::cache::HierarchyStats;
use crate::tlb::TlbStats;

/// Errors from configuring or running a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The *Parallel* POLB design is not implemented for the out-of-order
    /// core: ObjectIDs in the LSQ would defeat memory disambiguation
    /// (paper §4.3 declines to build it for the same reason).
    ParallelOnOutOfOrder,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ParallelOnOutOfOrder => write!(
                f,
                "the Parallel POLB design is not supported on the out-of-order core"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of replaying one trace on one core model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Total execution time in core cycles.
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Translation-hardware counters (zero for BASE runs, which have no
    /// `nvld`/`nvst`).
    pub translation: TranslationStats,
    /// Cache-hierarchy counters.
    pub cache: HierarchyStats,
    /// D-TLB counters.
    pub tlb: TlbStats,
    /// Loads satisfied by store-to-load forwarding (out-of-order core).
    pub store_forwards: u64,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to `baseline` (baseline cycles / ours).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Accumulates another shard's counters into this result.
    ///
    /// Sharded replay (docs/BENCHMARKS.md) splits one trace into
    /// chunk-aligned slices, replays each with one chunk of functional
    /// warmup, and folds the per-shard measured windows back together
    /// in shard order. Every field of [`SimResult`] is a sum over ops,
    /// so the merge is plain addition; `cycles` in particular adds up
    /// because each shard reports only its own window's clock advance
    /// (the warmup window is snapshot-subtracted, see
    /// [`SimResult::delta_since`]).
    pub fn absorb(&mut self, other: &SimResult) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.translation.merge(&other.translation);
        self.cache.l1d.hits += other.cache.l1d.hits;
        self.cache.l1d.misses += other.cache.l1d.misses;
        self.cache.l2.hits += other.cache.l2.hits;
        self.cache.l2.misses += other.cache.l2.misses;
        self.cache.l3.hits += other.cache.l3.hits;
        self.cache.l3.misses += other.cache.l3.misses;
        self.tlb.hits += other.tlb.hits;
        self.tlb.misses += other.tlb.misses;
        self.store_forwards += other.store_forwards;
    }

    /// Counter advance since `earlier`, a snapshot taken mid-replay.
    ///
    /// Warmed sharded replay (see `simulate_inorder_ops_warm`) snapshots
    /// every counter at the warmup/measure boundary and reports the
    /// measured window as `final.delta_since(&snapshot)`. Every field is
    /// monotone over the replay loop — the sums by construction, and
    /// `cycles` because both cores only ever advance their clock — so
    /// the subtraction is exact; `saturating_sub` merely keeps an
    /// inconsistent snapshot from wrapping.
    pub fn delta_since(&self, earlier: &SimResult) -> SimResult {
        let mut d = SimResult {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            translation: self.translation,
            cache: self.cache,
            tlb: self.tlb,
            store_forwards: self.store_forwards.saturating_sub(earlier.store_forwards),
        };
        d.translation.polb.hits = d
            .translation
            .polb
            .hits
            .saturating_sub(earlier.translation.polb.hits);
        d.translation.polb.misses = d
            .translation
            .polb
            .misses
            .saturating_sub(earlier.translation.polb.misses);
        d.translation.pot_walks = d
            .translation
            .pot_walks
            .saturating_sub(earlier.translation.pot_walks);
        d.translation.exceptions = d
            .translation
            .exceptions
            .saturating_sub(earlier.translation.exceptions);
        d.translation.translation_cycles = d
            .translation
            .translation_cycles
            .saturating_sub(earlier.translation.translation_cycles);
        d.cache.l1d.hits = d.cache.l1d.hits.saturating_sub(earlier.cache.l1d.hits);
        d.cache.l1d.misses = d.cache.l1d.misses.saturating_sub(earlier.cache.l1d.misses);
        d.cache.l2.hits = d.cache.l2.hits.saturating_sub(earlier.cache.l2.hits);
        d.cache.l2.misses = d.cache.l2.misses.saturating_sub(earlier.cache.l2.misses);
        d.cache.l3.hits = d.cache.l3.hits.saturating_sub(earlier.cache.l3.hits);
        d.cache.l3.misses = d.cache.l3.misses.saturating_sub(earlier.cache.l3.misses);
        d.tlb.hits = d.tlb.hits.saturating_sub(earlier.tlb.hits);
        d.tlb.misses = d.tlb.misses.saturating_sub(earlier.tlb.misses);
        d
    }

    /// Publishes this result into the global telemetry registry as the
    /// labeled `sim.result.*` series (one set per label combination).
    ///
    /// The snapshot written by `repro --metrics` therefore carries the
    /// *same* numbers the text tables and JSON artifacts are rendered
    /// from — the registry is just another view of this struct, so the
    /// two cannot diverge. Labels must be in a stable order; the harness
    /// uses `artifact`, then workload identifiers, then `design`.
    pub fn publish(&self, labels: &[(&str, &str)]) {
        let registry = poat_telemetry::global();
        let series = [
            ("sim.result.cycles", self.cycles),
            ("sim.result.instructions", self.instructions),
            ("sim.result.polb_hits", self.translation.polb.hits),
            ("sim.result.polb_misses", self.translation.polb.misses),
            ("sim.result.pot_walks", self.translation.pot_walks),
            ("sim.result.exceptions", self.translation.exceptions),
            (
                "sim.result.translation_cycles",
                self.translation.translation_cycles,
            ),
            ("sim.result.l1d_hits", self.cache.l1d.hits),
            ("sim.result.l1d_misses", self.cache.l1d.misses),
            ("sim.result.l2_hits", self.cache.l2.hits),
            ("sim.result.l2_misses", self.cache.l2.misses),
            ("sim.result.l3_hits", self.cache.l3.hits),
            ("sim.result.l3_misses", self.cache.l3.misses),
            ("sim.result.tlb_hits", self.tlb.hits),
            ("sim.result.tlb_misses", self.tlb.misses),
            ("sim.result.store_forwards", self.store_forwards),
        ];
        for (name, value) in series {
            registry
                .counter(&poat_telemetry::labeled(name, labels))
                .add(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_speedup() {
        let a = SimResult {
            cycles: 100,
            instructions: 200,
            ..Default::default()
        };
        let b = SimResult {
            cycles: 50,
            instructions: 200,
            ..Default::default()
        };
        assert_eq!(a.ipc(), 2.0);
        assert_eq!(b.speedup_over(&a), 2.0);
        assert_eq!(SimResult::default().ipc(), 0.0);
    }

    #[test]
    fn absorb_sums_every_field() {
        // Build a result with every field distinct, absorb it twice into
        // a default, and check each field tripled against the original —
        // a field missed by `absorb` would stay at its first-copy value.
        let mut r = SimResult {
            cycles: 1,
            instructions: 2,
            ..Default::default()
        };
        r.translation.polb.hits = 3;
        r.translation.polb.misses = 4;
        r.translation.pot_walks = 5;
        r.translation.exceptions = 6;
        r.translation.translation_cycles = 7;
        r.cache.l1d.hits = 8;
        r.cache.l1d.misses = 9;
        r.cache.l2.hits = 10;
        r.cache.l2.misses = 11;
        r.cache.l3.hits = 12;
        r.cache.l3.misses = 13;
        r.tlb.hits = 14;
        r.tlb.misses = 15;
        r.store_forwards = 16;

        let mut total = r;
        total.absorb(&r);
        total.absorb(&r);
        assert_eq!(total.cycles, 3);
        assert_eq!(total.instructions, 6);
        assert_eq!(total.translation.polb.hits, 9);
        assert_eq!(total.translation.polb.misses, 12);
        assert_eq!(total.translation.pot_walks, 15);
        assert_eq!(total.translation.exceptions, 18);
        assert_eq!(total.translation.translation_cycles, 21);
        assert_eq!(total.cache.l1d.hits, 24);
        assert_eq!(total.cache.l1d.misses, 27);
        assert_eq!(total.cache.l2.hits, 30);
        assert_eq!(total.cache.l2.misses, 33);
        assert_eq!(total.cache.l3.hits, 36);
        assert_eq!(total.cache.l3.misses, 39);
        assert_eq!(total.tlb.hits, 42);
        assert_eq!(total.tlb.misses, 45);
        assert_eq!(total.store_forwards, 48);
    }

    #[test]
    fn delta_since_subtracts_every_field() {
        // Mirror the absorb test: with every field distinct, the delta
        // of a tripled result since a single copy must be exactly twice
        // the original in each field.
        let mut r = SimResult {
            cycles: 1,
            instructions: 2,
            ..Default::default()
        };
        r.translation.polb.hits = 3;
        r.translation.polb.misses = 4;
        r.translation.pot_walks = 5;
        r.translation.exceptions = 6;
        r.translation.translation_cycles = 7;
        r.cache.l1d.hits = 8;
        r.cache.l1d.misses = 9;
        r.cache.l2.hits = 10;
        r.cache.l2.misses = 11;
        r.cache.l3.hits = 12;
        r.cache.l3.misses = 13;
        r.tlb.hits = 14;
        r.tlb.misses = 15;
        r.store_forwards = 16;

        let mut total = r;
        total.absorb(&r);
        total.absorb(&r);
        let d = total.delta_since(&r);
        let mut twice = SimResult::default();
        twice.absorb(&r);
        twice.absorb(&r);
        assert_eq!(d, twice);
    }

    #[test]
    fn error_displays() {
        assert!(!SimError::ParallelOnOutOfOrder.to_string().is_empty());
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Flat replay-time VA→PA lookup.
//!
//! The translation the core models are defined against is: page-table
//! hit → mapped frame; miss → identity-mapped into a distinct "volatile
//! DRAM" region (bit 47 set), so the runtime's volatile globals and
//! translation table never alias pool frames. It runs once per replayed
//! memory op, and with the general-purpose `HashMap` inside
//! [`PageTable`] its SipHash + probe cost dominated the replay hot
//! loop. [`PageMap`] is the dedicated fast path: the page table is
//! frozen for the whole replay (the machine state is captured before
//! simulation starts), so the mappings are copied once into an
//! open-addressed table with a cheap multiplicative hash, sized for a
//! ≤50% load factor. Lookups are one multiply, a shift, and on average
//! about one probe.

use poat_core::VirtAddr;
use poat_nvm::PageTable;

/// Fibonacci-hashing multiplier (2^64 / φ); spreads consecutive page
/// numbers across the table's high bits.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// An immutable, open-addressed snapshot of a [`PageTable`], answering
/// [`PageMap::phys_of`] with the exact same values as
/// `PageTable::translate` (plus the volatile identity fallback) over
/// the snapshotted table.
#[derive(Clone, Debug)]
pub struct PageMap {
    /// Slot-index mask; `slots.len()` is a power of two.
    mask: u64,
    /// `(page number + 1, frame base)`; key 0 marks an empty slot (the
    /// +1 keeps page number 0 representable).
    slots: Vec<(u64, u64)>,
}

impl PageMap {
    /// Snapshots `pt` into a flat probe table.
    pub fn new(pt: &PageTable) -> Self {
        let capacity = (pt.len() * 2).next_power_of_two().max(8);
        let mask = capacity as u64 - 1;
        let mut slots = vec![(0u64, 0u64); capacity];
        for (page, frame) in pt.mappings() {
            let mut i = (Self::hash(page) & mask) as usize;
            while slots[i].0 != 0 {
                i = (i + 1) & mask as usize;
            }
            slots[i] = (page + 1, frame.raw());
        }
        PageMap { mask, slots }
    }

    #[inline]
    fn hash(page: u64) -> u64 {
        page.wrapping_mul(HASH_MUL) >> 32
    }

    /// Translates `va`; unmapped addresses identity-map into the
    /// volatile region (bit 47 set).
    #[inline]
    pub fn phys_of(&self, va: VirtAddr) -> u64 {
        let page = va.page_number();
        let key = page + 1;
        let mut i = (Self::hash(page) & self.mask) as usize;
        loop {
            let (k, frame) = self.slots[i];
            if k == key {
                return frame + va.page_offset();
            }
            if k == 0 {
                return va.raw() | (1 << 47);
            }
            i = (i + 1) & self.mask as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_core::{PhysAddr, PAGE_BYTES};

    /// The HashMap-backed reference translation `PageMap` must match:
    /// page-table hit → mapped frame, miss → identity-mapped into the
    /// distinct volatile region.
    fn phys_of(pt: &PageTable, va: VirtAddr) -> u64 {
        match pt.translate(va) {
            Some(pa) => pa.raw(),
            None => va.raw() | (1 << 47),
        }
    }

    #[test]
    fn empty_table_identity_maps_everything() {
        let map = PageMap::new(&PageTable::new());
        let pt = PageTable::new();
        for va in [0u64, 0x123, 0x7FFF_FFFF_F000, (1 << 47) - 1] {
            let va = VirtAddr::new(va);
            assert_eq!(map.phys_of(va), phys_of(&pt, va));
        }
    }

    #[test]
    fn matches_the_reference_translation() {
        // A page table with scattered mappings (including page 0), probed
        // with mapped, unmapped-adjacent, and far-away addresses: the
        // snapshot must agree with the HashMap-backed reference
        // byte-for-byte, offsets included.
        let mut pt = PageTable::new();
        let mut x: u64 = 0x51ED;
        let mut pages = Vec::new();
        pt.map(VirtAddr::new(0), PhysAddr::new(77 * PAGE_BYTES));
        pages.push(0u64);
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = 1 + (x % (1 << 30));
            if pt.translate(VirtAddr::new(page * PAGE_BYTES)).is_none() {
                pt.map(
                    VirtAddr::new(page * PAGE_BYTES),
                    PhysAddr::new((1000 + i) * PAGE_BYTES),
                );
                pages.push(page);
            }
        }
        let map = PageMap::new(&pt);
        for &page in &pages {
            for off in [0u64, 1, 63, 64, 4095] {
                let va = VirtAddr::new(page * PAGE_BYTES + off);
                assert_eq!(map.phys_of(va), phys_of(&pt, va), "mapped {va}");
                // The next page over is (almost always) unmapped; either
                // way the two paths must agree.
                let adj = VirtAddr::new((page + 1) * PAGE_BYTES + off);
                assert_eq!(map.phys_of(adj), phys_of(&pt, adj), "adjacent {adj}");
            }
        }
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let va = VirtAddr::new(x % (1 << 47));
            assert_eq!(map.phys_of(va), phys_of(&pt, va), "random probe {i}");
        }
    }
}

//! The core-side translation unit: POLB backed by a hardware POT walk.
//!
//! This wires the `poat-core` structures into a timing model: each
//! `nvld`/`nvst` consults the POLB; a miss triggers the fixed-latency POT
//! walk (plus a page-table walk for the *Parallel* design, which must
//! produce a physical frame — paper §4.2, Figure 7).

use poat_core::polb::{ParallelPolb, PipelinedPolb, TranslationBuffer};
use poat_core::{ObjectId, PolbDesign, Pot, TranslationConfig, TranslationStats, VirtAddr};
use poat_nvm::PageTable;
use poat_pmem::MachineState;
use poat_telemetry::events::{self, EventKind};

/// Outcome of translating one ObjectID.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TranslateOutcome {
    /// Translation succeeded; `extra_cycles` is the added latency (POLB
    /// access and/or walk penalties).
    Ok {
        /// Added latency in cycles.
        extra_cycles: u64,
    },
    /// No POT mapping: the access faults to the OS (paper §4.2). The
    /// simulator counts it and charges the walk that discovered it.
    Fault {
        /// Cycles spent discovering the fault.
        extra_cycles: u64,
    },
}

/// POLB + POT translation hardware for one core.
pub struct TranslationUnit {
    cfg: TranslationConfig,
    polb: Box<dyn TranslationBuffer>,
    pot: Pot,
    page_table: PageTable,
    stats: TranslationStats,
    walk_timer: poat_telemetry::SpanTimer,
}

impl std::fmt::Debug for TranslationUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranslationUnit")
            .field("design", &self.cfg.design)
            .field("polb_entries", &self.polb.capacity())
            .field("polb_stats", self.polb.stats())
            .field("pot_len", &self.pot.len())
            .field("page_table_len", &self.page_table.len())
            .finish()
    }
}

impl TranslationUnit {
    /// Builds the unit for a given configuration and end-of-run machine
    /// state (POT contents + page table) exported by the runtime.
    pub fn new(cfg: TranslationConfig, state: &MachineState) -> Self {
        let polb: Box<dyn TranslationBuffer> = match cfg.design {
            PolbDesign::Pipelined => Box::new(PipelinedPolb::new(cfg.polb_entries)),
            PolbDesign::Parallel => Box::new(ParallelPolb::new(cfg.polb_entries)),
        };
        TranslationUnit {
            cfg,
            polb,
            pot: state.pot.clone(),
            page_table: state.page_table.clone(),
            stats: TranslationStats::default(),
            walk_timer: poat_telemetry::global().span_timer(poat_telemetry::PHASE_POT_WALK),
        }
    }

    /// The configured design.
    pub fn design(&self) -> PolbDesign {
        self.cfg.design
    }

    /// Translates `oid`, whose runtime-recorded virtual address is `va`
    /// (used by the Parallel refill path to find the physical frame).
    pub fn translate(&mut self, oid: ObjectId, va: VirtAddr) -> TranslateOutcome {
        if self.cfg.ideal {
            return TranslateOutcome::Ok { extra_cycles: 0 };
        }
        if self.polb.translate(oid).is_some() {
            let extra = self.cfg.hit_latency_cycles();
            self.stats.translation_cycles += extra;
            return TranslateOutcome::Ok {
                extra_cycles: extra,
            };
        }
        // POLB miss: hardware POT walk. A fault discovered *by* the POT
        // walk charges only the POT-walk share (`fault_penalty_cycles`);
        // the Parallel design's page-table walk runs — and its latency
        // elapses — only once the POT has produced a base to walk from.
        let _walk_span = self.walk_timer.start();
        let _walk_prof = poat_telemetry::profile::hot_scope("pot_walk");
        self.stats.pot_walks += 1;
        let hit = self.cfg.hit_latency_cycles();
        let fault_extra = hit + self.cfg.fault_penalty_cycles();
        // The walk discovers faults too, so the begin event precedes the
        // pool validity check; `Pot::walk` emits the matching end event,
        // stamped after the modeled POT-walk latency has elapsed.
        events::emit(EventKind::PotWalkBegin, oid.pool_raw(), 0);
        events::advance_cycle(fault_extra);
        let Some(pool) = oid.pool() else {
            self.stats.exceptions += 1;
            self.stats.translation_cycles += fault_extra;
            events::emit(EventKind::Fault, oid.pool_raw(), 0);
            return TranslateOutcome::Fault {
                extra_cycles: fault_extra,
            };
        };
        let walk = self.pot.walk(pool);
        let Some(base) = walk.base else {
            self.stats.exceptions += 1;
            self.stats.translation_cycles += fault_extra;
            events::emit(EventKind::Fault, oid.pool_raw(), walk.probes);
            return TranslateOutcome::Fault {
                extra_cycles: fault_extra,
            };
        };
        let extra = hit + self.cfg.miss_penalty_cycles();
        events::advance_cycle(extra.saturating_sub(fault_extra));
        self.stats.translation_cycles += extra;
        match self.cfg.design {
            PolbDesign::Pipelined => self.polb.fill(oid, base.raw()),
            PolbDesign::Parallel => {
                // The POT yields a virtual base; the page-table walk (whose
                // latency is folded into `pot_page_walk_cycles`) yields the
                // frame for the *accessed page*. No frame means the page
                // is unmapped: surface the fault instead of caching a
                // garbage translation that every later access would "hit".
                let Some(frame) = self.page_table.frame_of(va) else {
                    self.stats.exceptions += 1;
                    events::emit(EventKind::PageWalk, oid.pool_raw(), 0);
                    events::emit(EventKind::Fault, oid.pool_raw(), walk.probes);
                    return TranslateOutcome::Fault {
                        extra_cycles: extra,
                    };
                };
                events::emit(EventKind::PageWalk, oid.pool_raw(), 1);
                self.polb.fill(oid, frame.raw());
            }
        }
        TranslateOutcome::Ok {
            extra_cycles: extra,
        }
    }

    /// Accumulated statistics, with the POLB counters folded in.
    pub fn stats(&self) -> TranslationStats {
        let mut s = self.stats;
        s.polb = *self.polb.stats();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_pmem::{Runtime, RuntimeConfig};

    fn state_with_pool() -> (MachineState, ObjectId) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        (rt.machine_state(), oid)
    }

    fn va_of(state: &MachineState, oid: ObjectId) -> VirtAddr {
        let base = state.pot.lookup(oid.pool().unwrap()).unwrap();
        base.offset(oid.offset() as u64)
    }

    #[test]
    fn pipelined_miss_then_hit_latencies() {
        let (state, oid) = state_with_pool();
        let va = va_of(&state, oid);
        let mut tu = TranslationUnit::new(TranslationConfig::default(), &state);
        assert_eq!(
            tu.translate(oid, va),
            TranslateOutcome::Ok {
                extra_cycles: 3 + 30
            },
            "cold access: POLB access + POT walk"
        );
        assert_eq!(
            tu.translate(oid, va),
            TranslateOutcome::Ok { extra_cycles: 3 },
            "warm access: POLB hit"
        );
        let s = tu.stats();
        assert_eq!(s.polb.misses, 1);
        assert_eq!(s.polb.hits, 1);
        assert_eq!(s.pot_walks, 1);
        assert_eq!(s.exceptions, 0);
    }

    #[test]
    fn parallel_hit_is_free_but_miss_is_60() {
        let (state, oid) = state_with_pool();
        let va = va_of(&state, oid);
        let cfg = TranslationConfig::for_design(PolbDesign::Parallel);
        let mut tu = TranslationUnit::new(cfg, &state);
        assert_eq!(
            tu.translate(oid, va),
            TranslateOutcome::Ok { extra_cycles: 60 }
        );
        assert_eq!(
            tu.translate(oid, va),
            TranslateOutcome::Ok { extra_cycles: 0 }
        );
    }

    #[test]
    fn parallel_needs_refill_per_page() {
        let (state, oid) = state_with_pool();
        let cfg = TranslationConfig::for_design(PolbDesign::Parallel);
        let mut tu = TranslationUnit::new(cfg, &state);
        let va = va_of(&state, oid);
        tu.translate(oid, va);
        // Same pool, different page: misses again under Parallel.
        let oid2 = ObjectId::new(oid.pool().unwrap(), oid.offset() + 8192);
        let va2 = va_of(&state, oid2);
        assert!(matches!(
            tu.translate(oid2, va2),
            TranslateOutcome::Ok { extra_cycles: 60 }
        ));
        assert_eq!(tu.stats().polb.misses, 2);
    }

    #[test]
    fn unmapped_pool_faults() {
        let (state, _) = state_with_pool();
        let mut tu = TranslationUnit::new(TranslationConfig::default(), &state);
        let bogus = ObjectId::new(poat_core::PoolId::new(999).unwrap(), 0);
        // Pipelined's miss penalty *is* the POT walk, so the fault costs
        // the same as a successful miss: POLB access + POT walk.
        assert_eq!(
            tu.translate(bogus, VirtAddr::new(0)),
            TranslateOutcome::Fault {
                extra_cycles: 3 + 30
            }
        );
        assert_eq!(tu.stats().exceptions, 1);
    }

    #[test]
    fn parallel_pot_fault_charges_pot_walk_only() {
        let (state, _) = state_with_pool();
        let cfg = TranslationConfig::for_design(PolbDesign::Parallel);
        let mut tu = TranslationUnit::new(cfg, &state);
        let bogus = ObjectId::new(poat_core::PoolId::new(999).unwrap(), 0);
        // The POT walk faults, so the page-table walk never runs: the
        // fault costs the 30-cycle POT share, not the 60-cycle combined
        // miss penalty.
        assert_eq!(
            tu.translate(bogus, VirtAddr::new(0)),
            TranslateOutcome::Fault { extra_cycles: 30 }
        );
        let s = tu.stats();
        assert_eq!(s.exceptions, 1);
        assert_eq!(s.translation_cycles, 30);
    }

    #[test]
    fn parallel_unmapped_page_surfaces_fault() {
        let (state, oid) = state_with_pool();
        let cfg = TranslationConfig::for_design(PolbDesign::Parallel);
        let mut tu = TranslationUnit::new(cfg, &state);
        // The pool is in the POT, but the recorded VA hits no page-table
        // entry: the refill must fault (full miss penalty — the page walk
        // ran and came up empty), not silently cache a garbage frame.
        let nowhere = VirtAddr::new(u64::MAX - 0xFFFF);
        assert_eq!(
            tu.translate(oid, nowhere),
            TranslateOutcome::Fault { extra_cycles: 60 }
        );
        assert_eq!(tu.stats().exceptions, 1);
        // Nothing was installed: a later well-mapped access misses again
        // (rather than "hitting" the bogus entry) and then succeeds.
        let va = va_of(&state, oid);
        assert_eq!(
            tu.translate(oid, va),
            TranslateOutcome::Ok { extra_cycles: 60 }
        );
        assert_eq!(tu.stats().polb.misses, 2);
        assert_eq!(tu.stats().polb.hits, 0);
    }

    #[test]
    fn ideal_mode_is_free() {
        let (state, oid) = state_with_pool();
        let va = va_of(&state, oid);
        let mut tu = TranslationUnit::new(TranslationConfig::default().idealized(), &state);
        assert_eq!(
            tu.translate(oid, va),
            TranslateOutcome::Ok { extra_cycles: 0 }
        );
        assert_eq!(tu.stats().polb.lookups(), 0, "ideal bypasses the POLB");
    }
}

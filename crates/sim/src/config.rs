//! Simulator configuration (paper Table 4).

use poat_core::TranslationConfig;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in cycles, charged when the access *hits* at this
    /// level (latencies accumulate down the hierarchy).
    pub latency: u64,
}

impl CacheLevelConfig {
    /// Number of sets for 64-byte lines.
    pub fn sets(&self) -> u64 {
        self.capacity / 64 / self.ways as u64
    }
}

/// The memory subsystem (Table 4, "Cache" and "Memory" rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// L1 data cache: 8-way 32 KB, 3 cycles.
    pub l1d: CacheLevelConfig,
    /// L2: 8-way 256 KB, 8 cycles.
    pub l2: CacheLevelConfig,
    /// L3: 16-way 8 MB, 27 cycles.
    pub l3: CacheLevelConfig,
    /// Main-memory (battery-backed-DRAM NVM) access latency in cycles.
    pub memory_latency: u64,
    /// D-TLB entries (fully associative model).
    pub dtlb_entries: usize,
    /// Fixed TLB-miss (page-walk) penalty in cycles, as charged by Sniper.
    pub tlb_miss_penalty: u64,
    /// Fixed CLWB completion latency in cycles (pessimistic, §5.1).
    pub clwb_latency: u64,
    /// Next-line prefetch on an L1D miss (ablation knob; the paper's
    /// Table 4 machine is modeled without one, so the default is off).
    pub next_line_prefetch: bool,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            l1d: CacheLevelConfig {
                capacity: 32 << 10,
                ways: 8,
                latency: 3,
            },
            l2: CacheLevelConfig {
                capacity: 256 << 10,
                ways: 8,
                latency: 8,
            },
            l3: CacheLevelConfig {
                capacity: 8 << 20,
                ways: 16,
                latency: 27,
            },
            memory_latency: 120,
            dtlb_entries: 64,
            tlb_miss_penalty: 30,
            clwb_latency: 100,
            next_line_prefetch: false,
        }
    }
}

/// Core parameters (Table 4, "In-order/Out-of-order Processor" rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Branch misprediction penalty in cycles.
    pub branch_misp_penalty: u64,
    /// Out-of-order issue width.
    pub issue_width: u32,
    /// Re-order buffer entries.
    pub rob_size: u32,
    /// Load-queue entries.
    pub lq_size: u32,
    /// Store-queue entries.
    pub sq_size: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            branch_misp_penalty: 8,
            issue_width: 4,
            rob_size: 128,
            lq_size: 48,
            sq_size: 32,
        }
    }
}

/// Complete configuration for one simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Memory subsystem parameters.
    pub mem: MemoryConfig,
    /// POLB/POT translation hardware parameters.
    pub translation: TranslationConfig,
}

impl SimConfig {
    /// Table 4 configuration with the given translation hardware.
    pub fn with_translation(translation: TranslationConfig) -> Self {
        SimConfig {
            translation,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.mem.l1d.capacity, 32 << 10);
        assert_eq!(c.mem.l1d.latency, 3);
        assert_eq!(c.mem.l2.latency, 8);
        assert_eq!(c.mem.l3.latency, 27);
        assert_eq!(c.mem.memory_latency, 120);
        assert_eq!(c.mem.dtlb_entries, 64);
        assert_eq!(c.mem.clwb_latency, 100);
        assert_eq!(c.core.issue_width, 4);
        assert_eq!(c.core.rob_size, 128);
        assert_eq!(c.core.lq_size, 48);
        assert_eq!(c.core.sq_size, 32);
        assert_eq!(c.core.branch_misp_penalty, 8);
    }

    #[test]
    fn set_counts() {
        let c = MemoryConfig::default();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 8192);
    }
}

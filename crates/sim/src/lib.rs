// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-sim — the cycle-level timing simulator
//!
//! Stands in for the extended Sniper 6.1 of the paper (§5.1): trace-driven
//! timing models of the Table 4 machine, replaying the dynamic instruction
//! stream that the `poat-pmem` runtime records.
//!
//! * [`cache::MemoryHierarchy`] — L1D/L2/L3 write-back LRU caches over a
//!   64-byte line, with Table 4 latencies (3/8/27 cycles + 120 to memory).
//! * [`tlb::Tlb`] — 64-entry D-TLB with a fixed 30-cycle miss penalty.
//! * [`xlate::TranslationUnit`] — the POLB (Pipelined or Parallel) backed
//!   by the hardware POT walk, built from `poat-core`.
//! * [`inorder::simulate_inorder`] — five-stage in-order pipeline (§4.5).
//! * [`ooo::simulate_ooo`] — instruction-window-centric out-of-order model
//!   (4-wide, 128-entry ROB, 48/32 LQ/SQ) with dependency-aware
//!   memory-level parallelism (§4.4). Rejects the Parallel POLB design,
//!   as the paper does (§4.3).
//!
//! ## Example
//!
//! ```
//! use poat_pmem::{Runtime, RuntimeConfig};
//! use poat_sim::{simulate_inorder, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rt = Runtime::new(RuntimeConfig::opt());
//! let pool = rt.pool_create("data", 1 << 16)?;
//! let oid = rt.pmalloc(pool, 64)?;
//! rt.take_trace(); // measure only the loop below
//! for i in 0..100 {
//!     rt.write_u64(oid, i)?;
//! }
//! let result = simulate_inorder(&rt.take_trace(), &rt.machine_state(), &SimConfig::default())?;
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod inorder;
pub mod ooo;
pub mod pagemap;
pub mod result;
pub mod tlb;
pub mod xlate;

pub use config::{CoreConfig, MemoryConfig, SimConfig};
pub use inorder::{simulate_inorder, simulate_inorder_ops, simulate_inorder_ops_warm};
pub use ooo::{simulate_ooo, simulate_ooo_ops, simulate_ooo_ops_warm};
pub use result::{SimError, SimResult};

//! Set-associative cache models and the three-level hierarchy.
//!
//! Write-back, write-allocate, true-LRU caches over 64-byte lines. The
//! hierarchy returns the *total* access latency: the sum of the level
//! latencies down to the hitting level, plus main memory on a full miss
//! (3 / 11 / 38 / 158 cycles with the Table 4 defaults).
//!
//! `access` runs once per replayed memory op, so its host cost bounds
//! replay throughput: the `memory/cache_*` benchmarks pin both the MRU
//! way-hint hit path and the full miss/evict path in the committed
//! `BENCH_<n>.json` baseline (docs/BENCHMARKS.md).

use crate::config::{CacheLevelConfig, MemoryConfig};

/// Hit/miss counters for one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1] (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// One set-associative, true-LRU cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    tick: u64,
    stats: CacheStats,
    /// Per-set index of the most recently touched way. Purely a lookup
    /// accelerator for the dominant same-line-again case: a stale hint is
    /// harmless because the full-scan path below stays authoritative.
    mru: Vec<u32>,
}

impl Cache {
    /// Builds a cache from its level configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield at least one set.
    pub fn new(cfg: CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        Cache {
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        last_use: 0
                    };
                    cfg.ways as usize
                ];
                sets as usize
            ],
            tick: 0,
            stats: CacheStats::default(),
            mru: vec![0; sets as usize],
        }
    }

    /// Accesses the line with number `line` (address / 64); returns whether
    /// it hit, allocating it on a miss.
    pub fn access(&mut self, line: u64) -> bool {
        self.tick += 1;
        let idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[idx];
        // MRU fast path: the way this set hit last time.
        let hint = self.mru[idx] as usize;
        if let Some(w) = set.get_mut(hint) {
            if w.valid && w.tag == tag {
                w.last_use = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        if let Some((i, w)) = set
            .iter_mut()
            .enumerate()
            .find(|(_, w)| w.valid && w.tag == tag)
        {
            w.last_use = self.tick;
            self.mru[idx] = i as u32;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let (i, victim) = set
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.last_use } else { 0 })
            .expect("invariant: associativity >= 1, so every set has a way");
        victim.tag = tag;
        victim.valid = true;
        victim.last_use = self.tick;
        self.mru[idx] = i as u32;
        false
    }

    /// Applies `n` additional hits to `line`, as if [`Cache::access`]
    /// had been called `n` times in a row — the run-length extension of
    /// the MRU way hint: a batch of same-line ops costs one model
    /// update instead of `n`.
    ///
    /// Equivalence to `n` sequential hits: each would advance the clock
    /// by one and refresh the same way's last-use to the new clock,
    /// touching no other way or set, so `tick += n` + one final
    /// last-use write + `hits += n` is state-identical. If the line is
    /// (unexpectedly) not resident, this falls back to `n` sequential
    /// accesses, so the batched call is *always* equivalent.
    pub fn access_batched(&mut self, line: u64, n: u64) -> bool {
        if n == 0 || self.hit_batched(line, n) {
            return true;
        }
        let mut all_hit = true;
        for _ in 0..n {
            all_hit &= self.access(line);
        }
        all_hit
    }

    /// Applies `n` hits to `line` in one update **iff** the line is
    /// resident, returning whether it was. On `false` the cache is left
    /// completely untouched (no clock advance, no counters), so a caller
    /// can probe-and-commit: try the batch, and fall back to exact
    /// sequential accesses without having perturbed any state.
    pub fn hit_batched(&mut self, line: u64, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[idx];
        let hint = self.mru[idx] as usize;
        let hit_at = if matches!(set.get(hint), Some(w) if w.valid && w.tag == tag) {
            Some(hint)
        } else {
            set.iter().position(|w| w.valid && w.tag == tag)
        };
        match hit_at {
            Some(i) => {
                self.tick += n;
                set[i].last_use = self.tick;
                self.mru[idx] = i as u32;
                self.stats.hits += n;
                true
            }
            None => false,
        }
    }

    /// Installs a line without touching hit/miss counters (prefetch).
    pub fn prefetch(&mut self, line: u64) {
        self.tick += 1;
        let idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[idx];
        if set.iter().any(|w| w.valid && w.tag == tag) {
            return;
        }
        let tick = self.tick;
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_use } else { 0 })
            .expect("invariant: associativity >= 1, so every set has a way");
        victim.tag = tag;
        victim.valid = true;
        victim.last_use = tick;
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Statistics across the hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1D counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters.
    pub l3: CacheStats,
}

/// The L1D/L2/L3 + memory hierarchy.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    l1_latency: u64,
    l2_latency: u64,
    l3_latency: u64,
    memory_latency: u64,
    next_line_prefetch: bool,
    prefetches: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from the memory configuration.
    pub fn new(cfg: &MemoryConfig) -> Self {
        MemoryHierarchy {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            l1_latency: cfg.l1d.latency,
            l2_latency: cfg.l2.latency,
            l3_latency: cfg.l3.latency,
            memory_latency: cfg.memory_latency,
            next_line_prefetch: cfg.next_line_prefetch,
            prefetches: 0,
        }
    }

    /// Accesses the line containing physical address `pa`, returning the
    /// total latency in cycles.
    pub fn access(&mut self, pa: u64) -> u64 {
        let line = pa / 64;
        let mut latency = self.l1_latency;
        if self.l1d.access(line) {
            return latency;
        }
        if self.next_line_prefetch {
            self.prefetches += 1;
            self.l1d.prefetch(line + 1);
            self.l2.prefetch(line + 1);
            self.l3.prefetch(line + 1);
        }
        latency += self.l2_latency;
        if self.l2.access(line) {
            return latency;
        }
        latency += self.l3_latency;
        if self.l3.access(line) {
            return latency;
        }
        latency + self.memory_latency
    }

    /// Applies `n` accesses to the line containing `pa` in one model
    /// update when the line is L1-resident, returning the *total*
    /// latency of the batch (`n * l1_latency` on that path). When the
    /// line is not L1-resident the accesses are replayed individually —
    /// the batch degenerates to a loop, but the returned total and the
    /// model state stay exactly equivalent to `n` sequential
    /// [`MemoryHierarchy::access`] calls, so callers never have to
    /// reason about residency to stay correct, only to go fast.
    pub fn access_batched(&mut self, pa: u64, n: u64) -> u64 {
        let line = pa / 64;
        if self.l1d.hit_batched(line, n) {
            return self.l1_latency * n;
        }
        let mut total = 0;
        for _ in 0..n {
            total += self.access(pa);
        }
        total
    }

    /// The L1-hit latency (the pipelined, stall-free case).
    pub fn l1_latency(&self) -> u64 {
        self.l1_latency
    }

    /// Next-line prefetches issued.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Counters for all levels.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3: self.l3.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&MemoryConfig::default())
    }

    #[test]
    fn latencies_accumulate_down_the_hierarchy() {
        let mut h = hierarchy();
        assert_eq!(
            h.access(0x1000),
            3 + 8 + 27 + 120,
            "cold miss goes to memory"
        );
        assert_eq!(h.access(0x1000), 3, "now L1-resident");
        assert_eq!(h.access(0x1008), 3, "same line");
        assert_eq!(h.access(0x1040), 158, "next line misses");
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = hierarchy();
        h.access(0);
        // 32KB 8-way: 64 sets. Touch 8 more lines mapping to set 0 to evict.
        for i in 1..=8u64 {
            h.access(i * 64 * 64);
        }
        let lat = h.access(0);
        assert_eq!(lat, 3 + 8, "evicted from L1 but still in L2");
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = Cache::new(CacheLevelConfig {
            capacity: 2 * 64,
            ways: 2,
            latency: 1,
        });
        // 1 set, 2 ways.
        assert!(!c.access(0));
        assert!(!c.access(1));
        assert!(c.access(0)); // refresh 0 → 1 is LRU
        assert!(!c.access(2)); // evicts 1
        assert!(c.access(0));
        assert!(!c.access(1), "1 was evicted");
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut h = hierarchy();
        h.access(0);
        h.access(0);
        let s = h.stats();
        assert_eq!(s.l1d.hits, 1);
        assert_eq!(s.l1d.misses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.l3.misses, 1);
        assert_eq!(s.l1d.miss_rate(), 0.5);
    }

    #[test]
    fn distinct_addresses_do_not_alias() {
        let mut h = hierarchy();
        // Fill a few thousand distinct lines; all must miss exactly once.
        for i in 0..4000u64 {
            h.access(i * 64);
        }
        assert_eq!(h.stats().l1d.misses, 4000);
        assert_eq!(h.stats().l1d.hits, 0);
    }

    /// Plain linear-scan true-LRU with no MRU way hint: the semantics
    /// `Cache` must preserve.
    struct ReferenceCache {
        sets: Vec<Vec<Way>>,
        tick: u64,
        stats: CacheStats,
    }

    impl ReferenceCache {
        fn access(&mut self, line: u64) -> bool {
            self.tick += 1;
            let idx = (line % self.sets.len() as u64) as usize;
            let tag = line / self.sets.len() as u64;
            let set = &mut self.sets[idx];
            if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
                w.last_use = self.tick;
                self.stats.hits += 1;
                return true;
            }
            self.stats.misses += 1;
            let victim = set
                .iter_mut()
                .min_by_key(|w| if w.valid { w.last_use } else { 0 })
                .unwrap();
            victim.tag = tag;
            victim.valid = true;
            victim.last_use = self.tick;
            false
        }
    }

    #[test]
    fn mru_fast_path_matches_reference_lru() {
        // 4 sets × 4 ways, hammered with a mix of line-local runs, a hot
        // working set larger than one set, and scattered lines: exercises
        // the hint hit, hint misses that still hit on scan, fills, and
        // LRU evictions. Every per-access outcome must match.
        let cfg = CacheLevelConfig {
            capacity: 16 * 64,
            ways: 4,
            latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut reference = ReferenceCache {
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        last_use: 0
                    };
                    4
                ];
                4
            ],
            tick: 0,
            stats: CacheStats::default(),
        };
        let mut x: u64 = 0xDEAD;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = match i % 4 {
                0 | 1 => i / 9,     // line-local runs
                2 => x % 24,        // hot set bigger than capacity
                _ => x % (1 << 20), // scattered
            };
            assert_eq!(
                cache.access(line),
                reference.access(line),
                "access {i} diverged"
            );
        }
        assert_eq!(cache.stats(), reference.stats);
        assert!(reference.stats.hits > 0 && reference.stats.misses > 16);
    }

    #[test]
    fn batched_hits_match_sequential_accesses() {
        // Interleave batched and sequential updates against the
        // reference model: run-length batching must be state-identical
        // to n sequential accesses, including when the batched line is
        // not resident (the fallback path).
        let cfg = CacheLevelConfig {
            capacity: 16 * 64,
            ways: 4,
            latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut reference = ReferenceCache {
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        last_use: 0
                    };
                    4
                ];
                4
            ],
            tick: 0,
            stats: CacheStats::default(),
        };
        let mut x: u64 = 0xC0FE;
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = x % 24; // hot set larger than capacity: misses too
            let n = x % 7;
            let got = cache.access_batched(line, n);
            let mut want = true;
            for _ in 0..n {
                want &= reference.access(line);
            }
            if n > 0 {
                assert_eq!(got, want, "batch {i} diverged");
            }
            // A plain access in between keeps the interleaving honest.
            assert_eq!(cache.access(line ^ 1), reference.access(line ^ 1));
        }
        assert_eq!(cache.stats(), reference.stats);
    }

    #[test]
    fn failed_hit_batch_leaves_the_cache_untouched() {
        let cfg = CacheLevelConfig {
            capacity: 4 * 64,
            ways: 4,
            latency: 1,
        };
        let mut c = Cache::new(cfg);
        c.access(1);
        let before = c.stats();
        assert!(!c.hit_batched(2, 5), "line 2 was never brought in");
        assert_eq!(c.stats(), before, "failed probe must not count");
        assert!(c.access(1), "line 1 must still be resident and MRU-intact");
    }

    #[test]
    fn hierarchy_batched_access_matches_sequential() {
        // The batched hierarchy access must return the same total
        // latency and leave identical state as n sequential accesses,
        // resident or not (the miss path goes through the real access
        // loop, prefetches included).
        let mut a = hierarchy();
        let mut b = hierarchy();
        let mut x: u64 = 0xFACE;
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pa = (x % 512) * 64 + (x % 64);
            let n = x % 5;
            let got = a.access_batched(pa, n);
            let mut want = 0;
            for _ in 0..n {
                want += b.access(pa);
            }
            assert_eq!(got, want, "batch {i} diverged");
            assert_eq!(a.access(pa ^ 0x40), b.access(pa ^ 0x40));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.prefetches(), b.prefetches());
    }
}

//! The out-of-order core model (paper §4.4).
//!
//! An instruction-window-centric model in the spirit of Sniper's ROB core
//! model: instructions dispatch in program order at the issue width,
//! execute when their operands are ready, and retire in order. Cycle time
//! comes from the retirement of the last instruction. What the window
//! buys — and what the paper measures — is **memory-level parallelism**:
//! independent long-latency loads overlap, while dependency chains
//! (pointer chasing, and in BASE the `oid_direct` loads feeding the data
//! access) serialize. This is why hardware translation speeds up an
//! out-of-order core less than an in-order core (Figure 9b vs 9a).
//!
//! `nvld`/`nvst` use the *Pipelined* POLB in the address-generation stage,
//! so the LSQ only ever holds post-translation virtual addresses and
//! memory disambiguation is unchanged (§4.4): a store queue entry can
//! forward its data to *any* later load of the same word — including an
//! `nvst` forwarding to a regular load, the aliasing case §4.3 calls out.
//! A POLB miss stalls address generation (modeled as a dispatch stall)
//! for the POT walk. The *Parallel* design is rejected, as in the paper
//! (§4.3): ObjectIDs in the LSQ would break disambiguation, so the paper
//! declines to build it.

use std::collections::VecDeque;

use poat_core::PolbDesign;
use poat_pmem::{MachineState, Trace, TraceOp};
use poat_telemetry::events::{self, EventKind, TraceDesign};
use poat_telemetry::profile;

use crate::cache::MemoryHierarchy;
use crate::config::SimConfig;
use crate::pagemap::PageMap;
use crate::result::{SimError, SimResult};
use crate::tlb::Tlb;
use crate::xlate::{TranslateOutcome, TranslationUnit};

/// Replays `trace` on the out-of-order core.
///
/// Streams straight off the trace's compact encoding; equivalent to
/// `simulate_ooo_ops(trace.ops(), …)`.
///
/// # Errors
///
/// [`SimError::ParallelOnOutOfOrder`] if the translation configuration
/// selects the Parallel POLB design (unsupported by construction).
pub fn simulate_ooo(
    trace: &Trace,
    state: &MachineState,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_ooo_ops(trace.ops(), state, cfg)
}

/// Replays any stream of [`TraceOp`]s on the out-of-order core.
///
/// The ops are consumed one at a time — the model never materializes the
/// stream, so replay memory is O(ops) only for the per-op completion
/// times (8 B each), not the ops themselves.
///
/// # Errors
///
/// [`SimError::ParallelOnOutOfOrder`] if the translation configuration
/// selects the Parallel POLB design (unsupported by construction).
pub fn simulate_ooo_ops(
    ops: impl IntoIterator<Item = TraceOp>,
    state: &MachineState,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_ooo_ops_warm(ops, 0, state, cfg)
}

/// [`simulate_ooo_ops`] with functional warmup: the first `warmup_ops`
/// ops replay through the full model but are excluded from the returned
/// counters (snapshotted at the boundary, measured window reported as
/// the advance since it — [`SimResult::delta_since`]; `cycles` is the
/// retire-clock advance during the measured window). See
/// `simulate_inorder_ops_warm` for how sharded replay uses this.
///
/// # Errors
///
/// [`SimError::ParallelOnOutOfOrder`] if the translation configuration
/// selects the Parallel POLB design (unsupported by construction).
pub fn simulate_ooo_ops_warm(
    ops: impl IntoIterator<Item = TraceOp>,
    warmup_ops: usize,
    state: &MachineState,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    if cfg.translation.design == PolbDesign::Parallel {
        return Err(SimError::ParallelOnOutOfOrder);
    }

    let _replay_span = poat_telemetry::global().span(poat_telemetry::PHASE_TRACE_REPLAY);
    let _replay_prof = profile::scope(poat_telemetry::PHASE_TRACE_REPLAY);
    let mut hier = MemoryHierarchy::new(&cfg.mem);
    let mut tlb = Tlb::new(cfg.mem.dtlb_entries);
    let mut xlate = TranslationUnit::new(cfg.translation, state);
    let pmap = PageMap::new(&state.page_table);

    let width = cfg.core.issue_width.max(1) as u64;
    let rob_size = cfg.core.rob_size.max(1);
    let lq_size = cfg.core.lq_size.max(1) as usize;
    let sq_size = cfg.core.sq_size.max(1) as usize;
    let misp = cfg.core.branch_misp_penalty;
    let hit_extra = cfg.translation.hit_latency_cycles();

    let mut ops = ops.into_iter();
    // Completion time of each op, for dependency resolution. Grown as the
    // stream is consumed; a dep outside the recorded range reads as
    // ready-at-zero.
    let mut complete: Vec<u64> = Vec::with_capacity(ops.size_hint().0);

    let mut slot: u64 = 0; // next free dispatch slot (cycle * width + lane)
    let mut dispatch_block: u64 = 0; // earliest cycle dispatch may resume
    let mut rob: VecDeque<(u64, u32)> = VecDeque::new(); // (retire cycle, entries)
    let mut rob_occ: u32 = 0;
    let mut lq: VecDeque<u64> = VecDeque::new();
    // Store queue: (retire cycle, word address, data-ready cycle) — the
    // word address enables store-to-load forwarding.
    let mut sq: VecDeque<(u64, u64, u64)> = VecDeque::new();
    let mut forwarded: u64 = 0;
    let mut last_retire: u64 = 0;
    let mut last_mem_complete: u64 = 0;
    let mut instructions: u64 = 0;

    // Warmup/measure boundary (see `simulate_inorder_ops_warm`): the
    // counters are snapshotted after `warmup_ops` ops and the measured
    // window reported as the advance past the snapshot.
    let mut consumed: usize = 0;
    let mut warm_snapshot: Option<SimResult> = None;
    macro_rules! snapshot {
        () => {
            SimResult {
                cycles: last_retire,
                instructions,
                translation: xlate.stats(),
                cache: hier.stats(),
                tlb: tlb.stats(),
                store_forwards: forwarded,
            }
        };
    }

    loop {
        if warmup_ops > 0 && consumed == warmup_ops && warm_snapshot.is_none() {
            warm_snapshot = Some(snapshot!());
        }
        // One sampling decision per replayed op, shared by the decode pull
        // below and every hot scope in the body.
        let _op_prof = profile::begin_op();
        let Some(op) = ({
            let _decode_prof = profile::hot_scope("replay_decode");
            ops.next()
        }) else {
            break;
        };
        consumed += 1;
        let k = op.instructions();
        instructions += k;
        // An Exec batch can exceed the ROB; it streams through, so its ROB
        // footprint is capped at the window size.
        let k_rob = k.min(rob_size as u64) as u32;

        // Structural hazards: ROB and load/store queues free entries at
        // retirement (in order, so their retire times are monotone).
        while rob_occ + k_rob > rob_size {
            let (r, c) = rob
                .pop_front()
                .expect("invariant: rob_occ > 0 implies the ROB deque is non-empty");
            rob_occ -= c;
            dispatch_block = dispatch_block.max(r);
        }
        let is_load = matches!(op, TraceOp::Load { .. } | TraceOp::NvLoad { .. });
        let is_store = matches!(op, TraceOp::Store { .. } | TraceOp::NvStore { .. });
        if is_load {
            while lq.len() >= lq_size {
                dispatch_block = dispatch_block.max(
                    lq.pop_front()
                        .expect("invariant: lq.len() >= lq_size >= 1 inside the loop"),
                );
            }
        }
        if is_store {
            while sq.len() >= sq_size {
                dispatch_block = dispatch_block.max(
                    sq.pop_front()
                        .expect("invariant: sq.len() >= sq_size >= 1 inside the loop")
                        .0,
                );
            }
        }

        // Dispatch.
        let disp_cycle = (slot / width).max(dispatch_block);
        slot = slot.max(disp_cycle * width) + k;
        let dep = match op {
            TraceOp::Load { dep, .. }
            | TraceOp::Store { dep, .. }
            | TraceOp::NvLoad { dep, .. }
            | TraceOp::NvStore { dep, .. } => dep,
            _ => None,
        };
        let dep_ready = dep
            .map(|d| complete.get(d as usize).copied().unwrap_or(0))
            .unwrap_or(0);
        let start = (disp_cycle + 1).max(dep_ready);

        // Execute.
        let done = match op {
            // `saturating_sub` guards the degenerate zero-width batch a
            // hand-built op stream can feed in (`Trace::push` drops them):
            // at slot 0 the subtraction would otherwise wrap.
            TraceOp::Exec { .. } => slot.saturating_sub(1) / width + 2,
            TraceOp::Branch { mispredicted } => {
                let done = start + 1;
                if mispredicted {
                    dispatch_block = dispatch_block.max(done + misp);
                }
                done
            }
            TraceOp::Load { va, .. } => {
                let _mem_prof = profile::hot_scope("cache_tlb");
                let t = if tlb.access(va.raw()) {
                    0
                } else {
                    cfg.mem.tlb_miss_penalty
                };
                // Store-to-load forwarding: a queued store to the same
                // word supplies the data without a cache access — the
                // hierarchy (counters and LRU state) is only touched on
                // the non-forwarded path.
                let fwd = sq.iter().rev().find(|&&(_, w, _)| w == va.raw() / 8);
                match fwd {
                    Some(&(_, _, data_ready)) => {
                        forwarded += 1;
                        start.max(data_ready) + 1
                    }
                    None => start + t + hier.access(pmap.phys_of(va)),
                }
            }
            TraceOp::Store { va, .. } => {
                let _mem_prof = profile::hot_scope("cache_tlb");
                let t = if tlb.access(va.raw()) {
                    0
                } else {
                    cfg.mem.tlb_miss_penalty
                };
                hier.access(pmap.phys_of(va));
                start + t + cfg.mem.l1d.latency
            }
            TraceOp::NvLoad { oid, va, .. } => {
                events::begin_access(
                    EventKind::NvLoad,
                    TraceDesign::Pipelined,
                    instructions,
                    start,
                    oid.pool_raw(),
                );
                let extra = {
                    let _xlate_prof = profile::hot_scope("xlate");
                    match xlate.translate(oid, va) {
                        TranslateOutcome::Ok { extra_cycles }
                        | TranslateOutcome::Fault { extra_cycles } => extra_cycles,
                    }
                };
                if extra > hit_extra {
                    // POLB miss: the POT walk blocks address generation.
                    dispatch_block = dispatch_block.max(start + extra);
                }
                let _mem_prof = profile::hot_scope("cache_tlb");
                let t = if tlb.access(va.raw()) {
                    0
                } else {
                    cfg.mem.tlb_miss_penalty
                };
                // After translation the LSQ holds a virtual address, so
                // forwarding works across instruction kinds (§4.4). As
                // with regular loads, a forwarded nvld must not touch the
                // cache hierarchy.
                let fwd = sq.iter().rev().find(|&&(_, w, _)| w == va.raw() / 8);
                match fwd {
                    Some(&(_, _, data_ready)) => {
                        forwarded += 1;
                        start.max(data_ready) + extra + 1
                    }
                    None => start + extra + t + hier.access(pmap.phys_of(va)),
                }
            }
            TraceOp::NvStore { oid, va, .. } => {
                events::begin_access(
                    EventKind::NvStore,
                    TraceDesign::Pipelined,
                    instructions,
                    start,
                    oid.pool_raw(),
                );
                let extra = {
                    let _xlate_prof = profile::hot_scope("xlate");
                    match xlate.translate(oid, va) {
                        TranslateOutcome::Ok { extra_cycles }
                        | TranslateOutcome::Fault { extra_cycles } => extra_cycles,
                    }
                };
                if extra > hit_extra {
                    dispatch_block = dispatch_block.max(start + extra);
                }
                let _mem_prof = profile::hot_scope("cache_tlb");
                let t = if tlb.access(va.raw()) {
                    0
                } else {
                    cfg.mem.tlb_miss_penalty
                };
                hier.access(pmap.phys_of(va));
                start + extra + t + cfg.mem.l1d.latency
            }
            TraceOp::Clwb { va } => {
                let _mem_prof = profile::hot_scope("cache_tlb");
                hier.access(pmap.phys_of(va));
                start + cfg.mem.clwb_latency
            }
            TraceOp::Fence => {
                let s = start.max(last_mem_complete);
                dispatch_block = dispatch_block.max(s + 1);
                s + 1
            }
        };

        complete.push(done);
        if op.is_memory() || matches!(op, TraceOp::Clwb { .. }) {
            last_mem_complete = last_mem_complete.max(done);
        }
        // In-order retirement.
        last_retire = last_retire.max(done);
        rob.push_back((last_retire, k_rob));
        rob_occ += k_rob;
        if is_load {
            lq.push_back(last_retire);
        }
        if is_store {
            let word = match op {
                TraceOp::Store { va, .. } | TraceOp::NvStore { va, .. } => va.raw() / 8,
                _ => unreachable!("is_store implies a store op"),
            };
            sq.push_back((last_retire, word, done));
        }
    }

    let total = snapshot!();
    Ok(match warm_snapshot {
        Some(at_boundary) => total.delta_since(&at_boundary),
        // A warmup longer than the stream leaves nothing measured.
        None if warmup_ops > 0 => total.delta_since(&total),
        None => total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inorder::simulate_inorder;
    use poat_core::{TranslationConfig, VirtAddr};
    use poat_pmem::{Runtime, RuntimeConfig, TranslationMode};

    fn machine() -> MachineState {
        let mut rt = Runtime::new(RuntimeConfig::default());
        rt.pool_create("p", 1 << 16).unwrap();
        rt.machine_state()
    }

    #[test]
    fn parallel_design_rejected() {
        let state = machine();
        let cfg = SimConfig::with_translation(TranslationConfig::for_design(PolbDesign::Parallel));
        let t = Trace::new();
        assert_eq!(
            simulate_ooo(&t, &state, &cfg),
            Err(SimError::ParallelOnOutOfOrder)
        );
    }

    #[test]
    fn dispatch_width_bounds_ipc() {
        let state = machine();
        let mut t = Trace::new();
        t.push(TraceOp::Exec { n: 4000 });
        let r = simulate_ooo(&t, &state, &SimConfig::default()).unwrap();
        // 4-wide: 1000 dispatch cycles, small pipeline tail.
        assert!(r.cycles >= 1000 && r.cycles < 1010, "{}", r.cycles);
        assert!((r.ipc() - 4.0).abs() < 0.1);
    }

    #[test]
    fn independent_loads_overlap_dependent_loads_serialize() {
        let state = machine();
        let stride = 8192u64; // distinct lines and pages
        let base = 0x2000_0000_0000u64;
        let cfg = SimConfig::default();

        let mut indep = Trace::new();
        for i in 0..32 {
            indep.push(TraceOp::Load {
                va: VirtAddr::new(base + i * stride),
                dep: None,
            });
        }
        let r_indep = simulate_ooo(&indep, &state, &cfg).unwrap();

        let mut chain = Trace::new();
        let mut prev = None;
        for i in 0..32 {
            prev = Some(chain.push(TraceOp::Load {
                va: VirtAddr::new(base + i * stride),
                dep: prev,
            }));
        }
        let r_chain = simulate_ooo(&chain, &state, &cfg).unwrap();

        assert!(
            r_chain.cycles > 3 * r_indep.cycles,
            "chain {} vs indep {}",
            r_chain.cycles,
            r_indep.cycles
        );
    }

    #[test]
    fn ooo_hides_latency_better_than_inorder() {
        // A BASE-style software-translation workload with independent work
        // between accesses: the OoO core should close part of the gap.
        let mut rt = Runtime::new(RuntimeConfig {
            mode: TranslationMode::Software,
            ..RuntimeConfig::default()
        });
        let pool = rt.pool_create("p", 1 << 18).unwrap();
        let mut oids = Vec::new();
        for _ in 0..64 {
            oids.push(rt.pmalloc(pool, 64).unwrap());
        }
        rt.take_trace();
        for &oid in &oids {
            let r = rt.deref(oid, None).unwrap();
            let _ = rt.read_u64_at(&r, 0).unwrap();
            rt.exec(12);
        }
        let trace = rt.take_trace();
        let state = rt.machine_state();
        let cfg = SimConfig::default();
        let ino = simulate_inorder(&trace, &state, &cfg).unwrap();
        let ooo = simulate_ooo(&trace, &state, &cfg).unwrap();
        assert!(
            ooo.cycles < ino.cycles,
            "ooo {} < ino {}",
            ooo.cycles,
            ino.cycles
        );
        assert_eq!(ooo.instructions, ino.instructions);
    }

    #[test]
    fn fence_serializes_clwbs() {
        let state = machine();
        let cfg = SimConfig::default();
        let base = 0x2000_0000_0000u64;
        // Two clwbs + fence: clwbs overlap each other, fence waits for both.
        let mut t = Trace::new();
        t.push(TraceOp::Clwb {
            va: VirtAddr::new(base),
        });
        t.push(TraceOp::Clwb {
            va: VirtAddr::new(base + 64),
        });
        t.push(TraceOp::Fence);
        t.push(TraceOp::Exec { n: 1 });
        let r = simulate_ooo(&t, &state, &cfg).unwrap();
        // Both clwbs complete ≈ cycle 101-102; fence after; well under 200
        // (serial execution would be > 200).
        assert!(r.cycles > 100 && r.cycles < 120, "{}", r.cycles);
    }

    #[test]
    fn rob_limits_memory_parallelism() {
        let state = machine();
        let base = 0x2000_0000_0000u64;
        let mut t = Trace::new();
        for i in 0..512u64 {
            t.push(TraceOp::Load {
                va: VirtAddr::new(base + i * 8192),
                dep: None,
            });
        }
        let narrow = SimConfig {
            core: crate::config::CoreConfig {
                rob_size: 8,
                lq_size: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        let wide = SimConfig::default();
        let r_narrow = simulate_ooo(&t, &state, &narrow).unwrap();
        let r_wide = simulate_ooo(&t, &state, &wide).unwrap();
        assert!(
            r_narrow.cycles > 2 * r_wide.cycles,
            "narrow {} wide {}",
            r_narrow.cycles,
            r_wide.cycles
        );
    }

    #[test]
    fn forwarded_load_leaves_cache_untouched() {
        // A forwarded load gets its data from the store queue, so it must
        // not inflate hit/miss counters or touch cache LRU state: the
        // store-only trace and the store+forwarded-load trace see
        // identical cache statistics.
        let state = machine();
        let cfg = SimConfig::default();
        let va = VirtAddr::new(0x2000_0000_0000);

        let mut store_only = Trace::new();
        store_only.push(TraceOp::Store { va, dep: None });
        let r_store = simulate_ooo(&store_only, &state, &cfg).unwrap();
        assert_eq!(r_store.store_forwards, 0);

        let mut with_load = Trace::new();
        with_load.push(TraceOp::Store { va, dep: None });
        with_load.push(TraceOp::Load { va, dep: None });
        let r_fwd = simulate_ooo(&with_load, &state, &cfg).unwrap();
        assert_eq!(r_fwd.store_forwards, 1, "the load must forward");
        assert_eq!(
            r_fwd.cache, r_store.cache,
            "forwarded load perturbed the cache"
        );
    }

    #[test]
    fn forwarded_nvload_leaves_cache_untouched() {
        // Same property through the nvld path: an nvst to a word followed
        // by an nvld of it forwards, and the nvld leaves the hierarchy
        // exactly as the store-only run left it.
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        let r = rt.deref(oid, None).unwrap();
        rt.take_trace();
        rt.write_u64_at(&r, 0, 7).unwrap(); // nvst
        let state = rt.machine_state();
        let store_only = rt.trace().clone();
        let mut with_load = store_only.clone();
        let _ = rt.take_trace();
        with_load.push(TraceOp::NvLoad {
            oid,
            va: r.va(),
            dep: None,
        });
        let cfg = SimConfig::default();
        let r_store = simulate_ooo(&store_only, &state, &cfg).unwrap();
        let r_fwd = simulate_ooo(&with_load, &state, &cfg).unwrap();
        assert_eq!(r_fwd.store_forwards, 1, "the nvld must forward");
        assert_eq!(
            r_fwd.cache, r_store.cache,
            "forwarded nvld perturbed the cache"
        );
    }

    #[test]
    fn zero_length_exec_first_op_is_harmless() {
        // `rt.exec(0)` must not underflow the dispatch clock when it is
        // the first thing a trace would record. The runtime drops it, the
        // trace drops it at push, and the model guards the raw-stream case.
        let state = machine();
        let cfg = SimConfig::default();

        let mut rt = Runtime::new(RuntimeConfig::opt());
        rt.exec(0);
        rt.exec(3);
        let t = rt.take_trace();
        let r = simulate_ooo(&t, &state, &cfg).unwrap();
        assert_eq!(r.instructions, 3);

        // Trace::push drops the empty batch outright.
        let mut t2 = Trace::new();
        t2.push(TraceOp::Exec { n: 0 });
        assert!(t2.is_empty());

        // And even a hand-built stream that bypasses Trace entirely must
        // not wrap `slot - 1` in the Exec arm.
        let r3 = super::simulate_ooo_ops(
            [TraceOp::Exec { n: 0 }, TraceOp::Exec { n: 4 }],
            &state,
            &cfg,
        )
        .unwrap();
        assert_eq!(r3.instructions, 4);
    }

    #[test]
    fn nvst_forwards_to_regular_load() {
        // §4.4: because the LSQ holds post-translation virtual addresses,
        // an nvst can forward its data to a regular load of the same word.
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        let r = rt.deref(oid, None).unwrap();
        let va = r.va();
        rt.take_trace();
        rt.write_u64_at(&r, 0, 42).unwrap(); // nvst
        let state = rt.machine_state();
        let mut t = rt.take_trace();
        t.push(TraceOp::Load { va, dep: None }); // regular load, same word
        let res = simulate_ooo(&t, &state, &SimConfig::default()).unwrap();
        assert_eq!(res.store_forwards, 1, "cross-kind forwarding must fire");

        // Without the store in flight, the cold load pays the full miss.
        let mut t2 = Trace::new();
        t2.push(TraceOp::Load { va, dep: None });
        let res2 = simulate_ooo(&t2, &state, &SimConfig::default()).unwrap();
        assert!(
            res.cycles < res2.cycles,
            "{} !< {}",
            res.cycles,
            res2.cycles
        );
    }

    #[test]
    fn polb_hit_cost_is_small_on_ooo() {
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 4096).unwrap();
        rt.take_trace();
        for i in 0..64u32 {
            let r = rt.deref(oid, None).unwrap();
            let _ = rt.read_u64_at(&r, (i % 32) * 8).unwrap();
            rt.exec(4);
        }
        let trace = rt.take_trace();
        let state = rt.machine_state();
        let normal = simulate_ooo(&trace, &state, &SimConfig::default()).unwrap();
        let ideal = simulate_ooo(
            &trace,
            &state,
            &SimConfig::with_translation(TranslationConfig::default().idealized()),
        )
        .unwrap();
        assert!(normal.cycles >= ideal.cycles);
        let overhead = normal.cycles as f64 / ideal.cycles as f64;
        assert!(
            overhead < 2.0,
            "POLB-hit overhead should be modest: {overhead}"
        );
    }

    #[test]
    fn warm_replay_measures_a_strict_window() {
        // Unlike the in-order fold, the OoO pipeline is not drained at
        // the warmup boundary, so warm ≠ whole − standalone-prefix in
        // general; pin the invariants that do hold: zero warmup is the
        // plain replay, all-warmup measures nothing, and a warmed run
        // reports strictly less than the whole trace.
        let mut rt = Runtime::new(RuntimeConfig::default());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 256).unwrap();
        rt.take_trace();
        for i in 0..200u32 {
            let r = rt.deref(oid, None).unwrap();
            rt.write_u64_at(&r, (i % 32) * 8, i as u64).unwrap();
            let _ = rt.read_u64_at(&r, (i % 32) * 8).unwrap();
            rt.exec(3);
        }
        let trace = rt.take_trace();
        let state = rt.machine_state();
        let ops: Vec<TraceOp> = trace.ops().collect();
        let cfg = SimConfig::default();
        let whole = simulate_ooo_ops(ops.iter().copied(), &state, &cfg).unwrap();
        let unwarmed = simulate_ooo_ops_warm(ops.iter().copied(), 0, &state, &cfg).unwrap();
        assert_eq!(unwarmed, whole);
        let empty = simulate_ooo_ops_warm(ops.iter().copied(), ops.len(), &state, &cfg).unwrap();
        assert_eq!(empty, SimResult::default());
        let warm = simulate_ooo_ops_warm(ops.iter().copied(), ops.len() / 2, &state, &cfg).unwrap();
        assert!(warm.cycles > 0 && warm.cycles < whole.cycles);
        assert!(warm.instructions < whole.instructions);
    }
}

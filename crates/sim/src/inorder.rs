//! The in-order core model (paper §4.5).
//!
//! A five-stage scalar pipeline at one instruction per cycle with a
//! load-to-use stall model:
//!
//! * an L1 hit (3 cycles) is fully pipelined — it stalls the machine only
//!   if a *dependent* operation needs the value before it is ready (the
//!   trace carries those dependence edges);
//! * anything deeper than L1 stalls the pipe for the residual latency
//!   (a scalar in-order core has no memory-level parallelism);
//! * TLB misses charge the fixed page-walk penalty;
//! * `clwb` pessimistically stalls for its fixed completion latency
//!   (§5.1).
//!
//! `nvld`/`nvst` first pass the POLB:
//!
//! * *Pipelined*: the POLB access serializes in front of the TLB + L1D —
//!   it lengthens the load-to-use latency of every `nvld` (pointer chases
//!   feel it; independent work hides it), and a miss stalls the pipe for
//!   the POT walk.
//! * *Parallel*: the POLB is searched in parallel with the L1D — a hit
//!   adds nothing (and skips the TLB, since the POLB holds physical
//!   frames); a miss stalls for the combined POT + page-table walk.

use poat_core::VirtAddr;
use poat_pmem::{MachineState, Trace, TraceOp};
use poat_telemetry::events::{self, EventKind, TraceDesign};
use poat_telemetry::profile;

use crate::cache::MemoryHierarchy;
use crate::config::SimConfig;
use crate::pagemap::PageMap;
use crate::result::{SimError, SimResult};
use crate::tlb::Tlb;
use crate::xlate::{TranslateOutcome, TranslationUnit};

/// Replays a coalesced run of `n` same-line plain `Load`/`Store` ops
/// (all `dep: None`): the leading op takes the exact per-op path, and
/// the remaining `n - 1` are guaranteed TLB + L1 hits — the page and
/// line are resident because the leading access allocates on miss (see
/// the `batching` gate in [`simulate_inorder_ops`]) — applied as one
/// run-length batched model update each instead of `n - 1` scans.
#[allow(clippy::too_many_arguments)]
fn flush_plain_run(
    va: VirtAddr,
    is_store: bool,
    n: u64,
    cycles: &mut u64,
    complete: &mut Vec<u64>,
    tlb: &mut Tlb,
    hier: &mut MemoryHierarchy,
    pmap: &PageMap,
    tlb_miss_penalty: u64,
    l1: u64,
) {
    let _mem_prof = profile::hot_scope("cache_tlb");
    *cycles += 1;
    if !tlb.access(va.raw()) {
        *cycles += tlb_miss_penalty;
    }
    let pa = pmap.phys_of(va);
    let lat = hier.access(pa);
    if is_store {
        // Stores retire through the store buffer: the pipe does not
        // wait for the cache.
        complete.push(*cycles);
    } else {
        *cycles += lat - l1.min(lat);
        complete.push(*cycles + l1);
    }
    let m = n - 1;
    if m > 0 {
        let _tlb_hit = tlb.access_batched(va.raw(), m);
        let _total = hier.access_batched(pa, m);
        debug_assert!(_tlb_hit, "page resident after the leading access");
        debug_assert_eq!(_total, m * l1, "line L1-resident after the leading access");
        for _ in 0..m {
            *cycles += 1;
            complete.push(if is_store { *cycles } else { *cycles + l1 });
        }
    }
}

/// Replays `trace` on the in-order core, returning cycle and event counts.
///
/// Streams straight off the trace's compact encoding; equivalent to
/// `simulate_inorder_ops(trace.ops(), …)`.
///
/// # Errors
///
/// Currently infallible for the in-order core (both POLB designs are
/// supported); the `Result` mirrors [`crate::ooo::simulate_ooo`].
pub fn simulate_inorder(
    trace: &Trace,
    state: &MachineState,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_inorder_ops(trace.ops(), state, cfg)
}

/// Replays any stream of [`TraceOp`]s on the in-order core.
///
/// The ops are consumed one at a time — the model never materializes the
/// stream, so replay memory is O(ops) only for the per-op completion
/// times (8 B each), not the ops themselves.
///
/// # Errors
///
/// Currently infallible; the `Result` mirrors [`crate::ooo::simulate_ooo`].
pub fn simulate_inorder_ops(
    ops: impl IntoIterator<Item = TraceOp>,
    state: &MachineState,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_inorder_ops_impl(ops, 0, state, cfg, true)
}

/// [`simulate_inorder_ops`] with functional warmup: the first
/// `warmup_ops` ops replay through the full model but are excluded from
/// the returned counters (every counter is snapshotted at the boundary
/// and the measured window reported as the advance since it —
/// [`SimResult::delta_since`]).
///
/// This is how sharded replay keeps its microarchitectural state warm:
/// a shard's stream is prefixed with the ops preceding it in the trace,
/// so the measured window starts with caches/TLB/POLB in (approximately)
/// the state whole-trace replay would have reached, instead of cold.
///
/// # Errors
///
/// Currently infallible; the `Result` mirrors [`crate::ooo::simulate_ooo`].
pub fn simulate_inorder_ops_warm(
    ops: impl IntoIterator<Item = TraceOp>,
    warmup_ops: usize,
    state: &MachineState,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_inorder_ops_impl(ops, warmup_ops, state, cfg, true)
}

/// The actual model; `enable_batching` exists so the equivalence test can
/// replay the same trace with and without run-length batching and require
/// bit-identical results — production callers always pass `true`.
fn simulate_inorder_ops_impl(
    ops: impl IntoIterator<Item = TraceOp>,
    warmup_ops: usize,
    state: &MachineState,
    cfg: &SimConfig,
    enable_batching: bool,
) -> Result<SimResult, SimError> {
    let _replay_span = poat_telemetry::global().span(poat_telemetry::PHASE_TRACE_REPLAY);
    let _replay_prof = profile::scope(poat_telemetry::PHASE_TRACE_REPLAY);
    let mut hier = MemoryHierarchy::new(&cfg.mem);
    let mut tlb = Tlb::new(cfg.mem.dtlb_entries);
    let mut xlate = TranslationUnit::new(cfg.translation, state);
    let pmap = PageMap::new(&state.page_table);
    let l1 = cfg.mem.l1d.latency;
    let hit_extra = cfg.translation.hit_latency_cycles();
    let parallel_design = matches!(cfg.translation.design, poat_core::PolbDesign::Parallel);
    let tdesign = if parallel_design {
        TraceDesign::Parallel
    } else {
        TraceDesign::Pipelined
    };

    let mut ops = ops.into_iter();
    // Completion (value-ready) time of each op, for load-to-use stalls.
    // Grown as the stream is consumed; a dep outside the recorded range
    // (or on a non-memory op) reads as ready-at-zero.
    let mut complete: Vec<u64> = Vec::with_capacity(ops.size_hint().0);

    let mut cycles: u64 = 0;
    let mut instructions: u64 = 0;

    // Run-length batching of plain same-line `Load`/`Store` ops with no
    // dependence: after the run's leading access, the line is L1-resident
    // and its page is TLB-resident (both allocate on miss), so the rest of
    // the run is provably `n - 1` hits — one batched model update instead
    // of `n - 1` scans (`flush_plain_run`). Two degenerate geometries
    // break that residency guarantee and disable batching: a zero-entry
    // TLB (nothing is ever resident), and a single-set L1 with next-line
    // prefetch on (the prefetch triggered by the leading miss can evict
    // the run's own line).
    let batching = enable_batching
        && cfg.mem.dtlb_entries > 0
        && !(cfg.mem.next_line_prefetch && cfg.mem.l1d.sets() <= 1);
    let mut run: Option<(VirtAddr, bool, u64)> = None;
    let mut batch_runs: u64 = 0;
    let mut batch_ops: u64 = 0;
    macro_rules! flush_run {
        () => {
            if let Some((rva, rstore, n)) = run.take() {
                if n > 1 {
                    batch_runs += 1;
                    batch_ops += n - 1;
                }
                flush_plain_run(
                    rva,
                    rstore,
                    n,
                    &mut cycles,
                    &mut complete,
                    &mut tlb,
                    &mut hier,
                    &pmap,
                    cfg.mem.tlb_miss_penalty,
                    l1,
                );
            }
        };
    }

    // Warmup/measure boundary: after `warmup_ops` ops the counters are
    // snapshotted (with any pending batch run flushed first, so the
    // boundary falls between fully retired ops) and the measured window
    // is reported as the advance past the snapshot.
    let mut consumed: usize = 0;
    let mut warm_snapshot: Option<SimResult> = None;
    macro_rules! snapshot {
        () => {
            SimResult {
                cycles,
                instructions,
                translation: xlate.stats(),
                cache: hier.stats(),
                tlb: tlb.stats(),
                store_forwards: 0,
            }
        };
    }

    loop {
        if warmup_ops > 0 && consumed == warmup_ops && warm_snapshot.is_none() {
            flush_run!();
            warm_snapshot = Some(snapshot!());
        }
        // One sampling decision per replayed op, shared by the decode pull
        // below and every hot scope in the body.
        let _op_prof = profile::begin_op();
        let Some(op) = ({
            let _decode_prof = profile::hot_scope("replay_decode");
            ops.next()
        }) else {
            break;
        };
        consumed += 1;
        if batching {
            if let TraceOp::Load { va, dep: None } | TraceOp::Store { va, dep: None } = op {
                let is_store = matches!(op, TraceOp::Store { .. });
                instructions += 1;
                match &mut run {
                    Some((rva, rstore, n))
                        if *rstore == is_store && rva.raw() / 64 == va.raw() / 64 =>
                    {
                        *n += 1;
                    }
                    _ => {
                        flush_run!();
                        run = Some((va, is_store, 1));
                    }
                }
                continue;
            }
            // Anything else (a dep-carrying access, an nvld/nvst, exec,
            // branch, clwb, fence) ends the run before it is replayed, so
            // program order — and every `complete` index — is preserved.
            flush_run!();
        }
        instructions += op.instructions();
        let dep = match op {
            TraceOp::Load { dep, .. }
            | TraceOp::Store { dep, .. }
            | TraceOp::NvLoad { dep, .. }
            | TraceOp::NvStore { dep, .. } => dep,
            _ => None,
        };
        let mut done: u64 = 0;
        match op {
            TraceOp::Exec { n } => cycles += n as u64,
            TraceOp::Branch { mispredicted } => {
                cycles += 1;
                if mispredicted {
                    cycles += cfg.core.branch_misp_penalty;
                }
            }
            TraceOp::Load { va, .. } | TraceOp::NvLoad { va, .. } => {
                cycles += 1;
                // Address generation waits for the producing load.
                if let Some(d) = dep {
                    cycles = cycles.max(complete.get(d as usize).copied().unwrap_or(0));
                }
                let mut value_latency = l1;
                let is_nv = matches!(op, TraceOp::NvLoad { .. });
                if let TraceOp::NvLoad { oid, .. } = op {
                    events::begin_access(
                        EventKind::NvLoad,
                        tdesign,
                        instructions,
                        cycles,
                        oid.pool_raw(),
                    );
                    let _xlate_prof = profile::hot_scope("xlate");
                    let extra = match xlate.translate(oid, va) {
                        TranslateOutcome::Ok { extra_cycles }
                        | TranslateOutcome::Fault { extra_cycles } => extra_cycles,
                    };
                    if extra > hit_extra {
                        // POLB miss: the POT walk stalls the pipe.
                        cycles += extra;
                    } else {
                        // POLB hit: lengthens the load-to-use latency.
                        value_latency += extra;
                    }
                }
                let _mem_prof = profile::hot_scope("cache_tlb");
                // The Parallel POLB holds physical frames, so an nvld
                // hit skips the TLB.
                if !(is_nv && parallel_design) && !tlb.access(va.raw()) {
                    cycles += cfg.mem.tlb_miss_penalty;
                }
                let lat = hier.access(pmap.phys_of(va));
                // Beyond-L1 latency stalls a scalar in-order pipe.
                cycles += lat - l1.min(lat);
                done = cycles + value_latency;
            }
            TraceOp::Store { va, .. } | TraceOp::NvStore { va, .. } => {
                cycles += 1;
                if let Some(d) = dep {
                    cycles = cycles.max(complete.get(d as usize).copied().unwrap_or(0));
                }
                let is_nv = matches!(op, TraceOp::NvStore { .. });
                if let TraceOp::NvStore { oid, .. } = op {
                    events::begin_access(
                        EventKind::NvStore,
                        tdesign,
                        instructions,
                        cycles,
                        oid.pool_raw(),
                    );
                    let _xlate_prof = profile::hot_scope("xlate");
                    let extra = match xlate.translate(oid, va) {
                        TranslateOutcome::Ok { extra_cycles }
                        | TranslateOutcome::Fault { extra_cycles } => extra_cycles,
                    };
                    // Store addresses are buffered; only a POLB *miss*
                    // stalls (the POT walk blocks address generation).
                    cycles += extra.saturating_sub(hit_extra);
                }
                let _mem_prof = profile::hot_scope("cache_tlb");
                if !(is_nv && parallel_design) && !tlb.access(va.raw()) {
                    cycles += cfg.mem.tlb_miss_penalty;
                }
                // Stores retire through the store buffer: the cache is
                // updated but the pipe does not wait for it.
                hier.access(pmap.phys_of(va));
                done = cycles;
            }
            TraceOp::Clwb { va } => {
                cycles += cfg.mem.clwb_latency;
                let _mem_prof = profile::hot_scope("cache_tlb");
                hier.access(pmap.phys_of(va));
            }
            TraceOp::Fence => cycles += 1,
        }
        complete.push(done);
    }
    flush_run!();

    if batch_runs > 0 {
        let registry = poat_telemetry::global();
        registry.counter("sim.batch.runs").add(batch_runs);
        registry.counter("sim.batch.batched_ops").add(batch_ops);
    }

    // The scalar in-order pipe executes in program order; stores
    // complete before any later load issues, so forwarding never
    // shortens a latency here (`store_forwards` stays 0 in `snapshot!`).
    let total = snapshot!();
    Ok(match warm_snapshot {
        Some(at_boundary) => total.delta_since(&at_boundary),
        // A warmup longer than the stream leaves nothing measured.
        None if warmup_ops > 0 => total.delta_since(&total),
        None => total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_core::{PolbDesign, TranslationConfig};
    use poat_pmem::{Runtime, RuntimeConfig, TranslationMode};

    fn tiny_workload(mode: TranslationMode) -> (Trace, MachineState) {
        let mut rt = Runtime::new(RuntimeConfig {
            mode,
            ..RuntimeConfig::default()
        });
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        rt.take_trace();
        for i in 0..100 {
            let r = rt.deref(oid, None).unwrap();
            rt.write_u64_at(&r, (i % 8) * 8, i as u64).unwrap();
            let _ = rt.read_u64_at(&r, (i % 8) * 8).unwrap();
            rt.exec(5);
        }
        (rt.take_trace(), rt.machine_state())
    }

    #[test]
    fn exec_only_trace_is_one_ipc() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let mut t = Trace::new();
        t.push(TraceOp::Exec { n: 1000 });
        let r = simulate_inorder(&t, &state, &SimConfig::default()).unwrap();
        assert_eq!(r.cycles, 1000);
        assert_eq!(r.instructions, 1000);
        assert_eq!(r.ipc(), 1.0);
    }

    #[test]
    fn mispredicted_branch_costs_penalty() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let mut t = Trace::new();
        t.push(TraceOp::Branch {
            mispredicted: false,
        });
        t.push(TraceOp::Branch { mispredicted: true });
        let r = simulate_inorder(&t, &state, &SimConfig::default()).unwrap();
        assert_eq!(r.cycles, 1 + 1 + 8);
    }

    #[test]
    fn dependent_loads_stall_independent_do_not() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let base = 0x2000_0000_0000u64;
        // Warm a line, then measure same-line loads.
        let mut indep = Trace::new();
        indep.push(TraceOp::Load {
            va: VirtAddr::new(base),
            dep: None,
        });
        for _ in 0..10 {
            indep.push(TraceOp::Load {
                va: VirtAddr::new(base),
                dep: None,
            });
        }
        let r1 = simulate_inorder(&indep, &state, &SimConfig::default()).unwrap();

        let mut chain = Trace::new();
        let mut prev = chain.push(TraceOp::Load {
            va: VirtAddr::new(base),
            dep: None,
        });
        for _ in 0..10 {
            prev = chain.push(TraceOp::Load {
                va: VirtAddr::new(base),
                dep: Some(prev),
            });
        }
        let r2 = simulate_inorder(&chain, &state, &SimConfig::default()).unwrap();
        assert!(
            r2.cycles > r1.cycles + 15,
            "chained L1 hits pay load-to-use: {} vs {}",
            r2.cycles,
            r1.cycles
        );
    }

    #[test]
    fn hardware_translation_beats_software_here() {
        let (base_trace, base_state) = tiny_workload(TranslationMode::Software);
        let (opt_trace, opt_state) = tiny_workload(TranslationMode::Hardware);
        let cfg = SimConfig::default();
        let base = simulate_inorder(&base_trace, &base_state, &cfg).unwrap();
        let opt = simulate_inorder(&opt_trace, &opt_state, &cfg).unwrap();
        assert!(
            opt.cycles < base.cycles,
            "OPT {} !< BASE {}",
            opt.cycles,
            base.cycles
        );
        assert!(opt.instructions < base.instructions);
        assert!(opt.translation.polb.lookups() > 0);
        assert_eq!(base.translation.polb.lookups(), 0);
    }

    #[test]
    fn parallel_design_runs_in_order() {
        let (trace, state) = tiny_workload(TranslationMode::Hardware);
        let cfg = SimConfig::with_translation(TranslationConfig::for_design(PolbDesign::Parallel));
        let r = simulate_inorder(&trace, &state, &cfg).unwrap();
        assert!(r.cycles > 0);
        assert!(r.translation.polb.hits > 0);
    }

    #[test]
    fn ideal_translation_is_fastest() {
        let (trace, state) = tiny_workload(TranslationMode::Hardware);
        let normal = simulate_inorder(&trace, &state, &SimConfig::default()).unwrap();
        let ideal_cfg = SimConfig::with_translation(TranslationConfig::default().idealized());
        let ideal = simulate_inorder(&trace, &state, &ideal_cfg).unwrap();
        assert!(ideal.cycles <= normal.cycles);
    }

    #[test]
    fn polb_hit_latency_hurts_pointer_chases_more_than_scans() {
        // Build two nvld traces over a warmed pool page: one chained, one
        // independent. The Pipelined hit latency should cost the chain
        // more.
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 512).unwrap();
        let r = rt.deref(oid, None).unwrap();
        rt.take_trace();
        let (_, mut dep) = rt.read_u64_at(&r, 0).unwrap();
        for i in 1..50u32 {
            let rr = rt.deref(oid, Some(dep)).unwrap();
            let (_, d) = rt.read_u64_at(&rr, (i % 32) * 8).unwrap();
            dep = d;
        }
        let chain = rt.take_trace();
        for i in 0..50u32 {
            let rr = rt.deref(oid, None).unwrap();
            rt.read_u64_at(&rr, (i % 32) * 8).unwrap();
        }
        let indep = rt.take_trace();
        let state = rt.machine_state();
        let cfg = SimConfig::default();
        let ideal_cfg = SimConfig::with_translation(TranslationConfig::default().idealized());
        let chain_cost = simulate_inorder(&chain, &state, &cfg).unwrap().cycles as i64
            - simulate_inorder(&chain, &state, &ideal_cfg).unwrap().cycles as i64;
        let indep_cost = simulate_inorder(&indep, &state, &cfg).unwrap().cycles as i64
            - simulate_inorder(&indep, &state, &ideal_cfg).unwrap().cycles as i64;
        assert!(
            chain_cost > indep_cost,
            "chain {chain_cost} vs indep {indep_cost}"
        );
    }

    #[test]
    fn clwb_charges_fixed_latency() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let mut t = Trace::new();
        t.push(TraceOp::Clwb {
            va: VirtAddr::new(0x2000_0000_0000),
        });
        t.push(TraceOp::Fence);
        let r = simulate_inorder(&t, &state, &SimConfig::default()).unwrap();
        assert_eq!(r.cycles, 100 + 1);
    }

    #[test]
    fn run_length_batching_is_cycle_exact() {
        // Replaying with run-length batching on must be bit-identical to
        // replaying with it off, across synthetic run-heavy traces and a
        // real software-translation workload (whose translation-table
        // lookups are exactly the plain same-line load runs the batcher
        // targets). Dependencies that reach *into* a batched run check
        // the per-op completion times the flush reconstructs.
        let (sw_trace, sw_state) = tiny_workload(TranslationMode::Software);

        let base = 0x4000_0000_0000u64;
        let mut synth = Trace::new();
        let mut last = None;
        for i in 0..200u64 {
            let line = base + (i / 7) * 64;
            let va = VirtAddr::new(line + (i % 8) * 8);
            last = Some(match i % 11 {
                0..=4 => synth.push(TraceOp::Load { va, dep: None }),
                5 | 6 => synth.push(TraceOp::Store { va, dep: None }),
                7 => synth.push(TraceOp::Load { va, dep: last }),
                8 => synth.push(TraceOp::Exec { n: 3 }),
                9 => synth.push(TraceOp::Branch {
                    mispredicted: i % 22 == 9,
                }),
                _ => synth.push(TraceOp::Fence),
            });
        }
        // A long pure run, then a dependent load reaching into it.
        let mut runs = Trace::new();
        let va = VirtAddr::new(base);
        let mut mid = 0;
        for i in 0..50 {
            let id = runs.push(TraceOp::Load { va, dep: None });
            if i == 25 {
                mid = id;
            }
        }
        runs.push(TraceOp::Load {
            va: VirtAddr::new(base + 8192),
            dep: Some(mid),
        });
        for _ in 0..50 {
            runs.push(TraceOp::Store { va, dep: None });
        }

        let cfg = SimConfig::default();
        let mut prefetch_cfg = SimConfig::default();
        prefetch_cfg.mem.next_line_prefetch = true;
        for (trace, state) in [
            (&sw_trace, &sw_state),
            (&synth, &sw_state),
            (&runs, &sw_state),
        ] {
            for cfg in [&cfg, &prefetch_cfg] {
                let batched = simulate_inorder_ops_impl(trace.ops(), 0, state, cfg, true).unwrap();
                let plain = simulate_inorder_ops_impl(trace.ops(), 0, state, cfg, false).unwrap();
                assert_eq!(batched, plain, "batching changed the model");
            }
        }
    }

    #[test]
    fn warm_replay_equals_whole_minus_prefix() {
        // The in-order core is a pure fold over ops, so replaying the
        // whole trace with a warmup snapshot at op k must equal the
        // whole-trace counters minus a standalone replay of ops[..k] —
        // the identity `delta_since` relies on.
        let (trace, state) = tiny_workload(TranslationMode::Hardware);
        let ops: Vec<TraceOp> = trace.ops().collect();
        let cfg = SimConfig::default();
        let k = ops.len() / 3;
        let whole = simulate_inorder_ops(ops.iter().copied(), &state, &cfg).unwrap();
        let prefix = simulate_inorder_ops(ops[..k].iter().copied(), &state, &cfg).unwrap();
        let warm = simulate_inorder_ops_warm(ops.iter().copied(), k, &state, &cfg).unwrap();
        assert_eq!(warm, whole.delta_since(&prefix));
        // Zero warmup is the plain replay; all-warmup measures nothing.
        let unwarmed = simulate_inorder_ops_warm(ops.iter().copied(), 0, &state, &cfg).unwrap();
        assert_eq!(unwarmed, whole);
        let empty =
            simulate_inorder_ops_warm(ops.iter().copied(), ops.len(), &state, &cfg).unwrap();
        assert_eq!(empty, SimResult::default());
    }

    #[test]
    fn repeated_same_line_loads_hit_l1_without_stall() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let mut t = Trace::new();
        let va = VirtAddr::new(0x3000_0000_0000);
        for _ in 0..10 {
            t.push(TraceOp::Load { va, dep: None });
        }
        let r = simulate_inorder(&t, &state, &SimConfig::default()).unwrap();
        // First access: TLB miss (30) + full memory miss (158-3). Rest: 1 cycle.
        assert_eq!(r.cycles, (1 + 30 + 155) + 9);
    }
}

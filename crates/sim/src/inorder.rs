//! The in-order core model (paper §4.5).
//!
//! A five-stage scalar pipeline at one instruction per cycle with a
//! load-to-use stall model:
//!
//! * an L1 hit (3 cycles) is fully pipelined — it stalls the machine only
//!   if a *dependent* operation needs the value before it is ready (the
//!   trace carries those dependence edges);
//! * anything deeper than L1 stalls the pipe for the residual latency
//!   (a scalar in-order core has no memory-level parallelism);
//! * TLB misses charge the fixed page-walk penalty;
//! * `clwb` pessimistically stalls for its fixed completion latency
//!   (§5.1).
//!
//! `nvld`/`nvst` first pass the POLB:
//!
//! * *Pipelined*: the POLB access serializes in front of the TLB + L1D —
//!   it lengthens the load-to-use latency of every `nvld` (pointer chases
//!   feel it; independent work hides it), and a miss stalls the pipe for
//!   the POT walk.
//! * *Parallel*: the POLB is searched in parallel with the L1D — a hit
//!   adds nothing (and skips the TLB, since the POLB holds physical
//!   frames); a miss stalls for the combined POT + page-table walk.

use poat_core::VirtAddr;
use poat_nvm::PageTable;
use poat_pmem::{MachineState, Trace, TraceOp};
use poat_telemetry::events::{self, EventKind, TraceDesign};
use poat_telemetry::profile;

use crate::cache::MemoryHierarchy;
use crate::config::SimConfig;
use crate::result::{SimError, SimResult};
use crate::tlb::Tlb;
use crate::xlate::{TranslateOutcome, TranslationUnit};

/// Addresses with no page-table mapping (the runtime's volatile globals and
/// translation table) are treated as identity-mapped DRAM, offset into a
/// distinct physical region so they never alias pool frames.
pub(crate) fn phys_of(pt: &PageTable, va: VirtAddr) -> u64 {
    match pt.translate(va) {
        Some(pa) => pa.raw(),
        None => va.raw() | (1 << 47),
    }
}

/// Wraps a replayed op stream so each pull — where the compact trace's
/// LEB128 columns are actually parsed — is attributed to the
/// `replay_decode` profile phase. Costs two relaxed atomic loads per op
/// when profiling is off.
pub(crate) struct DecodeProfiled<I> {
    pub(crate) inner: I,
}

impl<I: Iterator<Item = TraceOp>> Iterator for DecodeProfiled<I> {
    type Item = TraceOp;

    #[inline]
    fn next(&mut self) -> Option<TraceOp> {
        let _op = profile::begin_op();
        let _decode_prof = profile::hot_scope("replay_decode");
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Replays `trace` on the in-order core, returning cycle and event counts.
///
/// Streams straight off the trace's compact encoding; equivalent to
/// `simulate_inorder_ops(trace.ops(), …)`.
///
/// # Errors
///
/// Currently infallible for the in-order core (both POLB designs are
/// supported); the `Result` mirrors [`crate::ooo::simulate_ooo`].
pub fn simulate_inorder(
    trace: &Trace,
    state: &MachineState,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_inorder_ops(trace.ops(), state, cfg)
}

/// Replays any stream of [`TraceOp`]s on the in-order core.
///
/// The ops are consumed one at a time — the model never materializes the
/// stream, so replay memory is O(ops) only for the per-op completion
/// times (8 B each), not the ops themselves.
///
/// # Errors
///
/// Currently infallible; the `Result` mirrors [`crate::ooo::simulate_ooo`].
pub fn simulate_inorder_ops(
    ops: impl IntoIterator<Item = TraceOp>,
    state: &MachineState,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    let _replay_span = poat_telemetry::global().span(poat_telemetry::PHASE_TRACE_REPLAY);
    let _replay_prof = profile::scope(poat_telemetry::PHASE_TRACE_REPLAY);
    let mut hier = MemoryHierarchy::new(&cfg.mem);
    let mut tlb = Tlb::new(cfg.mem.dtlb_entries);
    let mut xlate = TranslationUnit::new(cfg.translation, state);
    let pt = &state.page_table;
    let l1 = cfg.mem.l1d.latency;
    let hit_extra = cfg.translation.hit_latency_cycles();
    let parallel_design = matches!(cfg.translation.design, poat_core::PolbDesign::Parallel);
    let tdesign = if parallel_design {
        TraceDesign::Parallel
    } else {
        TraceDesign::Pipelined
    };

    let ops = DecodeProfiled {
        inner: ops.into_iter(),
    };
    // Completion (value-ready) time of each op, for load-to-use stalls.
    // Grown as the stream is consumed; a dep outside the recorded range
    // (or on a non-memory op) reads as ready-at-zero.
    let mut complete: Vec<u64> = Vec::with_capacity(ops.size_hint().0);

    let mut cycles: u64 = 0;
    let mut instructions: u64 = 0;

    for op in ops {
        let _op_prof = profile::begin_op();
        instructions += op.instructions();
        let dep = match op {
            TraceOp::Load { dep, .. }
            | TraceOp::Store { dep, .. }
            | TraceOp::NvLoad { dep, .. }
            | TraceOp::NvStore { dep, .. } => dep,
            _ => None,
        };
        let mut done: u64 = 0;
        match op {
            TraceOp::Exec { n } => cycles += n as u64,
            TraceOp::Branch { mispredicted } => {
                cycles += 1;
                if mispredicted {
                    cycles += cfg.core.branch_misp_penalty;
                }
            }
            TraceOp::Load { va, .. } | TraceOp::NvLoad { va, .. } => {
                cycles += 1;
                // Address generation waits for the producing load.
                if let Some(d) = dep {
                    cycles = cycles.max(complete.get(d as usize).copied().unwrap_or(0));
                }
                let mut value_latency = l1;
                let is_nv = matches!(op, TraceOp::NvLoad { .. });
                if let TraceOp::NvLoad { oid, .. } = op {
                    events::begin_access(
                        EventKind::NvLoad,
                        tdesign,
                        instructions,
                        cycles,
                        oid.pool_raw(),
                    );
                    let _xlate_prof = profile::hot_scope("xlate");
                    let extra = match xlate.translate(oid, va) {
                        TranslateOutcome::Ok { extra_cycles }
                        | TranslateOutcome::Fault { extra_cycles } => extra_cycles,
                    };
                    if extra > hit_extra {
                        // POLB miss: the POT walk stalls the pipe.
                        cycles += extra;
                    } else {
                        // POLB hit: lengthens the load-to-use latency.
                        value_latency += extra;
                    }
                }
                let _mem_prof = profile::hot_scope("cache_tlb");
                // The Parallel POLB holds physical frames, so an nvld
                // hit skips the TLB.
                if !(is_nv && parallel_design) && !tlb.access(va.raw()) {
                    cycles += cfg.mem.tlb_miss_penalty;
                }
                let lat = hier.access(phys_of(pt, va));
                // Beyond-L1 latency stalls a scalar in-order pipe.
                cycles += lat - l1.min(lat);
                done = cycles + value_latency;
            }
            TraceOp::Store { va, .. } | TraceOp::NvStore { va, .. } => {
                cycles += 1;
                if let Some(d) = dep {
                    cycles = cycles.max(complete.get(d as usize).copied().unwrap_or(0));
                }
                let is_nv = matches!(op, TraceOp::NvStore { .. });
                if let TraceOp::NvStore { oid, .. } = op {
                    events::begin_access(
                        EventKind::NvStore,
                        tdesign,
                        instructions,
                        cycles,
                        oid.pool_raw(),
                    );
                    let _xlate_prof = profile::hot_scope("xlate");
                    let extra = match xlate.translate(oid, va) {
                        TranslateOutcome::Ok { extra_cycles }
                        | TranslateOutcome::Fault { extra_cycles } => extra_cycles,
                    };
                    // Store addresses are buffered; only a POLB *miss*
                    // stalls (the POT walk blocks address generation).
                    cycles += extra.saturating_sub(hit_extra);
                }
                let _mem_prof = profile::hot_scope("cache_tlb");
                if !(is_nv && parallel_design) && !tlb.access(va.raw()) {
                    cycles += cfg.mem.tlb_miss_penalty;
                }
                // Stores retire through the store buffer: the cache is
                // updated but the pipe does not wait for it.
                hier.access(phys_of(pt, va));
                done = cycles;
            }
            TraceOp::Clwb { va } => {
                cycles += cfg.mem.clwb_latency;
                let _mem_prof = profile::hot_scope("cache_tlb");
                hier.access(phys_of(pt, va));
            }
            TraceOp::Fence => cycles += 1,
        }
        complete.push(done);
    }

    Ok(SimResult {
        cycles,
        instructions,
        translation: xlate.stats(),
        cache: hier.stats(),
        tlb: tlb.stats(),
        // The scalar in-order pipe executes in program order; stores
        // complete before any later load issues, so forwarding never
        // shortens a latency here.
        store_forwards: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_core::{PolbDesign, TranslationConfig};
    use poat_pmem::{Runtime, RuntimeConfig, TranslationMode};

    fn tiny_workload(mode: TranslationMode) -> (Trace, MachineState) {
        let mut rt = Runtime::new(RuntimeConfig {
            mode,
            ..RuntimeConfig::default()
        });
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 64).unwrap();
        rt.take_trace();
        for i in 0..100 {
            let r = rt.deref(oid, None).unwrap();
            rt.write_u64_at(&r, (i % 8) * 8, i as u64).unwrap();
            let _ = rt.read_u64_at(&r, (i % 8) * 8).unwrap();
            rt.exec(5);
        }
        (rt.take_trace(), rt.machine_state())
    }

    #[test]
    fn exec_only_trace_is_one_ipc() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let mut t = Trace::new();
        t.push(TraceOp::Exec { n: 1000 });
        let r = simulate_inorder(&t, &state, &SimConfig::default()).unwrap();
        assert_eq!(r.cycles, 1000);
        assert_eq!(r.instructions, 1000);
        assert_eq!(r.ipc(), 1.0);
    }

    #[test]
    fn mispredicted_branch_costs_penalty() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let mut t = Trace::new();
        t.push(TraceOp::Branch {
            mispredicted: false,
        });
        t.push(TraceOp::Branch { mispredicted: true });
        let r = simulate_inorder(&t, &state, &SimConfig::default()).unwrap();
        assert_eq!(r.cycles, 1 + 1 + 8);
    }

    #[test]
    fn dependent_loads_stall_independent_do_not() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let base = 0x2000_0000_0000u64;
        // Warm a line, then measure same-line loads.
        let mut indep = Trace::new();
        indep.push(TraceOp::Load {
            va: VirtAddr::new(base),
            dep: None,
        });
        for _ in 0..10 {
            indep.push(TraceOp::Load {
                va: VirtAddr::new(base),
                dep: None,
            });
        }
        let r1 = simulate_inorder(&indep, &state, &SimConfig::default()).unwrap();

        let mut chain = Trace::new();
        let mut prev = chain.push(TraceOp::Load {
            va: VirtAddr::new(base),
            dep: None,
        });
        for _ in 0..10 {
            prev = chain.push(TraceOp::Load {
                va: VirtAddr::new(base),
                dep: Some(prev),
            });
        }
        let r2 = simulate_inorder(&chain, &state, &SimConfig::default()).unwrap();
        assert!(
            r2.cycles > r1.cycles + 15,
            "chained L1 hits pay load-to-use: {} vs {}",
            r2.cycles,
            r1.cycles
        );
    }

    #[test]
    fn hardware_translation_beats_software_here() {
        let (base_trace, base_state) = tiny_workload(TranslationMode::Software);
        let (opt_trace, opt_state) = tiny_workload(TranslationMode::Hardware);
        let cfg = SimConfig::default();
        let base = simulate_inorder(&base_trace, &base_state, &cfg).unwrap();
        let opt = simulate_inorder(&opt_trace, &opt_state, &cfg).unwrap();
        assert!(
            opt.cycles < base.cycles,
            "OPT {} !< BASE {}",
            opt.cycles,
            base.cycles
        );
        assert!(opt.instructions < base.instructions);
        assert!(opt.translation.polb.lookups() > 0);
        assert_eq!(base.translation.polb.lookups(), 0);
    }

    #[test]
    fn parallel_design_runs_in_order() {
        let (trace, state) = tiny_workload(TranslationMode::Hardware);
        let cfg = SimConfig::with_translation(TranslationConfig::for_design(PolbDesign::Parallel));
        let r = simulate_inorder(&trace, &state, &cfg).unwrap();
        assert!(r.cycles > 0);
        assert!(r.translation.polb.hits > 0);
    }

    #[test]
    fn ideal_translation_is_fastest() {
        let (trace, state) = tiny_workload(TranslationMode::Hardware);
        let normal = simulate_inorder(&trace, &state, &SimConfig::default()).unwrap();
        let ideal_cfg = SimConfig::with_translation(TranslationConfig::default().idealized());
        let ideal = simulate_inorder(&trace, &state, &ideal_cfg).unwrap();
        assert!(ideal.cycles <= normal.cycles);
    }

    #[test]
    fn polb_hit_latency_hurts_pointer_chases_more_than_scans() {
        // Build two nvld traces over a warmed pool page: one chained, one
        // independent. The Pipelined hit latency should cost the chain
        // more.
        let mut rt = Runtime::new(RuntimeConfig::opt());
        let pool = rt.pool_create("p", 1 << 16).unwrap();
        let oid = rt.pmalloc(pool, 512).unwrap();
        let r = rt.deref(oid, None).unwrap();
        rt.take_trace();
        let (_, mut dep) = rt.read_u64_at(&r, 0).unwrap();
        for i in 1..50u32 {
            let rr = rt.deref(oid, Some(dep)).unwrap();
            let (_, d) = rt.read_u64_at(&rr, (i % 32) * 8).unwrap();
            dep = d;
        }
        let chain = rt.take_trace();
        for i in 0..50u32 {
            let rr = rt.deref(oid, None).unwrap();
            rt.read_u64_at(&rr, (i % 32) * 8).unwrap();
        }
        let indep = rt.take_trace();
        let state = rt.machine_state();
        let cfg = SimConfig::default();
        let ideal_cfg = SimConfig::with_translation(TranslationConfig::default().idealized());
        let chain_cost = simulate_inorder(&chain, &state, &cfg).unwrap().cycles as i64
            - simulate_inorder(&chain, &state, &ideal_cfg).unwrap().cycles as i64;
        let indep_cost = simulate_inorder(&indep, &state, &cfg).unwrap().cycles as i64
            - simulate_inorder(&indep, &state, &ideal_cfg).unwrap().cycles as i64;
        assert!(
            chain_cost > indep_cost,
            "chain {chain_cost} vs indep {indep_cost}"
        );
    }

    #[test]
    fn clwb_charges_fixed_latency() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let mut t = Trace::new();
        t.push(TraceOp::Clwb {
            va: VirtAddr::new(0x2000_0000_0000),
        });
        t.push(TraceOp::Fence);
        let r = simulate_inorder(&t, &state, &SimConfig::default()).unwrap();
        assert_eq!(r.cycles, 100 + 1);
    }

    #[test]
    fn repeated_same_line_loads_hit_l1_without_stall() {
        let (_, state) = tiny_workload(TranslationMode::Hardware);
        let mut t = Trace::new();
        let va = VirtAddr::new(0x3000_0000_0000);
        for _ in 0..10 {
            t.push(TraceOp::Load { va, dep: None });
        }
        let r = simulate_inorder(&t, &state, &SimConfig::default()).unwrap();
        // First access: TLB miss (30) + full memory miss (158-3). Rest: 1 cycle.
        assert_eq!(r.cycles, (1 + 30 + 155) + 9);
    }
}

//! Data TLB model: fully associative, true-LRU over 4 KB page numbers.

/// Hit/miss counters for the TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations served from the TLB.
    pub hits: u64,
    /// Translations that required a page walk.
    pub misses: u64,
}

/// A fully associative D-TLB (Table 4: 64 entries, 30-cycle miss penalty
/// charged by the core models).
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, last use)
    capacity: usize,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` slots.
    pub fn new(entries: usize) -> Self {
        Tlb {
            entries: Vec::with_capacity(entries),
            capacity: entries,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Looks up the page containing virtual address `va`; returns whether
    /// the translation hit, installing it on a miss.
    pub fn access(&mut self, va: u64) -> bool {
        self.tick += 1;
        let page = va >> 12;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((page, tick));
        } else {
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|(_, t)| *t)
                .expect("invariant: capacity > 0, checked in new()");
            *victim = (page, tick);
        }
        false
    }

    /// Counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.access(0x1000));
        assert!(tlb.access(0x1FFF));
        assert!(!tlb.access(0x2000));
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.access(0x1000);
        tlb.access(0x2000);
        tlb.access(0x1000); // refresh
        tlb.access(0x3000); // evicts 0x2000
        assert!(tlb.access(0x1000));
        assert!(!tlb.access(0x2000));
    }

    #[test]
    fn stats_accumulate() {
        let mut tlb = Tlb::new(2);
        tlb.access(0x1000);
        tlb.access(0x1100);
        assert_eq!(tlb.stats(), TlbStats { hits: 1, misses: 1 });
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut tlb = Tlb::new(0);
        tlb.access(0x1000);
        assert!(!tlb.access(0x1000));
    }
}

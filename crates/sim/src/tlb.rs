//! Data TLB model: fully associative, true-LRU over 4 KB page numbers.
//!
//! `access` runs once per replayed memory op, so its host cost bounds
//! replay throughput: the `memory/tlb_*` benchmarks pin both the MRU
//! entry-hint hit path and the full-scan miss path in the committed
//! `BENCH_<n>.json` baseline (docs/BENCHMARKS.md).

/// Hit/miss counters for the TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations served from the TLB.
    pub hits: u64,
    /// Translations that required a page walk.
    pub misses: u64,
}

/// A fully associative D-TLB (Table 4: 64 entries, 30-cycle miss penalty
/// charged by the core models).
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, last use)
    capacity: usize,
    tick: u64,
    stats: TlbStats,
    /// Index of the most recently touched entry. Purely a lookup
    /// accelerator: memory accesses repeat pages heavily, so the common
    /// case resolves without scanning the whole (64-entry) array. Any
    /// stale value is harmless — the slow path below is the authority.
    mru: usize,
}

impl Tlb {
    /// Creates a TLB with `entries` slots.
    pub fn new(entries: usize) -> Self {
        Tlb {
            entries: Vec::with_capacity(entries),
            capacity: entries,
            tick: 0,
            stats: TlbStats::default(),
            mru: 0,
        }
    }

    /// Looks up the page containing virtual address `va`; returns whether
    /// the translation hit, installing it on a miss.
    pub fn access(&mut self, va: u64) -> bool {
        self.tick += 1;
        let page = va >> 12;
        let tick = self.tick;
        // MRU fast path: same page as the previous access.
        if let Some(e) = self.entries.get_mut(self.mru) {
            if e.0 == page {
                e.1 = tick;
                self.stats.hits += 1;
                return true;
            }
        }
        if let Some((i, e)) = self
            .entries
            .iter_mut()
            .enumerate()
            .find(|(_, (p, _))| *p == page)
        {
            e.1 = tick;
            self.mru = i;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((page, tick));
            self.mru = self.entries.len() - 1;
        } else {
            let (i, victim) = self
                .entries
                .iter_mut()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .expect("invariant: capacity > 0, checked in new()");
            *victim = (page, tick);
            self.mru = i;
        }
        false
    }

    /// Applies `n` additional hits to the page containing `va`, as if
    /// [`Tlb::access`] had been called `n` times in a row — the
    /// run-length extension of the MRU fast path: a batch of same-page
    /// ops costs one model update instead of `n`.
    ///
    /// Equivalence to `n` sequential MRU hits: each would advance the
    /// clock by one and refresh the same entry's last-use to the new
    /// clock, touching nothing else, so `tick += n` + one final
    /// last-use write + `hits += n` is state-identical. If the page is
    /// (unexpectedly) not resident, this falls back to `n` sequential
    /// accesses, so the batched call is *always* equivalent.
    pub fn access_batched(&mut self, va: u64, n: u64) -> bool {
        if n == 0 || self.hit_batched(va, n) {
            return true;
        }
        let mut all_hit = true;
        for _ in 0..n {
            all_hit &= self.access(va);
        }
        all_hit
    }

    /// Applies `n` hits to the page containing `va` in one update
    /// **iff** the page is resident, returning whether it was. On
    /// `false` the TLB is left completely untouched (no clock advance,
    /// no counters), so a caller can probe-and-commit: try the batch,
    /// and fall back to exact sequential accesses without having
    /// perturbed any state.
    pub fn hit_batched(&mut self, va: u64, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let page = va >> 12;
        // Fast path: the MRU hint (or a full scan) finds the page.
        let hit_at = if matches!(self.entries.get(self.mru), Some((p, _)) if *p == page) {
            Some(self.mru)
        } else {
            self.entries.iter().position(|(p, _)| *p == page)
        };
        match hit_at {
            Some(i) => {
                self.tick += n;
                self.entries[i].1 = self.tick;
                self.mru = i;
                self.stats.hits += n;
                true
            }
            None => false,
        }
    }

    /// Counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.access(0x1000));
        assert!(tlb.access(0x1FFF));
        assert!(!tlb.access(0x2000));
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.access(0x1000);
        tlb.access(0x2000);
        tlb.access(0x1000); // refresh
        tlb.access(0x3000); // evicts 0x2000
        assert!(tlb.access(0x1000));
        assert!(!tlb.access(0x2000));
    }

    #[test]
    fn stats_accumulate() {
        let mut tlb = Tlb::new(2);
        tlb.access(0x1000);
        tlb.access(0x1100);
        assert_eq!(tlb.stats(), TlbStats { hits: 1, misses: 1 });
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut tlb = Tlb::new(0);
        tlb.access(0x1000);
        assert!(!tlb.access(0x1000));
    }

    /// Plain linear-scan true-LRU, with no MRU fast path: the semantics
    /// `Tlb` must preserve.
    struct ReferenceTlb {
        entries: Vec<(u64, u64)>,
        capacity: usize,
        tick: u64,
        stats: TlbStats,
    }

    impl ReferenceTlb {
        fn access(&mut self, va: u64) -> bool {
            self.tick += 1;
            let page = va >> 12;
            let tick = self.tick;
            if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
                e.1 = tick;
                self.stats.hits += 1;
                return true;
            }
            self.stats.misses += 1;
            if self.entries.len() < self.capacity {
                self.entries.push((page, tick));
            } else {
                *self.entries.iter_mut().min_by_key(|(_, t)| *t).unwrap() = (page, tick);
            }
            false
        }
    }

    #[test]
    fn mru_fast_path_matches_reference_lru() {
        // A page-local access pattern with periodic strides and revisits:
        // exercises the fast path, fills, LRU evictions, and re-touches
        // of evicted pages. Every per-access outcome must match.
        let mut tlb = Tlb::new(8);
        let mut reference = ReferenceTlb {
            entries: Vec::new(),
            capacity: 8,
            tick: 0,
            stats: TlbStats::default(),
        };
        let mut x: u64 = 0x9E37;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let va = match i % 4 {
                0 | 1 => (i / 7) * 4096 + (x % 4096), // page-local runs
                2 => (x % 16) * 4096,                 // 16 hot pages over 8 slots
                _ => x % (1 << 30),                   // scattered
            };
            assert_eq!(tlb.access(va), reference.access(va), "access {i} diverged");
        }
        assert_eq!(tlb.stats(), reference.stats);
        assert!(reference.stats.hits > 0 && reference.stats.misses > 8);
    }

    #[test]
    fn batched_hits_match_sequential_accesses() {
        // Interleave batched and sequential updates against the
        // reference model: run-length batching must be state-identical
        // to n sequential accesses, including when the batched page is
        // not resident (the fallback path).
        let mut tlb = Tlb::new(8);
        let mut reference = ReferenceTlb {
            entries: Vec::new(),
            capacity: 8,
            tick: 0,
            stats: TlbStats::default(),
        };
        let mut x: u64 = 0xB5AD;
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let va = (x % 16) * 4096 + (x % 4096);
            let n = x % 7;
            let got = tlb.access_batched(va, n);
            let mut want = true;
            for _ in 0..n {
                want &= reference.access(va);
            }
            if n > 0 {
                assert_eq!(got, want, "batch {i} diverged");
            }
            // A plain access in between keeps the interleaving honest.
            assert_eq!(tlb.access(va ^ 0x7000), reference.access(va ^ 0x7000));
        }
        assert_eq!(tlb.stats(), reference.stats);
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Crash-point sweep over the catalog's append path — the acceptance
//! criterion for the serve tentpole: a crash at *every* persist
//! boundary of every event append, clean and torn, leaves the catalog
//! openable with all previously committed events intact.
//!
//! The catalog stores events through the same `poat-pmem`-backed
//! medium as the run ledger, so the existing fault-injection engine
//! enumerates and crashes its `clwb`/`fence` boundaries unchanged.
//! Contract swept:
//!
//! * every event whose `append_event` returned before the crash is
//!   recovered, and the job table folds to the same rows;
//! * at most the one in-flight event beyond that may surface;
//! * the scan never serves a torn tail.

use std::collections::BTreeMap;

use poat_catalog::{Catalog, CatalogRecord, JobSpec, JobStatus, LedgerError};
use poat_ledger::PmemMedium;
use poat_pmem::faultpoint::enumerate_crash_points;
use poat_pmem::{FaultPlan, PmemError, Runtime, RuntimeConfig};

const CAP: u64 = 1 << 16;
/// Events appended by the workload: submit ×2, complete, fail.
const EVENTS: u64 = 4;

fn build() -> Runtime {
    Runtime::new(RuntimeConfig {
        aslr_seed: 7,
        ..RuntimeConfig::default()
    })
}

fn spec(workload: &str) -> JobSpec {
    JobSpec {
        workload: workload.into(),
        design: "pipelined".into(),
        scale: "quick".into(),
    }
}

fn events() -> Vec<CatalogRecord> {
    let mut metrics = BTreeMap::new();
    metrics.insert("sim.result.cycles".to_string(), 123_456);
    metrics.insert("sim.result.polb_misses".to_string(), 42);
    vec![
        CatalogRecord::submitted(1, spec("LL:ALL"), 1_700_000_000),
        CatalogRecord::submitted(2, spec("BST:RANDOM"), 1_700_000_001),
        CatalogRecord::completed(1, spec("LL:ALL"), 1_700_000_005, 5_000_000, metrics),
        CatalogRecord::failed(2, spec("BST:RANDOM"), 1_700_000_006, "sweep error".into()),
    ]
}

fn to_pmem(e: LedgerError) -> PmemError {
    match e {
        LedgerError::Pmem(p) => p,
        other => panic!("non-pmem catalog error during sweep: {other}"),
    }
}

fn setup(rt: &mut Runtime) -> Result<poat_core::ObjectId, PmemError> {
    let pool = rt.pool_create("cat", 1 << 20)?;
    rt.pmalloc(pool, CAP)
}

/// Runs setup + the event appends, reporting how many appends fully
/// returned before a crash (if any) and the object id once known.
fn run_workload(rt: &mut Runtime) -> (Option<poat_core::ObjectId>, u64, Result<(), PmemError>) {
    let oid = match setup(rt) {
        Ok(oid) => oid,
        Err(e) => return (None, 0, Err(e)),
    };
    let mut completed = 0;
    let result = (|| {
        let medium = PmemMedium::attach(rt, oid, CAP);
        let mut cat = Catalog::open(medium).map_err(to_pmem)?;
        for ev in events() {
            cat.append_event(ev).map_err(to_pmem)?;
            completed += 1;
        }
        Ok(())
    })();
    (Some(oid), completed, result)
}

/// Reopens the catalog on a recovered runtime and checks the recovery
/// contract against the number of appends known complete.
fn check_recovered(rt: &mut Runtime, oid: poat_core::ObjectId, completed: u64, ctx: &str) {
    let medium = PmemMedium::attach(rt, oid, CAP);
    let cat = Catalog::open(medium).unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
    let scan = cat.scan_report();
    let recovered = scan.recovered as u64;
    assert!(
        recovered >= completed,
        "{ctx}: lost a fully-persisted event ({recovered} < {completed})"
    );
    assert!(
        recovered <= completed + 1,
        "{ctx}: recovered {recovered} events but only {completed} appends \
         completed (+1 in-flight max)"
    );
    assert_eq!(
        scan.torn_tail_bytes, 0,
        "{ctx}: the tail word committed bytes that do not scan ({:?})",
        scan.torn_reason
    );
    let expected = events();
    for (i, ev) in cat.events().enumerate() {
        assert_eq!(
            ev, &expected[i],
            "{ctx}: event {i} content diverged after recovery"
        );
    }
    // The hydrated job table must equal the fold of exactly the
    // recovered prefix — the durable stream is the source of truth.
    if recovered >= 3 {
        let j1 = cat.job(1).unwrap();
        assert_eq!(j1.status, JobStatus::Completed, "{ctx}: job 1 fold");
        assert_eq!(j1.metrics.get("sim.result.cycles"), Some(&123_456));
    } else if recovered >= 1 {
        assert_eq!(
            cat.job(1).unwrap().status,
            JobStatus::Submitted,
            "{ctx}: job 1 fold"
        );
    }
    if recovered == 4 {
        let j2 = cat.job(2).unwrap();
        assert_eq!(j2.status, JobStatus::Failed, "{ctx}: job 2 fold");
        assert_eq!(j2.error, "sweep error");
    }
}

#[test]
fn clean_and_torn_crashes_at_every_append_boundary_lose_nothing() {
    let n_setup = enumerate_crash_points(build, |rt| setup(rt).map(|_| ()))
        .unwrap()
        .len() as u64;
    let n_total = enumerate_crash_points(build, |rt| run_workload(rt).2)
        .unwrap()
        .len() as u64;
    assert!(
        n_total > n_setup + 8,
        "append path crosses too few persist boundaries \
         ({n_total} total vs {n_setup} setup)"
    );

    for torn in [false, true] {
        for point in n_setup + 1..=n_total {
            for seed in [1u64, 7] {
                let ctx = format!(
                    "point {point} ({}) seed {seed}",
                    if torn { "torn" } else { "clean" }
                );
                let mut rt = build();
                rt.arm_fault_plan(FaultPlan {
                    crash_after: Some(point),
                    torn_lines: torn,
                    ..FaultPlan::default()
                });
                let (oid, completed, result) = run_workload(&mut rt);
                assert!(
                    matches!(result, Err(PmemError::InjectedCrash)),
                    "{ctx}: expected an injected crash, got {result:?}"
                );
                let oid = oid.unwrap_or_else(|| panic!("{ctx}: crash before the object existed"));
                let mut rt = rt.crash_and_recover(seed).unwrap();
                assert!(
                    poat_pmem::faultpoint::verify_recovery(&mut rt)
                        .unwrap()
                        .is_empty(),
                    "{ctx}: pool invariants violated"
                );
                check_recovered(&mut rt, oid, completed, &ctx);
            }
        }
    }
}

#[test]
fn clean_run_recovers_all_events() {
    let mut rt = build();
    let (oid, completed, result) = run_workload(&mut rt);
    assert!(result.is_ok());
    assert_eq!(completed, EVENTS);
    let mut rt = rt.crash_and_recover(3).unwrap();
    check_recovered(&mut rt, oid.unwrap(), EVENTS, "clean run");
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! The catalog store facade: an event log plus the job table it folds
//! into.
//!
//! [`Catalog`] owns a [`Log`] of [`CatalogRecord`] events and *hydrates
//! on boot*: opening the store replays every recovered event through
//! [`JobRow`] fold logic, so the in-memory job table is always exactly
//! the table the durable stream implies — there is no separate row
//! store to drift out of sync. Mutations append an event first (durable
//! when the append returns, courtesy of the medium's persist ordering —
//! the same tail-word commit discipline the run ledger uses, swept by
//! `tests/crash_sweep.rs`), then fold it into the table.
//!
//! This file is in the analyzer's R7/R8 persist-ordering scope: any
//! direct persistent-media stores added here must follow the
//! persist-before-commit discipline and carry `// faultpoint:` sweep
//! annotations. Today every durable byte goes through
//! `poat_ledger::Log::append`, which inherits the swept medium paths.

use std::collections::BTreeMap;
use std::path::Path;

use poat_ledger::{FileMedium, LedgerError, Log, Medium, OpenMode, ScanReport};
use poat_telemetry::global;

use crate::record::{CatalogRecord, JobSpec, JobStatus};

/// The folded state of one job: its spec plus the latest lifecycle
/// event's payload.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRow {
    /// Stable job identifier (assigned at submission).
    pub job_id: u64,
    /// What the job runs.
    pub spec: JobSpec,
    /// Latest lifecycle stage seen for this job.
    pub status: JobStatus,
    /// When the job was submitted (Unix seconds).
    pub submitted_unix_secs: u64,
    /// When the terminal event landed (Unix seconds; 0 while running).
    pub finished_unix_secs: u64,
    /// Run duration in microseconds (0 while running).
    pub elapsed_micros: u64,
    /// Error text (non-empty only on [`JobStatus::Failed`]).
    pub error: String,
    /// Result metrics (non-empty only on [`JobStatus::Completed`]).
    pub metrics: BTreeMap<String, u64>,
}

/// Field filters for `repro catalog query`: `None` matches everything,
/// `Some` requires equality on that field.
#[derive(Clone, Debug, Default)]
pub struct QueryFilter {
    /// Match on the job's workload selector (e.g. `BST:RANDOM`).
    pub workload: Option<String>,
    /// Match on the design label (e.g. `pipelined`).
    pub design: Option<String>,
    /// Match on the scale label (`quick` / `full`).
    pub scale: Option<String>,
    /// Match on the status label (`running` / `completed` / `failed`).
    pub status: Option<String>,
}

impl QueryFilter {
    /// Whether `row` satisfies every `Some` field of the filter.
    pub fn matches(&self, row: &JobRow) -> bool {
        self.workload
            .as_deref()
            .is_none_or(|w| row.spec.workload == w)
            && self.design.as_deref().is_none_or(|d| row.spec.design == d)
            && self.scale.as_deref().is_none_or(|s| row.spec.scale == s)
            && self
                .status
                .as_deref()
                .is_none_or(|s| row.status.label() == s)
    }
}

/// A run catalog open on some [`Medium`]: the durable event log plus
/// the hydrated job table.
pub struct Catalog<M: Medium> {
    log: Log<M, CatalogRecord>,
    jobs: BTreeMap<u64, JobRow>,
}

/// Folds one event into the job table (the hydration step and the
/// post-append step share this, so boot and runtime can never disagree).
fn fold(jobs: &mut BTreeMap<u64, JobRow>, ev: &CatalogRecord) {
    match ev.job_status() {
        JobStatus::Submitted => {
            jobs.insert(
                ev.job_id,
                JobRow {
                    job_id: ev.job_id,
                    spec: ev.spec.clone(),
                    status: JobStatus::Submitted,
                    submitted_unix_secs: ev.timestamp_unix_secs,
                    finished_unix_secs: 0,
                    elapsed_micros: 0,
                    error: String::new(),
                    metrics: BTreeMap::new(),
                },
            );
        }
        status @ (JobStatus::Completed | JobStatus::Failed) => {
            let row = jobs.entry(ev.job_id).or_insert_with(|| JobRow {
                // A terminal event whose submission was torn away still
                // names its spec, so the row can be reconstructed.
                job_id: ev.job_id,
                spec: ev.spec.clone(),
                status,
                submitted_unix_secs: ev.timestamp_unix_secs,
                finished_unix_secs: 0,
                elapsed_micros: 0,
                error: String::new(),
                metrics: BTreeMap::new(),
            });
            row.status = status;
            row.finished_unix_secs = ev.timestamp_unix_secs;
            row.elapsed_micros = ev.elapsed_micros;
            row.error = ev.error.clone();
            row.metrics = ev.metrics.clone();
        }
    }
}

impl<M: Medium> Catalog<M> {
    /// Opens (and if empty, formats) the catalog on `medium` and
    /// hydrates the job table from the recovered event stream.
    ///
    /// # Errors
    ///
    /// As [`Log::open`]: bad magic or medium failures; torn tails are
    /// recovered around, not errors.
    pub fn open(medium: M) -> Result<Self, LedgerError> {
        Self::open_with(medium, OpenMode::Repair)
    }

    /// [`open`](Self::open) in the given [`OpenMode`]. Observers polling
    /// a catalog another process is appending to must use
    /// [`OpenMode::ReadOnly`] so a racing half-written frame is not
    /// truncated out from under the writer.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with(medium: M, mode: OpenMode) -> Result<Self, LedgerError> {
        let log = Log::open_with(medium, mode)?;
        let mut jobs = BTreeMap::new();
        for frame in log.records() {
            fold(&mut jobs, &frame.data);
        }
        global()
            .gauge("catalog.jobs.hydrated")
            .set(jobs.len() as u64);
        Ok(Catalog { log, jobs })
    }

    /// The smallest job id not yet present in the table (ids start at 1).
    pub fn next_job_id(&self) -> u64 {
        self.jobs.keys().next_back().map(|id| id + 1).unwrap_or(1)
    }

    /// Durably appends `event` and folds it into the job table. The
    /// event is on the medium when this returns; a crash after that
    /// point replays it on the next boot.
    ///
    /// # Errors
    ///
    /// As [`Log::append`] (medium failures, read-only store).
    pub fn append_event(&mut self, event: CatalogRecord) -> Result<u64, LedgerError> {
        let seq = self.log.append(event)?;
        let ev = &self.log.records().last().expect("just appended").data;
        let counter = match ev.job_status() {
            JobStatus::Submitted => "catalog.jobs.running",
            JobStatus::Completed => "catalog.jobs.completed",
            JobStatus::Failed => "catalog.jobs.failed",
        };
        global().counter(counter).inc();
        let ev = ev.clone();
        fold(&mut self.jobs, &ev);
        Ok(seq)
    }

    /// All jobs, ascending by id.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRow> {
        self.jobs.values()
    }

    /// The job with id `job_id`, if the stream has seen it.
    pub fn job(&self, job_id: u64) -> Option<&JobRow> {
        self.jobs.get(&job_id)
    }

    /// Jobs matching `filter`, ascending by id.
    pub fn query(&self, filter: &QueryFilter) -> Vec<&JobRow> {
        self.jobs.values().filter(|r| filter.matches(r)).collect()
    }

    /// What the opening scan found (recovered count, torn tail).
    pub fn scan_report(&self) -> &ScanReport {
        self.log.scan_report()
    }

    /// Number of events in the durable stream.
    pub fn event_count(&self) -> usize {
        self.log.records().len()
    }

    /// The raw event stream, ascending by sequence number.
    pub fn events(&self) -> impl Iterator<Item = &CatalogRecord> {
        self.log.records().iter().map(|f| &f.data)
    }
}

/// Opens the catalog file at `path` read-write (creating it, and its
/// parent directory, when missing). Single writer only — the serve
/// process.
///
/// # Errors
///
/// File I/O failures and the scan errors of [`Catalog::open`].
pub fn open_file(path: &Path) -> Result<Catalog<FileMedium>, LedgerError> {
    Catalog::open(FileMedium::open(path)?)
}

/// Opens the catalog file at `path` read-only, for observers
/// (`repro jobs`, `repro catalog query`) polling while a serve process
/// may be appending. A missing file reads as an empty catalog.
///
/// # Errors
///
/// File I/O failures (other than the file not existing) and the scan
/// errors of [`Catalog::open_with`].
pub fn open_file_read_only(path: &Path) -> Result<Catalog<ReadOnlyMedium>, LedgerError> {
    let inner = match FileMedium::open_read_only(path) {
        Ok(m) => Some(m),
        Err(LedgerError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    Catalog::open_with(ReadOnlyMedium { inner }, OpenMode::ReadOnly)
}

/// A [`FileMedium`] that may be absent (missing catalog file reads as
/// empty) and rejects every mutation, backing read-only observers.
pub struct ReadOnlyMedium {
    inner: Option<FileMedium>,
}

impl Medium for ReadOnlyMedium {
    fn len(&mut self) -> Result<u64, LedgerError> {
        match &mut self.inner {
            Some(m) => m.len(),
            None => Ok(0),
        }
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), LedgerError> {
        match &mut self.inner {
            Some(m) => m.read_at(off, buf),
            None => Err(LedgerError::Corrupt("read from absent catalog")),
        }
    }

    fn append(&mut self, _data: &[u8]) -> Result<(), LedgerError> {
        Err(LedgerError::Corrupt("catalog opened read-only"))
    }

    fn truncate(&mut self, _len: u64) -> Result<(), LedgerError> {
        Err(LedgerError::Corrupt("catalog opened read-only"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(workload: &str) -> JobSpec {
        JobSpec {
            workload: workload.into(),
            design: "pipelined".into(),
            scale: "quick".into(),
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("poat_catalog_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("catalog.poatcat")
    }

    #[test]
    fn hydrate_on_boot_rebuilds_the_job_table() {
        let path = temp_path("hydrate");
        let _ = std::fs::remove_file(&path);
        {
            let mut cat = open_file(&path).unwrap();
            assert_eq!(cat.next_job_id(), 1);
            cat.append_event(CatalogRecord::submitted(1, spec("LL:ALL"), 100))
                .unwrap();
            cat.append_event(CatalogRecord::submitted(2, spec("BST:RANDOM"), 101))
                .unwrap();
            let mut metrics = BTreeMap::new();
            metrics.insert("sim.result.cycles".to_string(), 777);
            cat.append_event(CatalogRecord::completed(
                1,
                spec("LL:ALL"),
                105,
                5_000,
                metrics,
            ))
            .unwrap();
            cat.append_event(CatalogRecord::failed(
                2,
                spec("BST:RANDOM"),
                106,
                "boom".into(),
            ))
            .unwrap();
            assert_eq!(cat.next_job_id(), 3);
        }
        let cat = open_file(&path).unwrap();
        assert_eq!(cat.event_count(), 4);
        let j1 = cat.job(1).unwrap();
        assert_eq!(j1.status, JobStatus::Completed);
        assert_eq!(j1.metrics.get("sim.result.cycles"), Some(&777));
        assert_eq!(j1.elapsed_micros, 5_000);
        let j2 = cat.job(2).unwrap();
        assert_eq!(j2.status, JobStatus::Failed);
        assert_eq!(j2.error, "boom");
        assert_eq!(cat.next_job_id(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn query_filters_compose() {
        let path = temp_path("query");
        let _ = std::fs::remove_file(&path);
        let mut cat = open_file(&path).unwrap();
        cat.append_event(CatalogRecord::submitted(1, spec("LL:ALL"), 100))
            .unwrap();
        cat.append_event(CatalogRecord::submitted(2, spec("BST:RANDOM"), 101))
            .unwrap();
        cat.append_event(CatalogRecord::completed(
            2,
            spec("BST:RANDOM"),
            104,
            9,
            BTreeMap::new(),
        ))
        .unwrap();
        let all = cat.query(&QueryFilter::default());
        assert_eq!(all.len(), 2);
        let bst = cat.query(&QueryFilter {
            workload: Some("BST:RANDOM".into()),
            ..QueryFilter::default()
        });
        assert_eq!(bst.len(), 1);
        assert_eq!(bst[0].job_id, 2);
        let done = cat.query(&QueryFilter {
            status: Some("completed".into()),
            ..QueryFilter::default()
        });
        assert_eq!(done.len(), 1);
        let none = cat.query(&QueryFilter {
            workload: Some("BST:RANDOM".into()),
            status: Some("running".into()),
            ..QueryFilter::default()
        });
        assert!(none.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_only_observer_sees_the_stream_without_mutating_it() {
        let path = temp_path("ro");
        let _ = std::fs::remove_file(&path);
        {
            let mut cat = open_file(&path).unwrap();
            cat.append_event(CatalogRecord::submitted(1, spec("LL:ALL"), 100))
                .unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // A torn tail (simulating a racing writer's in-flight frame)...
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xCD; 9]).unwrap();
        }
        // ...is visible to the observer but NOT truncated away.
        let mut cat = open_file_read_only(&path).unwrap();
        assert_eq!(cat.event_count(), 1);
        assert_eq!(cat.scan_report().torn_tail_bytes, 9);
        assert!(matches!(
            cat.append_event(CatalogRecord::submitted(9, spec("LL:ALL"), 1)),
            Err(LedgerError::Corrupt(_))
        ));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len + 9,
            "read-only open must not repair the medium"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_catalog_reads_as_empty_for_observers() {
        let path = temp_path("absent").join("never-created.poatcat");
        let cat = open_file_read_only(&path).unwrap();
        assert_eq!(cat.event_count(), 0);
        assert_eq!(cat.next_job_id(), 1);
    }
}

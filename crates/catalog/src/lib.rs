// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-catalog
//!
//! The durable run catalog behind `repro serve`: an append-only store
//! of job-lifecycle events (`POATCAT1`) that survives the process, so
//! submitted runs and their results accumulate across restarts instead
//! of dying with each batch invocation.
//!
//! The catalog is the run ledger's sibling (SNIPPETS.md §1, the Revaer
//! runtime-persistence pattern: a dedicated store crate, hydrate on
//! boot, persist every event):
//!
//! * **Format** — the same framed byte stream as `POATLGR1` with the
//!   magic swapped for `POATCAT1`; frames, checksums, sequence
//!   discipline, recovery, and both media come verbatim from
//!   [`poat_ledger::Log`], so there is exactly one scanner to prove
//!   correct and one crash-sweep harness to run against both stores
//!   (`tests/crash_sweep.rs` here mirrors the ledger's).
//! * **Payload** — one [`CatalogRecord`] event per append: `Submitted`
//!   when the server takes a job, then a terminal `Completed` (carrying
//!   the run's `sim.result.*` metrics) or `Failed` (carrying the error
//!   text). See [`record`].
//! * **Facade** — [`Catalog`] hydrates the event stream into a job
//!   table on open and folds each appended event into it, exposing
//!   submission, lookup, and the `repro catalog query` filters. See
//!   [`store`].
//!
//! Single-writer: the serve process opens the catalog read-write;
//! observers (`repro jobs`, `repro catalog query`) open it with
//! [`poat_ledger::OpenMode::ReadOnly`] via
//! [`store::open_file_read_only`], which never repairs a torn tail —
//! that tail may be the writer's in-flight append, not damage.
//!
//! Telemetry: `catalog.records.*` / `catalog.torn.tails` from the
//! shared log, `catalog.jobs.*` from the facade (docs/METRICS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;
pub mod store;

pub use poat_ledger::{LedgerError, OpenMode};
pub use record::{CatalogRecord, JobSpec, JobStatus, CATALOG_SCHEMA_VERSION};
pub use store::{open_file, open_file_read_only, Catalog, JobRow, QueryFilter, ReadOnlyMedium};

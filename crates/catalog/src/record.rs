// SPDX-License-Identifier: MIT OR Apache-2.0
//! The catalog event payload: one job-lifecycle event per record, and
//! its LEB128 encoding.
//!
//! A catalog stream is a sequence of *events*, not rows: `Submitted`
//! when the server takes a job, then exactly one terminal `Completed`
//! (with the run's `sim.result.*` metrics) or `Failed` (with the error
//! text). The store in [`crate::store`] folds the event stream into the
//! current job table on boot — the Revaer runtime-persistence shape
//! (persist every event, hydrate on boot) rather than update-in-place,
//! so a crash can never half-update a row.
//!
//! Encoding reuses the ledger's codec verbatim (LEB128 varints,
//! length-prefixed strings, front-coded sorted metric names); see
//! `poat_ledger::codec`.

use std::collections::BTreeMap;

use poat_ledger::codec::{put_front_coded, put_str, put_varint, Cursor};
use poat_ledger::{LedgerError, LogPayload};

/// Version of the catalog payload layout; bump on breaking change.
pub const CATALOG_SCHEMA_VERSION: u64 = 1;

/// What a submitted job asks for: one cell of the workload × design ×
/// scale experiment space, in the same spelling the batch `repro` CLI
/// accepts (`LL:ALL`, `pipelined`, `quick`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload selector, `MICRO:PATTERN` (e.g. `BST:RANDOM`).
    pub workload: String,
    /// Design label (`pipelined`, `parallel`, `ideal`).
    pub design: String,
    /// Experiment scale (`quick` or `full`).
    pub scale: String,
}

impl JobSpec {
    /// Renders the spec the way the CLI accepts it back
    /// (`workload design scale`).
    pub fn display(&self) -> String {
        format!("{} {} {}", self.workload, self.design, self.scale)
    }
}

/// The lifecycle stage a catalog event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The server accepted the job and began executing it.
    Submitted,
    /// The run finished; the event carries its metrics.
    Completed,
    /// The run failed; the event carries the error text.
    Failed,
}

impl JobStatus {
    fn code(self) -> u64 {
        match self {
            JobStatus::Submitted => 0,
            JobStatus::Completed => 1,
            JobStatus::Failed => 2,
        }
    }

    fn from_code(code: u64) -> Result<Self, LedgerError> {
        match code {
            0 => Ok(JobStatus::Submitted),
            1 => Ok(JobStatus::Completed),
            2 => Ok(JobStatus::Failed),
            _ => Err(LedgerError::Corrupt("unknown job status code")),
        }
    }

    /// Lower-case label used by the CLI and query filters.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Submitted => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
        }
    }
}

/// One decoded catalog event.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CatalogRecord {
    /// The job this event belongs to (assigned at submission, stable
    /// across its lifecycle events).
    pub job_id: u64,
    /// Which lifecycle stage this event records.
    pub status: Option<JobStatus>,
    /// Wall-clock seconds since the Unix epoch when the event was cut.
    pub timestamp_unix_secs: u64,
    /// What the job runs.
    pub spec: JobSpec,
    /// Run duration in microseconds (terminal events only; 0 otherwise).
    pub elapsed_micros: u64,
    /// Error text (only on [`JobStatus::Failed`]; empty otherwise).
    pub error: String,
    /// Result metrics, `sim.result.*` names (only on
    /// [`JobStatus::Completed`]; empty otherwise).
    pub metrics: BTreeMap<String, u64>,
}

impl CatalogRecord {
    /// Builds the event recording that `job_id` started executing.
    pub fn submitted(job_id: u64, spec: JobSpec, timestamp_unix_secs: u64) -> Self {
        CatalogRecord {
            job_id,
            status: Some(JobStatus::Submitted),
            timestamp_unix_secs,
            spec,
            ..CatalogRecord::default()
        }
    }

    /// Builds the terminal success event with the run's metrics.
    pub fn completed(
        job_id: u64,
        spec: JobSpec,
        timestamp_unix_secs: u64,
        elapsed_micros: u64,
        metrics: BTreeMap<String, u64>,
    ) -> Self {
        CatalogRecord {
            job_id,
            status: Some(JobStatus::Completed),
            timestamp_unix_secs,
            spec,
            elapsed_micros,
            metrics,
            ..CatalogRecord::default()
        }
    }

    /// Builds the terminal failure event with the error text.
    pub fn failed(job_id: u64, spec: JobSpec, timestamp_unix_secs: u64, error: String) -> Self {
        CatalogRecord {
            job_id,
            status: Some(JobStatus::Failed),
            timestamp_unix_secs,
            spec,
            error,
            ..CatalogRecord::default()
        }
    }

    /// The event's status; a defaulted record (which never appears in a
    /// valid stream) reads as `Submitted`.
    pub fn job_status(&self) -> JobStatus {
        self.status.unwrap_or(JobStatus::Submitted)
    }

    /// Serializes the payload (the bytes the frame checksum covers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        put_varint(&mut out, CATALOG_SCHEMA_VERSION);
        put_varint(&mut out, self.job_id);
        put_varint(&mut out, self.job_status().code());
        put_varint(&mut out, self.timestamp_unix_secs);
        put_varint(&mut out, self.elapsed_micros);
        put_str(&mut out, &self.spec.workload);
        put_str(&mut out, &self.spec.design);
        put_str(&mut out, &self.spec.scale);
        put_str(&mut out, &self.error);
        put_varint(&mut out, self.metrics.len() as u64);
        let mut prev = "";
        for (name, v) in &self.metrics {
            put_front_coded(&mut out, prev, name);
            put_varint(&mut out, *v);
            prev = name;
        }
        out
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`LedgerError::BadVersion`] for a newer schema,
    /// [`LedgerError::Corrupt`] for any structural violation (truncated
    /// varint, invalid UTF-8, unknown status, trailing bytes).
    pub fn decode(bytes: &[u8]) -> Result<Self, LedgerError> {
        let mut cur = Cursor::new(bytes);
        let version = cur.varint()?;
        if version > CATALOG_SCHEMA_VERSION {
            return Err(LedgerError::BadVersion(version));
        }
        let job_id = cur.varint()?;
        let status = JobStatus::from_code(cur.varint()?)?;
        let timestamp_unix_secs = cur.varint()?;
        let elapsed_micros = cur.varint()?;
        let workload = cur.string()?;
        let design = cur.string()?;
        let scale = cur.string()?;
        let error = cur.string()?;
        let mut metrics = BTreeMap::new();
        let n = cur.varint()?;
        let mut prev = String::new();
        for _ in 0..n {
            let name = cur.front_coded(&prev)?;
            let v = cur.varint()?;
            metrics.insert(name.clone(), v);
            prev = name;
        }
        if cur.pos != bytes.len() {
            return Err(LedgerError::Corrupt("trailing bytes after payload"));
        }
        Ok(CatalogRecord {
            job_id,
            status: Some(status),
            timestamp_unix_secs,
            spec: JobSpec {
                workload,
                design,
                scale,
            },
            elapsed_micros,
            error,
            metrics,
        })
    }
}

impl LogPayload for CatalogRecord {
    const MAGIC: &'static [u8; 8] = b"POATCAT1";
    const METRIC_RECORDS_APPENDED: &'static str = "catalog.records.appended";
    const METRIC_BYTES_APPENDED: &'static str = "catalog.bytes.appended";
    const METRIC_RECORDS_RECOVERED: &'static str = "catalog.records.recovered";
    const METRIC_TORN_TAILS: &'static str = "catalog.torn.tails";

    fn encode(&self) -> Vec<u8> {
        CatalogRecord::encode(self)
    }

    fn decode(bytes: &[u8]) -> Result<Self, LedgerError> {
        CatalogRecord::decode(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            workload: "BST:RANDOM".into(),
            design: "pipelined".into(),
            scale: "quick".into(),
        }
    }

    #[test]
    fn events_roundtrip() {
        let mut metrics = BTreeMap::new();
        metrics.insert("sim.result.cycles".to_string(), 123_456_789);
        metrics.insert("sim.result.polb_hits".to_string(), 42);
        let events = [
            CatalogRecord::submitted(7, spec(), 1_700_000_000),
            CatalogRecord::completed(7, spec(), 1_700_000_009, 9_000_000, metrics),
            CatalogRecord::failed(8, spec(), 1_700_000_010, "parallel on ooo".into()),
        ];
        for ev in &events {
            let encoded = ev.encode();
            assert_eq!(&CatalogRecord::decode(&encoded).unwrap(), ev);
        }
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let mut metrics = BTreeMap::new();
        metrics.insert("sim.result.cycles".to_string(), u64::MAX);
        metrics.insert("sim.result.instructions".to_string(), 1);
        let ev = CatalogRecord::completed(3, spec(), 1_700_000_000, 55, metrics);
        let encoded = ev.encode();
        assert_eq!(CatalogRecord::decode(&encoded).unwrap(), ev);
        for cut in 0..encoded.len() {
            assert!(
                CatalogRecord::decode(&encoded[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn unknown_status_and_newer_schema_are_rejected() {
        let mut newer = Vec::new();
        put_varint(&mut newer, CATALOG_SCHEMA_VERSION + 1);
        match CatalogRecord::decode(&newer) {
            Err(LedgerError::BadVersion(v)) => assert_eq!(v, CATALOG_SCHEMA_VERSION + 1),
            other => panic!("expected BadVersion, got {:?}", other.map(|_| ())),
        }
        let mut bad_status = Vec::new();
        put_varint(&mut bad_status, CATALOG_SCHEMA_VERSION);
        put_varint(&mut bad_status, 1); // job_id
        put_varint(&mut bad_status, 9); // status code out of range
        assert!(matches!(
            CatalogRecord::decode(&bad_status),
            Err(LedgerError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut encoded = CatalogRecord::submitted(1, spec(), 1_700_000_000).encode();
        encoded.push(0);
        assert!(matches!(
            CatalogRecord::decode(&encoded),
            Err(LedgerError::Corrupt("trailing bytes after payload"))
        ));
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! Integration tests for the perf-trajectory machinery: lossless
//! `BENCH_<n>.json` round-trips and the regression comparator's
//! verdicts on injected deltas (docs/BENCHMARKS.md).

use poat_bench::{
    compare, BenchRecord, BenchReport, BudgetRecord, BuildMeta, DeltaKind, BENCH_SCHEMA_VERSION,
    DEFAULT_THRESHOLD_PCT,
};

fn record(id: &str, median_ns: f64) -> BenchRecord {
    BenchRecord {
        id: id.to_string(),
        median_ns,
        p10_ns: median_ns * 0.97,
        p90_ns: median_ns * 1.06,
        min_ns: median_ns * 0.95,
        max_ns: median_ns * 1.5,
        samples: 28,
        outliers_dropped: 2,
        iters: 4096,
        ops_per_iter: 64,
        ops_per_sec: 64.0 / (median_ns * 1e-9),
        bytes_per_op: None,
    }
}

fn report(records: Vec<BenchRecord>) -> BenchReport {
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        mode: "committed".to_string(),
        build: BuildMeta {
            git_revision: "deadbeef".to_string(),
            profile: "release".to_string(),
            host_parallelism: 8,
            worker_parallelism: Some(8),
        },
        records,
        budgets: vec![BudgetRecord {
            id: "budget/fig9_quick_matrix".to_string(),
            wall_ns: 4_200_000_000,
            budget_ns: 45_000_000_000,
            within_budget: true,
        }],
    }
}

#[test]
fn bench_json_roundtrip_is_lossless() {
    let mut original = report(vec![
        record("translation/polb_pipelined_hit", 41.5),
        record("trace/encode_push", 212.25),
    ]);
    // Exercise the optional field and fractional values explicitly.
    original.records[1].bytes_per_op = Some(3.47);
    let json = original.to_json_string();
    let parsed = BenchReport::from_json_str(&json).expect("own output must parse");
    assert_eq!(parsed, original);
    // And a second trip produces byte-identical JSON (stable ordering).
    assert_eq!(parsed.to_json_string(), json);
}

#[test]
fn from_json_rejects_newer_schema() {
    let mut newer = report(vec![record("a/b", 10.0)]);
    newer.schema_version = BENCH_SCHEMA_VERSION + 1;
    let json = newer.to_json_string();
    let err = BenchReport::from_json_str(&json).expect_err("future schema must be rejected");
    assert!(err.contains("schema"), "unhelpful error: {err}");
}

#[test]
fn comparator_flags_injected_regression() {
    let old = report(vec![
        record("translation/polb_pipelined_hit", 40.0),
        record("memory/tlb_mru_hit", 12.0),
    ]);
    let mut new = old.clone();
    // Inject a synthetic 50% slowdown on one hot path.
    new.records[0].median_ns = 60.0;
    let cmp = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
    assert!(
        cmp.failed(),
        "a 50% slowdown must fail at the 10% threshold"
    );
    let d = &cmp.deltas[0];
    assert_eq!(d.kind, DeltaKind::Regression);
    assert!((d.delta_pct - 50.0).abs() < 1e-9);
    assert_eq!(cmp.deltas[1].kind, DeltaKind::Unchanged);
    assert!(cmp.text().contains("REGRESSION"));
}

#[test]
fn comparator_passes_improvement_and_noise() {
    let old = report(vec![
        record("translation/polb_pipelined_hit", 40.0),
        record("memory/tlb_mru_hit", 12.0),
    ]);
    let mut new = old.clone();
    new.records[0].median_ns = 20.0; // 2x faster
    new.records[1].median_ns = 12.5; // ~4% slower: inside the threshold
    let cmp = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
    assert!(!cmp.failed());
    assert_eq!(cmp.deltas[0].kind, DeltaKind::Improvement);
    assert_eq!(cmp.deltas[1].kind, DeltaKind::Unchanged);
}

#[test]
fn comparator_fails_on_missing_benchmark() {
    let old = report(vec![
        record("translation/polb_pipelined_hit", 40.0),
        record("memory/tlb_mru_hit", 12.0),
    ]);
    let mut new = old.clone();
    new.records.remove(1);
    let cmp = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
    assert!(cmp.failed(), "a silently dropped benchmark must fail");
    assert!(cmp
        .deltas
        .iter()
        .any(|d| d.id == "memory/tlb_mru_hit" && d.kind == DeltaKind::MissingInNew));
}

#[test]
fn comparator_reports_added_benchmarks_without_failing() {
    let old = report(vec![record("translation/polb_pipelined_hit", 40.0)]);
    let mut new = old.clone();
    new.records.push(record("replay/new_path", 900.0));
    let cmp = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
    assert!(!cmp.failed());
    assert!(cmp
        .deltas
        .iter()
        .any(|d| d.id == "replay/new_path" && d.kind == DeltaKind::Added));
}

#[test]
fn comparator_fails_on_blown_budget() {
    let old = report(vec![record("a/b", 10.0)]);
    let mut new = old.clone();
    new.budgets[0].wall_ns = new.budgets[0].budget_ns + 1;
    new.budgets[0].within_budget = false;
    let cmp = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
    assert!(cmp.failed());
    assert_eq!(cmp.blown_budgets.len(), 1);
    assert!(cmp.text().contains("BUDGET"));
}

#[test]
fn comparator_warns_on_debug_profile_and_host_mismatch() {
    let old = report(vec![record("a/b", 10.0)]);
    let mut new = old.clone();
    new.build.profile = "debug".to_string();
    new.build.host_parallelism = 4;
    let cmp = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
    assert!(!cmp.failed(), "warnings alone must not fail the comparison");
    assert_eq!(cmp.warnings.len(), 2);
}

#[test]
fn comparator_warns_on_worker_width_mismatch_or_unrecorded_width() {
    let old = report(vec![record("a/b", 10.0)]);
    let mut new = old.clone();
    new.build.worker_parallelism = Some(24);
    let cmp = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
    assert!(
        !cmp.failed(),
        "a width warning must not fail the comparison"
    );
    assert_eq!(cmp.warnings.len(), 1, "old 8 vs new 24 workers warns");

    // A pre-schema baseline (no recorded width) cannot be shown to
    // match, so it warns too — silently treating it as comparable hid
    // real cross-width comparisons.
    let mut legacy = old.clone();
    legacy.build.worker_parallelism = None;
    let cmp = compare(&legacy, &new, DEFAULT_THRESHOLD_PCT);
    assert_eq!(cmp.warnings.len(), 1, "got: {:?}", cmp.warnings);
    assert!(
        cmp.warnings[0].contains("unrecorded"),
        "got: {:?}",
        cmp.warnings
    );
    assert!(!cmp.failed());

    // Matching recorded widths stay silent.
    let cmp = compare(&old, &old, DEFAULT_THRESHOLD_PCT);
    assert!(cmp.warnings.is_empty(), "got: {:?}", cmp.warnings);
}

#[test]
fn report_without_worker_parallelism_still_parses() {
    // Committed baselines predating the field (BENCH_6/BENCH_7) must
    // keep loading; the field reads back as None.
    let mut json = report(vec![record("a/b", 10.0)]).to_json_string();
    assert!(json.contains("\"worker_parallelism\""), "field serializes");
    json = json.replace(",\n    \"worker_parallelism\": 8", "");
    assert!(
        !json.contains("worker_parallelism"),
        "the field was removed to mimic a pre-schema report"
    );
    let parsed = BenchReport::from_json_str(&json).expect("legacy layout parses");
    assert_eq!(parsed.build.worker_parallelism, None);
}

/// The newest `BENCH_<n>.json` at the repo root (highest `n`), the
/// same pick `scripts/ci.sh` and `scripts/bench.sh` make with
/// `ls | sort -V | tail -1`.
fn latest_committed_baseline() -> Option<std::path::PathBuf> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut best: Option<(u64, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(root).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().map_or(true, |(b, _)| n > *b) {
            best = Some((n, entry.path()));
        }
    }
    best.map(|(_, p)| p)
}

#[test]
fn committed_baseline_in_repo_parses_and_matches_suite() {
    // The latest BENCH_<n>.json is committed at the repo root; it must
    // always parse under the current schema and cover the current
    // suite's ids, so a renamed benchmark cannot slip past the
    // comparator unnoticed.
    let text = match latest_committed_baseline().map(std::fs::read_to_string) {
        Some(Ok(t)) => t,
        // Tolerate the brief window in which the baseline has not been
        // minted yet (first run of scripts/bench.sh on a fresh clone).
        _ => return,
    };
    let baseline = BenchReport::from_json_str(&text).expect("committed baseline must parse");
    assert_eq!(baseline.schema_version, BENCH_SCHEMA_VERSION);
    let listing = poat_bench::suite::list_suite(true);
    for rec in &listing.records {
        assert!(
            baseline.record(&rec.id).is_some(),
            "suite benchmark {} is missing from the committed baseline; \
             re-run scripts/bench.sh",
            rec.id
        );
    }
}

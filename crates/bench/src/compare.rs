// SPDX-License-Identifier: MIT OR Apache-2.0
//! The regression comparator: joins two [`BenchReport`]s on benchmark
//! id and classifies each median delta.
//!
//! This is what makes the committed `BENCH_<n>.json` *enforceable*: the
//! `bench-compare` binary exits non-zero when a median regresses past
//! the threshold, a benchmark disappears, or a wall-clock budget is
//! blown (docs/BENCHMARKS.md, "The comparator").

use crate::report::BenchReport;

/// Default regression threshold: a new median more than this many
/// percent above the old one fails the comparison. Generous enough to
/// absorb run-to-run noise on one host (medians over outlier-fenced
/// samples are stable to a few percent), tight enough to catch a real
/// hot-path slip.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// Classification of one benchmark's old→new delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// New median is more than `threshold_pct` slower: fails.
    Regression,
    /// New median is more than `threshold_pct` faster.
    Improvement,
    /// Within the threshold either way.
    Unchanged,
    /// Present in the old report, absent from the new: fails — a
    /// silently dropped benchmark is an unenforced hot path.
    MissingInNew,
    /// Present only in the new report: informational (a freshly added
    /// benchmark has no baseline yet).
    Added,
}

/// One joined row of the comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Old median ns/iter (0 when [`DeltaKind::Added`]).
    pub old_median_ns: f64,
    /// New median ns/iter (0 when [`DeltaKind::MissingInNew`]).
    pub new_median_ns: f64,
    /// Signed percent change, `(new − old) / old · 100`; 0 when either
    /// side is absent.
    pub delta_pct: f64,
    /// Classification against the threshold.
    pub kind: DeltaKind,
}

/// The outcome of comparing two reports.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Threshold used for classification, percent.
    pub threshold_pct: f64,
    /// One row per benchmark id present in either report, old-report
    /// order first, then added ids in new-report order.
    pub deltas: Vec<Delta>,
    /// Budget checks in the new report that exceeded their budget.
    pub blown_budgets: Vec<String>,
    /// Human-readable caveats (schema/profile mismatches) that do not
    /// fail the comparison by themselves.
    pub warnings: Vec<String>,
}

impl Comparison {
    /// Whether this comparison should fail an enforcing caller:
    /// any regression, missing benchmark, or blown budget.
    pub fn failed(&self) -> bool {
        !self.blown_budgets.is_empty()
            || self
                .deltas
                .iter()
                .any(|d| matches!(d.kind, DeltaKind::Regression | DeltaKind::MissingInNew))
    }

    /// Rows classified as regressions.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas
            .iter()
            .filter(|d| d.kind == DeltaKind::Regression)
    }

    /// Renders the comparison as an aligned text table plus a verdict
    /// line (the `bench-compare` binary prints this verbatim).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        out.push_str(&format!(
            "{:<40} {:>12} {:>12} {:>9}  {}\n",
            "benchmark", "old ns/iter", "new ns/iter", "delta", "verdict"
        ));
        for d in &self.deltas {
            let verdict = match d.kind {
                DeltaKind::Regression => "REGRESSION",
                DeltaKind::Improvement => "improved",
                DeltaKind::Unchanged => "ok",
                DeltaKind::MissingInNew => "MISSING",
                DeltaKind::Added => "added",
            };
            let delta = match d.kind {
                DeltaKind::MissingInNew | DeltaKind::Added => "-".to_string(),
                _ => format!("{:+.1}%", d.delta_pct),
            };
            out.push_str(&format!(
                "{:<40} {:>12.1} {:>12.1} {:>9}  {}\n",
                d.id, d.old_median_ns, d.new_median_ns, delta, verdict
            ));
        }
        for b in &self.blown_budgets {
            out.push_str(&format!("{b}\n"));
        }
        let regressions = self.regressions().count();
        let missing = self
            .deltas
            .iter()
            .filter(|d| d.kind == DeltaKind::MissingInNew)
            .count();
        out.push_str(&format!(
            "summary: {} benchmarks, {} regression(s), {} missing, {} blown budget(s) at ±{:.0}% threshold\n",
            self.deltas.len(),
            regressions,
            missing,
            self.blown_budgets.len(),
            self.threshold_pct
        ));
        out
    }
}

/// Compares `new` against the `old` baseline at the given threshold.
pub fn compare(old: &BenchReport, new: &BenchReport, threshold_pct: f64) -> Comparison {
    let mut warnings = Vec::new();
    if old.schema_version != new.schema_version {
        warnings.push(format!(
            "schema versions differ (old {}, new {}); field semantics may have changed",
            old.schema_version, new.schema_version
        ));
    }
    for (side, report) in [("old", old), ("new", new)] {
        if report.build.profile != "release" {
            warnings.push(format!(
                "{side} report was measured under the `{}` profile; numbers are not comparable to release baselines",
                report.build.profile
            ));
        }
    }
    if old.build.host_parallelism != new.build.host_parallelism {
        warnings.push(format!(
            "host parallelism differs (old {}, new {}); reports may come from different machines",
            old.build.host_parallelism, new.build.host_parallelism
        ));
    }
    // A pre-schema report with no recorded worker width cannot be shown
    // to match, so it warns just like a real mismatch would — budget
    // wall-clocks are only comparable when both widths are known equal.
    let width = |w: Option<u32>| w.map_or("unrecorded".to_string(), |n| n.to_string());
    if old.build.worker_parallelism != new.build.worker_parallelism
        || old.build.worker_parallelism.is_none()
    {
        warnings.push(format!(
            "worker-pool width differs (old {}, new {}); \
             budget wall-clocks are not comparable across widths",
            width(old.build.worker_parallelism),
            width(new.build.worker_parallelism)
        ));
    }

    let mut deltas = Vec::new();
    for o in &old.records {
        match new.record(&o.id) {
            Some(n) => {
                let delta_pct = if o.median_ns > 0.0 {
                    (n.median_ns - o.median_ns) / o.median_ns * 100.0
                } else {
                    0.0
                };
                let kind = if delta_pct > threshold_pct {
                    DeltaKind::Regression
                } else if delta_pct < -threshold_pct {
                    DeltaKind::Improvement
                } else {
                    DeltaKind::Unchanged
                };
                deltas.push(Delta {
                    id: o.id.clone(),
                    old_median_ns: o.median_ns,
                    new_median_ns: n.median_ns,
                    delta_pct,
                    kind,
                });
            }
            None => deltas.push(Delta {
                id: o.id.clone(),
                old_median_ns: o.median_ns,
                new_median_ns: 0.0,
                delta_pct: 0.0,
                kind: DeltaKind::MissingInNew,
            }),
        }
    }
    for n in &new.records {
        if old.record(&n.id).is_none() {
            deltas.push(Delta {
                id: n.id.clone(),
                old_median_ns: 0.0,
                new_median_ns: n.median_ns,
                delta_pct: 0.0,
                kind: DeltaKind::Added,
            });
        }
    }

    let blown_budgets = new
        .budgets
        .iter()
        .filter(|b| !b.within_budget)
        .map(|b| {
            format!(
                "BUDGET {}: {:.2}s exceeds the {:.2}s budget",
                b.id,
                b.wall_ns as f64 * 1e-9,
                b.budget_ns as f64 * 1e-9
            )
        })
        .collect();

    Comparison {
        threshold_pct,
        deltas,
        blown_budgets,
        warnings,
    }
}

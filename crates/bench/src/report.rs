// SPDX-License-Identifier: MIT OR Apache-2.0
//! The `BENCH_<n>.json` schema: what a bench run commits to disk.
//!
//! A [`BenchReport`] is the durable perf trajectory of this repository —
//! `scripts/bench.sh` emits one per baseline PR (committed at the repo
//! root as `BENCH_<n>.json`), and the comparator ([`crate::compare()`])
//! regresses every later run against the last committed file. The JSON
//! layout is versioned by [`BENCH_SCHEMA_VERSION`] and documented
//! field-by-field in docs/BENCHMARKS.md; bump the version on any
//! breaking change to these structs.

use serde::{Deserialize, Serialize};

/// Version of the `BENCH_<n>.json` layout. Bumped on any breaking
/// change; the comparator refuses to compare across versions.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Build/run provenance for one bench report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildMeta {
    /// Git revision of the source tree (`"unknown"` outside a checkout).
    pub git_revision: String,
    /// Compilation profile the suite ran under (`"release"`/`"debug"`).
    /// Committed baselines must be `"release"`; the comparator warns
    /// when either side is not.
    pub profile: String,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// context for judging whether two reports came from comparable
    /// machines, not an input to any statistic.
    pub host_parallelism: u32,
    /// Worker-pool width the harness would use on this host
    /// (`poat_harness::runner::default_workers()`: host parallelism
    /// capped at 24, or the `--workers` override). Wider pools change
    /// wall-clock but not results, so the comparator warns — never
    /// fails — when two reports ran at different widths. `None` in
    /// reports written before this field existed.
    pub worker_parallelism: Option<u32>,
}

impl BuildMeta {
    /// Collects provenance for the current process.
    pub fn collect() -> Self {
        BuildMeta {
            git_revision: poat_telemetry::git_revision().unwrap_or_else(|| "unknown".to_string()),
            profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            host_parallelism: std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1),
            worker_parallelism: Some(poat_harness::runner::default_workers() as u32),
        }
    }
}

/// One benchmark's result: order statistics over its per-iteration
/// samples plus derived throughput.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Stable identity, `group/name` (e.g. `translation/polb_pipelined_hit`).
    /// The comparator joins old and new reports on this field.
    pub id: String,
    /// Median nanoseconds per iteration — the primary statistic.
    pub median_ns: f64,
    /// 10th-percentile nanoseconds per iteration (fast tail).
    pub p10_ns: f64,
    /// 90th-percentile nanoseconds per iteration (slow tail).
    pub p90_ns: f64,
    /// Fastest sample that survived the outlier fence.
    pub min_ns: f64,
    /// Slowest sample that survived the outlier fence.
    pub max_ns: f64,
    /// Timing samples kept (after outlier rejection).
    pub samples: u32,
    /// Samples discarded by the outlier fence.
    pub outliers_dropped: u32,
    /// Iterations per timing sample (chosen by calibration).
    pub iters: u64,
    /// Logical operations one iteration performs (e.g. 32 POLB look-ups).
    pub ops_per_iter: u64,
    /// Derived throughput: `ops_per_iter / (median_ns · 1e-9)`.
    pub ops_per_sec: f64,
    /// Payload bytes per logical operation, for benchmarks with a
    /// declared byte throughput (the trace encode/decode family reports
    /// its measured B/op here); `null` otherwise.
    pub bytes_per_op: Option<f64>,
}

/// One wall-clock budget check: a pipeline run that must complete within
/// a fixed time box rather than be sampled repeatedly.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetRecord {
    /// Stable identity, `budget/<name>` (e.g. `budget/fig9_quick_matrix`).
    pub id: String,
    /// Measured wall-clock of the single run, nanoseconds.
    pub wall_ns: u64,
    /// The budget, nanoseconds. Exceeding it fails `bench-run` in
    /// `--mode committed` and is flagged by the comparator.
    pub budget_ns: u64,
    /// `wall_ns <= budget_ns`.
    pub within_budget: bool,
}

/// A full bench run: provenance plus every record, in suite order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Runner preset: `"committed"` (baseline scale) or `"smoke"` (CI).
    pub mode: String,
    /// Build/run provenance.
    pub build: BuildMeta,
    /// Microbenchmark results.
    pub records: Vec<BenchRecord>,
    /// Wall-clock budget checks.
    pub budgets: Vec<BudgetRecord>,
}

impl BenchReport {
    /// Renders the report as pretty-printed JSON (the committed format).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench report serialization is infallible")
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a shape mismatch with the current schema; a
    /// `schema_version` newer than [`BENCH_SCHEMA_VERSION`] is rejected
    /// so stale binaries cannot misread future layouts.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let report: BenchReport = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if report.schema_version > BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench schema version {} is newer than this binary understands ({})",
                report.schema_version, BENCH_SCHEMA_VERSION
            ));
        }
        Ok(report)
    }

    /// Looks up a record by its `group/name` id.
    pub fn record(&self, id: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Looks up a budget check by id.
    pub fn budget(&self, id: &str) -> Option<&BudgetRecord> {
        self.budgets.iter().find(|b| b.id == id)
    }
}

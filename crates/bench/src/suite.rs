// SPDX-License-Identifier: MIT OR Apache-2.0
//! The hot-path benchmark suite: what `bench-run` measures and
//! `BENCH_<n>.json` commits.
//!
//! One benchmark per hot path the ROADMAP's speed claims rest on —
//! POLB look-ups (both designs), the hardware POT walk, the cache/TLB
//! hierarchy including the MRU fast paths, trace encode/decode (the
//! canned mix encodes at ~2.6 B/op; recorded workload traces measure
//! 3.3–3.8 B/op), software `oid_direct`, full in-order/OoO replay,
//! and the static analyzer's lex + IR/CFG throughput over the
//! workspace (the CI gate's own cost) — plus the wall-clock budget
//! check for the quick-scale Figure-9 matrix. Benchmark ids (`group/name`) are the comparator's
//! join key: renaming one shows up as MISSING + added, so treat ids as
//! a stable public interface (docs/BENCHMARKS.md).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use poat_core::polb::{ParallelPolb, PipelinedPolb, TranslationBuffer};
use poat_core::{ObjectId, PoolId, Pot, VirtAddr};
use poat_harness::experiments;
use poat_harness::Scale;
use poat_pmem::{Runtime, RuntimeConfig, Trace, TraceOp};
use poat_sim::cache::MemoryHierarchy;
use poat_sim::tlb::Tlb;
use poat_sim::{simulate_inorder, simulate_ooo, SimConfig};
use poat_workloads::{ExpConfig, Micro, Pattern};

use crate::report::BenchReport;
use crate::runner::Runner;

/// Wall-clock budget for one full quick-scale Figure-9/Table-8 matrix
/// (`experiments::main_matrix(Scale::Quick)`): every workload executed
/// natively under BASE and OPT, then replayed on both cores across the
/// translation designs. Measured ~2.4 s (release) on the baseline
/// host; the budget carries ~12× headroom so it trips on structural
/// blow-ups (an accidentally quadratic model, paper-scale ops leaking
/// into the quick path), not on machine variance.
pub const FIG9_QUICK_BUDGET: Duration = Duration::from_secs(30);

/// Wall-clock budget for one full-scale (paper-exact) Figure-9/Table-8
/// matrix. Full scale is ~10× the quick microbenchmark ops and ~20× the
/// TPC-C transactions, so this check costs minutes, not seconds — it is
/// therefore **opt-in** via [`FULL_BUDGET_ENV`] rather than part of
/// every `bench-run`: CI stays fast by default, and a release run
/// exports the flag to pin the full-matrix cost (docs/BENCHMARKS.md).
/// Sized from a measured ~45 s on the 1-core baseline host (sharded
/// replay with one-chunk warmup) with generous structural headroom.
pub const FIG9_FULL_BUDGET: Duration = Duration::from_secs(1800);

/// Environment variable that opts the full-scale matrix budget into a
/// bench run (any non-empty value other than `0`). Checked at
/// registration time by [`register`].
pub const FULL_BUDGET_ENV: &str = "POAT_BENCH_FULL_BUDGET";

/// Whether the [`FULL_BUDGET_ENV`] opt-in is active for this process.
pub fn full_budget_requested() -> bool {
    std::env::var(FULL_BUDGET_ENV)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// `pool(n)`, panicking only on the reserved id 0.
fn pool(n: u32) -> PoolId {
    PoolId::new(n).expect("non-zero pool id")
}

/// A deterministic synthetic op mix for the trace-encoding benchmarks:
/// pointer-chasing loads with dependency edges, persistent accesses
/// with small oid/address strides, exec batches, clwb/fence pairs, and
/// branches — the same shape (and therefore roughly the same B/op) as
/// a recorded workload trace.
fn canned_ops(n: usize, seed: u64) -> Vec<TraceOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    let mut va: u64 = 0x7F33_2000_0000;
    let mut oid = ObjectId::new(pool(3), 0x40);
    let mut last_load: Option<u64> = None;
    while ops.len() < n {
        match ops.len() % 8 {
            0 => ops.push(TraceOp::Exec {
                n: rng.gen_range(1u32..8),
            }),
            1 | 5 => {
                va = va.wrapping_add(rng.gen_range(8u64..256) & !7);
                last_load = Some(ops.len() as u64);
                ops.push(TraceOp::Load {
                    va: VirtAddr::new(va),
                    dep: None,
                });
            }
            2 => ops.push(TraceOp::NvLoad {
                oid,
                va: VirtAddr::new(va),
                dep: last_load,
            }),
            3 => {
                oid = oid.add(rng.gen_range(8u32..128) & !7);
                ops.push(TraceOp::NvStore {
                    oid,
                    va: VirtAddr::new(va),
                    dep: last_load,
                });
            }
            4 => ops.push(TraceOp::Store {
                va: VirtAddr::new(va),
                dep: last_load,
            }),
            6 => ops.push(TraceOp::Clwb {
                va: VirtAddr::new(va),
            }),
            _ => {
                if ops.len() % 16 == 7 {
                    ops.push(TraceOp::Fence);
                } else {
                    ops.push(TraceOp::Branch {
                        mispredicted: rng.gen_range(0u32..10) == 0,
                    });
                }
            }
        }
    }
    ops
}

fn encode(ops: &[TraceOp]) -> Trace {
    let mut t = Trace::new();
    for &op in ops {
        t.push(op);
    }
    t
}

/// Registers the translation-structure benchmarks: POLB hit paths for
/// both designs, the miss path, and hardware POT walks.
fn translation_benches(r: &mut Runner) {
    // POLB hit-path look-up, both designs, 32 entries (paper default).
    let mut pipe = PipelinedPolb::new(32);
    let mut par = ParallelPolb::new(32);
    for i in 1..=32u32 {
        let o = ObjectId::new(pool(i), 0);
        pipe.fill(o, (i as u64) << 32);
        par.fill(o, (i as u64) << 12);
    }
    let oids: Vec<ObjectId> = (1..=32u32).map(|i| ObjectId::new(pool(i), 64)).collect();
    let n = oids.len() as u64;
    {
        let oids = oids.clone();
        r.bench("translation", "polb_pipelined_hit", n, move || {
            for &o in &oids {
                std::hint::black_box(pipe.translate(o));
            }
        });
    }
    {
        let oids = oids.clone();
        r.bench("translation", "polb_parallel_hit", n, move || {
            for &o in &oids {
                std::hint::black_box(par.translate(o));
            }
        });
    }
    {
        // Misses against a filled CAM: every look-up scans and fails.
        let mut pipe = PipelinedPolb::new(32);
        for i in 1..=32u32 {
            pipe.fill(ObjectId::new(pool(i), 0), (i as u64) << 32);
        }
        let miss_oids: Vec<ObjectId> = (1000..1032u32)
            .map(|i| ObjectId::new(pool(i), 64))
            .collect();
        r.bench("translation", "polb_pipelined_miss", n, move || {
            for &o in &miss_oids {
                std::hint::black_box(pipe.translate(o));
            }
        });
    }

    // POT hardware walk at paper size (16384 entries, 1000 pools mapped).
    let mut pot = Pot::new(16384);
    for i in 1..=1000u32 {
        pot.insert(pool(i), VirtAddr::new((i as u64) << 32))
            .expect("pot has free capacity");
    }
    r.bench("translation", "pot_walk_hit", 1000, move || {
        for i in 1..=1000u32 {
            std::hint::black_box(pot.walk(pool(i)));
        }
    });
    let mut pot_miss = Pot::new(16384);
    for i in 1..=1000u32 {
        pot_miss
            .insert(pool(i), VirtAddr::new((i as u64) << 32))
            .expect("pot has free capacity");
    }
    r.bench("translation", "pot_walk_miss", 1000, move || {
        for i in 2000..3000u32 {
            std::hint::black_box(pot_miss.walk(pool(i)));
        }
    });
}

/// Registers the cache/TLB hierarchy benchmarks, including the MRU
/// fast paths added in PR 5.
fn memory_benches(r: &mut Runner) {
    const ACCESSES: u64 = 64;

    // Same line over and over: the MRU way-hint hit path (L1).
    let mut h = MemoryHierarchy::new(&SimConfig::default().mem);
    h.access(0x1000); // warm the line
    r.bench("memory", "cache_l1_mru_hit", ACCESSES, move || {
        for _ in 0..ACCESSES {
            std::hint::black_box(h.access(0x1000));
        }
    });

    // A new line every access, far beyond L3 capacity: the full
    // L1→L2→L3→memory miss path with LRU victim selection.
    let mut h = MemoryHierarchy::new(&SimConfig::default().mem);
    let mut pa: u64 = 0;
    r.bench(
        "memory",
        "cache_hierarchy_miss_stream",
        ACCESSES,
        move || {
            for _ in 0..ACCESSES {
                pa = pa.wrapping_add(64 * 8191) & ((1 << 34) - 1);
                std::hint::black_box(h.access(pa));
            }
        },
    );

    // Same page repeatedly: the TLB MRU entry-hint hit path.
    let mut tlb = Tlb::new(64);
    tlb.access(0x5000);
    r.bench("memory", "tlb_mru_hit", ACCESSES, move || {
        for _ in 0..ACCESSES {
            std::hint::black_box(tlb.access(0x5000));
        }
    });

    // Stride through 1024 pages with 64 entries: every access misses
    // and evicts (the full-scan + LRU replacement path).
    let mut tlb = Tlb::new(64);
    let mut page: u64 = 0;
    r.bench("memory", "tlb_miss_stream", ACCESSES, move || {
        for _ in 0..ACCESSES {
            page = (page + 1) % 1024;
            std::hint::black_box(tlb.access(page << 12));
        }
    });
}

/// Registers the trace encode/decode benchmarks (DESIGN.md §5a).
fn trace_benches(r: &mut Runner) {
    const OPS: usize = 4096;
    let ops = canned_ops(OPS, 0xBEEF);
    let reference = encode(&ops);
    let encoded_bytes = reference.encoded_bytes() as u64;
    let decoded_len = reference.len() as u64;

    {
        let ops = ops.clone();
        r.bench_bytes(
            "trace",
            "encode_push",
            decoded_len,
            encoded_bytes,
            move || {
                std::hint::black_box(encode(&ops));
            },
        );
    }
    {
        let t = reference.clone();
        r.bench_bytes(
            "trace",
            "decode_stream",
            decoded_len,
            encoded_bytes,
            move || {
                let mut count = 0usize;
                for op in t.ops() {
                    count += usize::from(std::hint::black_box(op).is_memory());
                }
                std::hint::black_box(count);
            },
        );
    }
    {
        // The trusted-load path: full eager validation from raw columns
        // (what `trace_io::load` runs after reading the file).
        let (tags, data) = reference.encoded_columns();
        let (tags, data) = (tags.to_vec(), data.to_vec());
        r.bench_bytes(
            "trace",
            "validate_from_encoded",
            decoded_len,
            encoded_bytes,
            move || {
                let t = Trace::from_encoded(tags.clone(), data.clone())
                    .expect("canned trace is well-formed");
                std::hint::black_box(t.len());
            },
        );
    }
}

/// Registers the software-translation (`oid_direct`) benchmarks —
/// the BASE-config cost the paper's hardware removes.
fn runtime_benches(r: &mut Runner) {
    const DEREFS: u64 = 64;
    let mut rt = Runtime::new(RuntimeConfig::base());
    let pools: Vec<_> = (0..32)
        .map(|i| {
            rt.pool_create(&format!("bench{i}"), 1 << 16)
                .expect("pool_create at bench scale")
        })
        .collect();
    let hit_oid = ObjectId::new(pools[0], 64);
    {
        r.bench("runtime", "oid_direct_predictor_hit", DEREFS, move || {
            for _ in 0..DEREFS {
                std::hint::black_box(rt.deref(hit_oid, None).expect("mapped oid"));
            }
            rt.take_trace(); // keep the recorded trace from accumulating
        });
    }
    let mut rt = Runtime::new(RuntimeConfig::base());
    let pools: Vec<_> = (0..32)
        .map(|i| {
            rt.pool_create(&format!("bench{i}"), 1 << 16)
                .expect("pool_create at bench scale")
        })
        .collect();
    let alternating: Vec<ObjectId> = (0..DEREFS as usize)
        .map(|i| ObjectId::new(pools[i % 32], 64))
        .collect();
    r.bench("runtime", "oid_direct_predictor_miss", DEREFS, move || {
        for &o in &alternating {
            std::hint::black_box(rt.deref(o, None).expect("mapped oid"));
        }
        rt.take_trace();
    });
}

/// Registers the end-to-end replay benchmarks: a representative OPT
/// trace (BST, RANDOM) replayed on both core models.
fn replay_benches(r: &mut Runner) {
    let run =
        poat_harness::runner::run_micro(Micro::Bst, Pattern::Random, ExpConfig::Opt, Scale::Quick);
    let ops = run.trace.len() as u64;
    let cfg = SimConfig::default();
    {
        let (trace, state, cfg) = (run.trace.clone(), run.state.clone(), cfg.clone());
        r.bench("replay", "inorder_bst_random", ops, move || {
            std::hint::black_box(
                simulate_inorder(&trace, &state, &cfg).expect("supported core/design combination"),
            );
        });
    }
    let (trace, state, cfg) = (run.trace, run.state, cfg);
    r.bench("replay", "ooo_bst_random", ops, move || {
        std::hint::black_box(
            simulate_ooo(&trace, &state, &cfg).expect("supported core/design combination"),
        );
    });
}

/// Registers the static-analyzer throughput benchmarks: lexing and
/// IR+CFG construction over the real workspace sources. The analyzer
/// runs on every CI pass, so its own cost is tracked here like any
/// other hot path; `bytes_per_iter` is the total source footprint, so
/// the B/op column reads as average file size and regressions show up
/// as ns/file drift.
fn analyzer_benches(r: &mut Runner) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = poat_analyzer::Workspace::load(&root)
        .expect("workspace sources readable from the source tree");
    let texts: Vec<String> = ws.rust_files().map(|f| f.text.clone()).collect();
    let files = texts.len() as u64;
    let bytes: u64 = texts.iter().map(|t| t.len() as u64).sum();
    {
        let texts = texts.clone();
        r.bench_bytes("analyzer", "lex_workspace", files, bytes, move || {
            for t in &texts {
                std::hint::black_box(poat_analyzer::lexer::lex(t));
            }
        });
    }
    let lexed: Vec<_> = texts.iter().map(|t| poat_analyzer::lexer::lex(t)).collect();
    r.bench_bytes("analyzer", "ir_cfg_workspace", files, bytes, move || {
        for l in &lexed {
            for f in poat_analyzer::ir::functions(&l.tokens) {
                std::hint::black_box(poat_analyzer::cfg::Cfg::build(&f));
            }
        }
    });
}

/// Registers every benchmark in the suite, plus (optionally) the
/// Figure-9 quick-matrix wall-clock budget check.
pub fn register(r: &mut Runner, include_budget: bool) {
    translation_benches(r);
    memory_benches(r);
    trace_benches(r);
    runtime_benches(r);
    replay_benches(r);
    analyzer_benches(r);
    if include_budget {
        r.budget("fig9_quick_matrix", FIG9_QUICK_BUDGET, || {
            std::hint::black_box(experiments::main_matrix(Scale::Quick));
        });
        if full_budget_requested() {
            r.budget("fig9_full_matrix", FIG9_FULL_BUDGET, || {
                std::hint::black_box(experiments::main_matrix(Scale::Full));
            });
        }
    }
}

/// Publishes the run's aggregate footprint into the global telemetry
/// registry (`bench.*` — docs/METRICS.md), so a bench pass shows up in
/// metrics snapshots like every other subsystem.
pub fn publish_metrics(report: &BenchReport, wall: Duration) {
    let registry = poat_telemetry::global();
    registry
        .counter("bench.suite.benchmarks")
        .add(report.records.len() as u64);
    registry
        .gauge("bench.suite.wall_nanos")
        .set(wall.as_nanos() as u64);
    for b in &report.budgets {
        let name = b.id.strip_prefix("budget/").unwrap_or(&b.id);
        registry
            .gauge(&poat_telemetry::labeled(
                "bench.budget.wall_nanos",
                &[("budget", name)],
            ))
            .set(b.wall_ns);
    }
}

/// Runs the full suite with the given options: registers everything,
/// measures, publishes `bench.*` telemetry, and returns the report.
/// The optional `progress` callback receives each finished record.
pub fn run_suite(
    opts: crate::runner::BenchOptions,
    mode: &str,
    filter: Option<String>,
    include_budget: bool,
    progress: Option<Box<dyn FnMut(&crate::report::BenchRecord)>>,
) -> BenchReport {
    let t0 = Instant::now();
    let mut r = Runner::new(opts);
    r.set_filter(filter);
    if let Some(p) = progress {
        r.on_record(p);
    }
    register(&mut r, include_budget);
    let report = r.into_report(mode);
    publish_metrics(&report, t0.elapsed());
    report
}

/// Enumerates the suite's benchmark (and budget) ids without running
/// any benchmark body — `bench-run --list`.
pub fn list_suite(include_budget: bool) -> BenchReport {
    let mut r = Runner::new(crate::runner::BenchOptions::smoke());
    r.set_dry_run(true);
    register(&mut r, include_budget);
    r.into_report("list")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_ops_encode_within_budget() {
        let ops = canned_ops(4096, 0xBEEF);
        let t = encode(&ops);
        assert!(t.len() > 3500, "coalescing should not collapse the mix");
        let bpo = t.encoded_bytes() as f64 / t.len() as f64;
        assert!(
            bpo <= 12.0,
            "canned mix must respect the DESIGN.md budget, got {bpo:.2}"
        );
        // Deterministic: same seed, same bytes.
        assert_eq!(t, encode(&canned_ops(4096, 0xBEEF)));
    }

    #[test]
    fn suite_smoke_filtered_runs_quickly_and_reports() {
        // One cheap benchmark end-to-end through the real registration
        // path: proves ids are stable and the runner wiring works.
        let opts = crate::runner::BenchOptions {
            warmup: Duration::from_micros(200),
            target_sample: Duration::from_micros(200),
            samples: 5,
            max_iters: 1 << 16,
        };
        let report = run_suite(opts, "smoke", Some("tlb_mru_hit".into()), false, None);
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].id, "memory/tlb_mru_hit");
        assert!(report.records[0].median_ns > 0.0);
        assert!(report.budgets.is_empty());
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! The hand-rolled benchmark runner: warmup, iteration calibration,
//! sampling, and outlier rejection — fully offline, no criterion.
//!
//! The measurement protocol per benchmark (docs/BENCHMARKS.md):
//!
//! 1. **Calibrate** — double the per-sample iteration count until one
//!    sample takes at least the target sample time, so `Instant`
//!    resolution and loop overhead are amortized away for cheap bodies.
//! 2. **Warm up** — run the calibrated sample repeatedly for the warmup
//!    window, untimed, so caches/branch predictors (and the structures
//!    under test) reach steady state.
//! 3. **Sample** — time a fixed number of samples at the calibrated
//!    iteration count.
//! 4. **Summarize** — reject high-side outliers and reduce to
//!    median/p10/p90 via [`crate::stats::summarize`].
//!
//! Iteration counts are pinned per benchmark *within* a run, but a
//! committed baseline and a later run may calibrate differently on
//! different hosts — which is why the comparator works on per-iteration
//! medians, never on sample counts or totals.

use std::time::{Duration, Instant};

use crate::report::{BenchRecord, BenchReport, BudgetRecord, BuildMeta};
use crate::stats;

/// Tuning knobs for one runner instance.
#[derive(Clone, Copy, Debug)]
pub struct BenchOptions {
    /// Untimed warmup per benchmark.
    pub warmup: Duration,
    /// Minimum elapsed time one timing sample must cover; the calibrator
    /// grows the iteration count until a sample reaches this.
    pub target_sample: Duration,
    /// Timing samples to collect per benchmark.
    pub samples: usize,
    /// Hard cap on iterations per sample (runaway guard for
    /// sub-nanosecond bodies).
    pub max_iters: u64,
}

impl BenchOptions {
    /// CI preset: small windows, enough to smoke-test every benchmark
    /// body and exercise the comparator, not enough for a stable
    /// baseline.
    pub fn smoke() -> Self {
        BenchOptions {
            warmup: Duration::from_millis(10),
            target_sample: Duration::from_millis(1),
            samples: 10,
            max_iters: 1 << 22,
        }
    }

    /// Baseline preset: what `scripts/bench.sh` uses for the committed
    /// `BENCH_<n>.json` files.
    pub fn committed() -> Self {
        BenchOptions {
            warmup: Duration::from_millis(100),
            target_sample: Duration::from_millis(10),
            samples: 30,
            max_iters: 1 << 26,
        }
    }
}

/// Collects [`BenchRecord`]s as benchmarks run; finished with
/// [`Runner::into_report`].
pub struct Runner {
    opts: BenchOptions,
    records: Vec<BenchRecord>,
    budgets: Vec<BudgetRecord>,
    filter: Option<String>,
    dry_run: bool,
    progress: Option<Box<dyn FnMut(&BenchRecord)>>,
}

impl Runner {
    /// Creates a runner with the given options.
    pub fn new(opts: BenchOptions) -> Self {
        Runner {
            opts,
            records: Vec::new(),
            budgets: Vec::new(),
            filter: None,
            dry_run: false,
            progress: None,
        }
    }

    /// In dry-run mode benchmark bodies never execute: each selected
    /// benchmark records a zeroed placeholder (so ids can be listed)
    /// and budget subjects are skipped entirely.
    pub fn set_dry_run(&mut self, dry: bool) {
        self.dry_run = dry;
    }

    /// Only benchmarks whose `group/name` id contains `needle` run;
    /// budget checks are filtered the same way.
    pub fn set_filter(&mut self, needle: Option<String>) {
        self.filter = needle;
    }

    /// Registers a callback invoked after each benchmark completes
    /// (the `bench-run` binary prints a progress line from it; the
    /// library itself never prints).
    pub fn on_record(&mut self, f: impl FnMut(&BenchRecord) + 'static) {
        self.progress = Some(Box::new(f));
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|n| id.contains(n))
    }

    /// Runs one benchmark. `ops_per_iter` declares how many logical
    /// operations one call of `body` performs (for ops/s); `body` is the
    /// measured unit and should end in `std::hint::black_box` on its
    /// results so the work is not optimized away.
    pub fn bench(&mut self, group: &str, name: &str, ops_per_iter: u64, body: impl FnMut()) {
        self.bench_inner(group, name, ops_per_iter, None, body);
    }

    /// [`Runner::bench`] for bodies with a known payload size:
    /// `bytes_per_iter / ops_per_iter` is recorded as the benchmark's
    /// B/op figure (the trace-encoding family reports its measured
    /// footprint this way).
    pub fn bench_bytes(
        &mut self,
        group: &str,
        name: &str,
        ops_per_iter: u64,
        bytes_per_iter: u64,
        body: impl FnMut(),
    ) {
        self.bench_inner(group, name, ops_per_iter, Some(bytes_per_iter), body);
    }

    fn bench_inner(
        &mut self,
        group: &str,
        name: &str,
        ops_per_iter: u64,
        bytes_per_iter: Option<u64>,
        mut body: impl FnMut(),
    ) {
        let id = format!("{group}/{name}");
        if !self.selected(&id) {
            return;
        }
        if self.dry_run {
            self.records.push(BenchRecord {
                id,
                median_ns: 0.0,
                p10_ns: 0.0,
                p90_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
                samples: 0,
                outliers_dropped: 0,
                iters: 0,
                ops_per_iter,
                ops_per_sec: 0.0,
                bytes_per_op: bytes_per_iter.map(|b| b as f64 / ops_per_iter.max(1) as f64),
            });
            return;
        }

        // 1. Calibrate the per-sample iteration count.
        let mut iters: u64 = 1;
        loop {
            let elapsed = time_iters(&mut body, iters);
            if elapsed >= self.opts.target_sample || iters >= self.opts.max_iters {
                break;
            }
            // Jump straight to the projected count when the measurement
            // is trustworthy; otherwise double.
            iters = if elapsed > Duration::from_micros(50) {
                let scale = self.opts.target_sample.as_secs_f64() / elapsed.as_secs_f64();
                ((iters as f64 * scale * 1.2) as u64)
                    .clamp(iters + 1, iters.saturating_mul(8).min(self.opts.max_iters))
            } else {
                iters.saturating_mul(2).min(self.opts.max_iters)
            };
        }

        // 2. Warm up, untimed.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.opts.warmup {
            time_iters(&mut body, iters);
        }

        // 3. Sample.
        let mut samples_ns = Vec::with_capacity(self.opts.samples);
        for _ in 0..self.opts.samples {
            let elapsed = time_iters(&mut body, iters);
            samples_ns.push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }

        // 4. Summarize.
        let s = stats::summarize(&samples_ns);
        let ops_per_sec = if s.median_ns > 0.0 {
            ops_per_iter as f64 / (s.median_ns * 1e-9)
        } else {
            0.0
        };
        let record = BenchRecord {
            id,
            median_ns: s.median_ns,
            p10_ns: s.p10_ns,
            p90_ns: s.p90_ns,
            min_ns: s.min_ns,
            max_ns: s.max_ns,
            samples: s.samples_kept,
            outliers_dropped: s.outliers_dropped,
            iters,
            ops_per_iter,
            ops_per_sec,
            bytes_per_op: bytes_per_iter.map(|b| b as f64 / ops_per_iter.max(1) as f64),
        };
        if let Some(cb) = &mut self.progress {
            cb(&record);
        }
        self.records.push(record);
    }

    /// Runs `body` exactly once against a wall-clock budget (the
    /// Figure-9 quick-matrix check). No warmup, no sampling: budget
    /// subjects are whole pipelines where a single run is already
    /// seconds long and the question is "did it stay inside its box",
    /// not "what is its distribution".
    pub fn budget(&mut self, name: &str, budget: Duration, body: impl FnOnce()) {
        let id = format!("budget/{name}");
        if !self.selected(&id) {
            return;
        }
        if self.dry_run {
            self.budgets.push(BudgetRecord {
                id,
                wall_ns: 0,
                budget_ns: budget.as_nanos() as u64,
                within_budget: true,
            });
            return;
        }
        let t0 = Instant::now();
        body();
        let wall = t0.elapsed();
        self.budgets.push(BudgetRecord {
            id,
            wall_ns: wall.as_nanos() as u64,
            budget_ns: budget.as_nanos() as u64,
            within_budget: wall <= budget,
        });
    }

    /// Finishes the run, stamping provenance and the runner mode.
    pub fn into_report(self, mode: &str) -> BenchReport {
        BenchReport {
            schema_version: crate::report::BENCH_SCHEMA_VERSION,
            mode: mode.to_string(),
            build: BuildMeta::collect(),
            records: self.records,
            budgets: self.budgets,
        }
    }
}

/// Times `iters` calls of `body` with one `Instant` pair.
fn time_iters(body: &mut impl FnMut(), iters: u64) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        body();
    }
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> BenchOptions {
        BenchOptions {
            warmup: Duration::from_micros(100),
            target_sample: Duration::from_micros(100),
            samples: 6,
            max_iters: 1 << 16,
        }
    }

    #[test]
    fn runner_produces_sane_record() {
        let mut r = Runner::new(tiny_opts());
        let mut x = 0u64;
        r.bench("unit", "wrapping_add", 1, move || {
            x = std::hint::black_box(x.wrapping_add(3));
        });
        let report = r.into_report("smoke");
        assert_eq!(report.records.len(), 1);
        let rec = &report.records[0];
        assert_eq!(rec.id, "unit/wrapping_add");
        assert!(rec.median_ns > 0.0);
        assert!(rec.p10_ns <= rec.median_ns && rec.median_ns <= rec.p90_ns);
        assert!(rec.ops_per_sec > 0.0);
        assert!(rec.iters >= 1);
        assert_eq!(rec.bytes_per_op, None);
    }

    #[test]
    fn filter_skips_unmatched_benchmarks() {
        let mut r = Runner::new(tiny_opts());
        r.set_filter(Some("keep".into()));
        r.bench("unit", "keep_me", 1, || {
            std::hint::black_box(1u64);
        });
        r.bench("unit", "skip_me", 1, || {
            std::hint::black_box(2u64);
        });
        r.budget("skipped_budget", Duration::from_secs(1), || {});
        let report = r.into_report("smoke");
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].id, "unit/keep_me");
        assert!(report.budgets.is_empty());
    }

    #[test]
    fn budget_records_pass_and_fail() {
        let mut r = Runner::new(tiny_opts());
        r.budget("instant", Duration::from_secs(60), || {});
        r.budget("blown", Duration::from_nanos(1), || {
            std::thread::sleep(Duration::from_millis(2));
        });
        let report = r.into_report("smoke");
        assert!(report.budget("budget/instant").unwrap().within_budget);
        let blown = report.budget("budget/blown").unwrap();
        assert!(!blown.within_budget);
        assert!(blown.wall_ns > blown.budget_ns);
    }

    #[test]
    fn bytes_per_op_is_derived() {
        let mut r = Runner::new(tiny_opts());
        r.bench_bytes("unit", "bytes", 100, 350, || {
            std::hint::black_box(0u64);
        });
        let report = r.into_report("smoke");
        assert_eq!(report.records[0].bytes_per_op, Some(3.5));
    }
}

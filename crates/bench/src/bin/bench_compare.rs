// SPDX-License-Identifier: MIT OR Apache-2.0
//! `bench-compare` — diff two `BENCH_<n>.json` reports and enforce the
//! perf trajectory (docs/BENCHMARKS.md).
//!
//! ```text
//! bench-compare OLD.json NEW.json [--threshold PCT] [--warn-only]
//! bench-compare --ledger PATH NEW.json [--threshold PCT] [--warn-only]
//! ```
//!
//! With `--ledger`, the baseline is the newest `bench-run` record in the
//! run ledger (its embedded report JSON) instead of a file on disk.
//!
//! Exit status: 0 when nothing failed (or `--warn-only` was given),
//! 1 on a regression / missing benchmark / blown budget, 2 on usage or
//! I/O errors.

use poat_bench::{compare, BenchReport, DEFAULT_THRESHOLD_PCT};

const USAGE: &str =
    "usage: bench-compare OLD.json NEW.json [--threshold PCT] [--warn-only]\n       \
bench-compare --ledger PATH NEW.json [--threshold PCT] [--warn-only]\n\n\
  OLD.json          committed baseline (e.g. the latest BENCH_<n>.json)\n\
  NEW.json          freshly measured report to judge\n\
  --ledger PATH     take the baseline from the newest bench-run record\n                    \
in the run ledger at PATH (docs/OBSERVABILITY.md)\n\
  --threshold PCT   median regression tolerance in percent (default 10)\n\
  --warn-only       report failures but exit 0 (the CI smoke pass)";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn load(path: &str) -> BenchReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    BenchReport::from_json_str(&text).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")))
}

/// Pulls the baseline report out of the newest `bench-run` ledger
/// record's embedded JSON.
fn load_from_ledger(path: &str) -> BenchReport {
    let ledger = poat_ledger::open_file(std::path::Path::new(path))
        .unwrap_or_else(|e| die(&format!("opening ledger {path}: {e}")));
    let record = ledger
        .records()
        .iter()
        .rev()
        .find(|r| r.data.command == "bench-run" && !r.data.extra.is_empty())
        .unwrap_or_else(|| {
            die(&format!(
                "no bench-run record with a report in ledger {path}"
            ))
        });
    let text = std::str::from_utf8(&record.data.extra).unwrap_or_else(|_| {
        die(&format!(
            "{}: embedded report is not UTF-8",
            record.run_id()
        ))
    });
    let report = BenchReport::from_json_str(text).unwrap_or_else(|e| {
        die(&format!(
            "{}: parsing embedded report: {e}",
            record.run_id()
        ))
    });
    eprintln!(
        "baseline: {} from ledger {path} (mode {}, {} benchmarks)",
        record.run_id(),
        report.mode,
        report.records.len()
    );
    report
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut warn_only = false;
    let mut ledger: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "--ledger" => {
                ledger = Some(
                    args.next()
                        .unwrap_or_else(|| die("missing value for --ledger")),
                );
            }
            "--threshold" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("missing value for --threshold"));
                threshold = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| die(&format!("bad value `{v}` for --threshold")));
            }
            "--warn-only" => warn_only = true,
            other if other.starts_with('-') => die(&format!("unknown argument `{other}`")),
            _ => positional.push(a),
        }
    }
    let (old, new) = match (&ledger, positional.as_slice()) {
        (Some(path), [new_path]) => (load_from_ledger(path), load(new_path)),
        (None, [old_path, new_path]) => (load(old_path), load(new_path)),
        (Some(_), _) => die("--ledger expects exactly one report path (the new report)"),
        (None, _) => die("expected exactly two report paths"),
    };
    let cmp = compare(&old, &new, threshold);
    print!("{}", cmp.text());

    if cmp.failed() {
        if warn_only {
            eprintln!("bench-compare: failures above reported as warnings (--warn-only)");
        } else {
            std::process::exit(1);
        }
    }
}

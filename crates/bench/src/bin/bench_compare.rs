// SPDX-License-Identifier: MIT OR Apache-2.0
//! `bench-compare` — diff two `BENCH_<n>.json` reports and enforce the
//! perf trajectory (docs/BENCHMARKS.md).
//!
//! ```text
//! bench-compare OLD.json NEW.json [--threshold PCT] [--warn-only]
//! ```
//!
//! Exit status: 0 when nothing failed (or `--warn-only` was given),
//! 1 on a regression / missing benchmark / blown budget, 2 on usage or
//! I/O errors.

use poat_bench::{compare, BenchReport, DEFAULT_THRESHOLD_PCT};

const USAGE: &str = "usage: bench-compare OLD.json NEW.json [--threshold PCT] [--warn-only]\n\n\
  OLD.json          committed baseline (e.g. the latest BENCH_<n>.json)\n\
  NEW.json          freshly measured report to judge\n\
  --threshold PCT   median regression tolerance in percent (default 10)\n\
  --warn-only       report failures but exit 0 (the CI smoke pass)";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn load(path: &str) -> BenchReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    BenchReport::from_json_str(&text).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")))
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut warn_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "--threshold" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("missing value for --threshold"));
                threshold = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| die(&format!("bad value `{v}` for --threshold")));
            }
            "--warn-only" => warn_only = true,
            other if other.starts_with('-') => die(&format!("unknown argument `{other}`")),
            _ => positional.push(a),
        }
    }
    let [old_path, new_path] = positional.as_slice() else {
        die("expected exactly two report paths");
    };

    let old = load(old_path);
    let new = load(new_path);
    let cmp = compare(&old, &new, threshold);
    print!("{}", cmp.text());

    if cmp.failed() {
        if warn_only {
            eprintln!("bench-compare: failures above reported as warnings (--warn-only)");
        } else {
            std::process::exit(1);
        }
    }
}

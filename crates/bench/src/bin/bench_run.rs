// SPDX-License-Identifier: MIT OR Apache-2.0
//! `bench-run` — measure the hot-path suite and write a `BENCH_<n>.json`
//! report (docs/BENCHMARKS.md).
//!
//! ```text
//! bench-run [--mode smoke|committed] [--out PATH] [--filter SUBSTR]
//!           [--no-budget] [--list] [--ledger PATH]
//! ```

use poat_bench::{suite, BenchOptions};

const USAGE: &str = "usage: bench-run [--mode smoke|committed] [--out PATH] [--filter SUBSTR] [--no-budget] [--list] [--ledger PATH]\n\n\
  --mode smoke      CI preset: short windows, fast, noisy\n\
  --mode committed  baseline preset (default): what scripts/bench.sh commits\n\
  --out PATH        write the JSON report here (default: stdout)\n\
  --filter SUBSTR   only run benchmarks whose group/name id contains SUBSTR\n\
  --no-budget       skip the fig9 quick-matrix wall-clock budget check\n\
  --list            print benchmark ids without measuring and exit\n\
  --ledger PATH     append the report to the run ledger at PATH\n                    \
(bench-compare --ledger reads its baseline back out;\n                    \
docs/OBSERVABILITY.md)";

fn value_of(flag: &str, args: &mut impl Iterator<Item = String>) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("error: missing value for {flag}\n{USAGE}");
        std::process::exit(2);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut mode = "committed".to_string();
    let mut out: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut include_budget = true;
    let mut list = false;
    let mut ledger: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "--mode" => {
                mode = value_of("--mode", &mut args);
                if mode != "smoke" && mode != "committed" {
                    eprintln!("error: bad value `{mode}` for --mode\n{USAGE}");
                    std::process::exit(2);
                }
            }
            "--out" => out = Some(value_of("--out", &mut args)),
            "--filter" => filter = Some(value_of("--filter", &mut args)),
            "--no-budget" => include_budget = false,
            "--list" => list = true,
            "--ledger" => ledger = Some(value_of("--ledger", &mut args)),
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if cfg!(debug_assertions) && mode == "committed" {
        eprintln!(
            "warning: committed-mode numbers from a debug build are meaningless; \
             use `cargo run --release` (the report will be stamped profile=debug)"
        );
    }

    let opts = match mode.as_str() {
        "smoke" => BenchOptions::smoke(),
        _ => BenchOptions::committed(),
    };

    if list {
        let listing = suite::list_suite(include_budget);
        for r in &listing.records {
            println!("{}", r.id);
        }
        for b in &listing.budgets {
            println!("{}", b.id);
        }
        return;
    }

    let started = std::time::Instant::now();
    let report = suite::run_suite(
        opts,
        &mode,
        filter,
        include_budget,
        Some(Box::new(|r: &poat_bench::BenchRecord| {
            let bpo = r
                .bytes_per_op
                .map(|b| format!("  {b:.2} B/op"))
                .unwrap_or_default();
            eprintln!(
                "{:<40} median {:>12.1} ns/iter  p10 {:>10.1}  p90 {:>10.1}  {:>14.0} ops/s{bpo}",
                r.id, r.median_ns, r.p10_ns, r.p90_ns, r.ops_per_sec
            );
        })),
    );

    for b in &report.budgets {
        eprintln!(
            "{:<40} wall {:>10.2} s  budget {:>7.2} s  {}",
            b.id,
            b.wall_ns as f64 * 1e-9,
            b.budget_ns as f64 * 1e-9,
            if b.within_budget { "ok" } else { "EXCEEDED" }
        );
    }

    let json = report.to_json_string();
    match &out {
        Some(path) => {
            std::fs::write(path, format!("{json}\n")).unwrap_or_else(|e| {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "bench report ({} benchmarks, {} budget checks, mode {}) written to {path} in {:.1}s",
                report.records.len(),
                report.budgets.len(),
                report.mode,
                started.elapsed().as_secs_f64()
            );
        }
        None => println!("{json}"),
    }

    if let Some(path) = &ledger {
        // One ledger record per bench run: the per-bench medians land as
        // queryable gauges and the full report JSON rides in `extra`, so
        // `bench-compare --ledger` can reconstruct the baseline.
        let mut data = poat_ledger::RecordData {
            timestamp_unix_secs: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            elapsed_micros: started.elapsed().as_micros() as u64,
            command: "bench-run".to_string(),
            scale: report.mode.clone(),
            git_revision: poat_telemetry::git_revision().unwrap_or_else(|| "unknown".to_string()),
            extra: json.clone().into_bytes(),
            ..poat_ledger::RecordData::default()
        };
        for r in &report.records {
            data.gauges.insert(
                format!("bench.median_ns{{id={}}}", r.id),
                r.median_ns as u64,
            );
        }
        match poat_ledger::open_file(std::path::Path::new(path)) {
            Ok(mut l) => match l.append(data) {
                Ok(seq) => eprintln!(
                    "ledger: appended {} ({} records in {path})",
                    poat_ledger::run_id(seq),
                    l.records().len()
                ),
                Err(e) => eprintln!("warning: ledger append to {path} failed: {e}"),
            },
            Err(e) => eprintln!("warning: opening ledger {path} failed: {e}"),
        }
    }

    // A blown budget fails a committed run: the baseline being minted
    // must not certify an over-budget pipeline. Smoke runs only warn —
    // CI machines are arbitrarily loaded (docs/BENCHMARKS.md).
    let blown = report.budgets.iter().any(|b| !b.within_budget);
    if blown && mode == "committed" {
        eprintln!("error: wall-clock budget exceeded (see above)");
        std::process::exit(1);
    }
}

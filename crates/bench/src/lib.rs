// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-bench — the offline benchmark harness and perf trajectory
//!
//! This crate is the repository's enforceable performance backbone
//! (docs/BENCHMARKS.md):
//!
//! * [`runner`] — a hand-rolled, fully offline benchmark runner
//!   (calibration → warmup → fixed-count sampling → outlier rejection);
//!   no criterion dependency, so the measurement protocol is pinned in
//!   this repo rather than in a vendored stub.
//! * [`stats`] — the order-statistics kernel (median/percentiles,
//!   one-sided Tukey outlier fence).
//! * [`suite`] — the hot-path benchmark definitions: POLB look-ups,
//!   POT walks, cache/TLB hierarchy (including the PR-5 MRU fast
//!   paths), trace encode/decode, `oid_direct`, in-order/OoO replay,
//!   and the Figure-9 quick-matrix wall-clock budget.
//! * [`report`] — the schema-versioned `BENCH_<n>.json` layout.
//! * [`mod@compare`] — the regression comparator the CI gate and release
//!   runs use against the last committed baseline.
//!
//! Binaries: `bench-run` (measure, write a report) and `bench-compare`
//! (diff two reports, non-zero exit on regression). `scripts/bench.sh`
//! drives both; `scripts/ci.sh` runs a smoke pass per commit.
//!
//! Two legacy criterion-compatible targets remain under `benches/`
//! (`experiments.rs`, `components.rs`) for quick interactive use via
//! `cargo bench`; the committed trajectory comes from `bench-run` only.

#![warn(missing_docs)]

pub mod compare;
pub mod report;
pub mod runner;
pub mod stats;
pub mod suite;

pub use compare::{compare, Comparison, DeltaKind, DEFAULT_THRESHOLD_PCT};
pub use report::{BenchRecord, BenchReport, BudgetRecord, BuildMeta, BENCH_SCHEMA_VERSION};
pub use runner::{BenchOptions, Runner};

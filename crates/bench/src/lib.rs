// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-bench — Criterion benchmarks
//!
//! Two benchmark suites:
//!
//! * `benches/experiments.rs` — one Criterion target per paper artifact
//!   (Table 2, Figure 9a/9b + Table 8, Figure 10, Figure 11 + Table 9,
//!   Figure 12), each regenerating the artifact at smoke scale. Run the
//!   `repro` binary for paper-scale numbers; these targets track the
//!   wall-clock cost of the reproduction pipeline itself.
//! * `benches/components.rs` — microbenchmarks of the building blocks:
//!   POLB look-ups, POT walks, software `oid_direct`, cache accesses,
//!   runtime allocation/transaction primitives, and core-model replay
//!   throughput.

#![warn(missing_docs)]

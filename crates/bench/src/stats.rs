// SPDX-License-Identifier: MIT OR Apache-2.0
//! The statistics kernel behind every benchmark record.
//!
//! Everything here is deliberately boring: sorted-copy order statistics
//! with linear interpolation, and a one-sided Tukey fence for outlier
//! rejection. The bench harness reports **medians** as its primary
//! statistic (docs/BENCHMARKS.md, "Noise and variance") because a median
//! is insensitive to the long right tail that scheduler preemption and
//! cache-warmup effects put on wall-clock samples.

/// Median of a sample set (linear interpolation between the two middle
/// elements for even counts). Returns 0 for an empty slice.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// The `q`-th percentile (`0 ≤ q ≤ 100`) of a sample set, by sorting a
/// copy and interpolating linearly between the two nearest ranks (the
/// same "linear" method as numpy's default). Returns 0 for an empty
/// slice; `q` outside `[0, 100]` clamps to the extremes.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, q)
}

/// [`percentile`] over an already ascending-sorted slice (no copy).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Order statistics over one benchmark's per-iteration timing samples,
/// after outlier rejection. All times are nanoseconds per iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleSummary {
    /// Median time per iteration.
    pub median_ns: f64,
    /// 10th percentile (fast tail).
    pub p10_ns: f64,
    /// 90th percentile (slow tail).
    pub p90_ns: f64,
    /// Fastest surviving sample.
    pub min_ns: f64,
    /// Slowest surviving sample.
    pub max_ns: f64,
    /// Samples kept after the outlier fence.
    pub samples_kept: u32,
    /// Samples discarded by the outlier fence.
    pub outliers_dropped: u32,
}

/// Summarizes raw per-iteration samples: sorts them, drops high-side
/// outliers beyond the Tukey fence `Q3 + 1.5·IQR`, and computes the
/// order statistics over the survivors.
///
/// The fence is one-sided on purpose. A wall-clock sample can only be
/// *slower* than the true cost (preemption, interrupt, cold frequency
/// governor), never meaningfully faster, so low samples are signal and
/// high stragglers are noise. At least four samples are always kept so
/// the percentiles stay defined even when the fence is tight.
pub fn summarize(samples_ns: &[f64]) -> SampleSummary {
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.is_empty() {
        return SampleSummary {
            median_ns: 0.0,
            p10_ns: 0.0,
            p90_ns: 0.0,
            min_ns: 0.0,
            max_ns: 0.0,
            samples_kept: 0,
            outliers_dropped: 0,
        };
    }
    let q1 = percentile_sorted(&sorted, 25.0);
    let q3 = percentile_sorted(&sorted, 75.0);
    let fence = q3 + 1.5 * (q3 - q1);
    let mut keep = sorted.iter().take_while(|&&s| s <= fence).count();
    keep = keep.max(4.min(sorted.len()));
    let dropped = sorted.len() - keep;
    let kept = &sorted[..keep];
    SampleSummary {
        median_ns: percentile_sorted(kept, 50.0),
        p10_ns: percentile_sorted(kept, 10.0),
        p90_ns: percentile_sorted(kept, 90.0),
        min_ns: kept[0],
        max_ns: kept[keep - 1],
        samples_kept: keep as u32,
        outliers_dropped: dropped as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_is_middle_element() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn median_even_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn median_empty_is_zero() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(percentile(&[], 90.0), 0.0);
    }

    #[test]
    fn percentile_known_inputs() {
        // 0..=100 inclusive: the q-th percentile is exactly q.
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 10.0), 10.0);
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 90.0), 90.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        // [10, 20]: the 25th percentile sits a quarter of the way up.
        assert_eq!(percentile(&[20.0, 10.0], 25.0), 12.5);
    }

    #[test]
    fn percentile_clamps_out_of_range_q() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -5.0), 1.0);
        assert_eq!(percentile(&xs, 250.0), 3.0);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn summarize_drops_high_outliers_only() {
        // 19 tight samples and one 100× straggler: the straggler is
        // fenced out, the fast minimum survives.
        let mut xs: Vec<f64> = (0..19).map(|i| 100.0 + i as f64).collect();
        xs.push(10_000.0);
        let s = summarize(&xs);
        assert_eq!(s.outliers_dropped, 1);
        assert_eq!(s.samples_kept, 19);
        assert_eq!(s.min_ns, 100.0);
        assert_eq!(s.max_ns, 118.0);
        assert_eq!(s.median_ns, 109.0);
        assert!(s.p10_ns >= 100.0 && s.p10_ns <= s.median_ns);
        assert!(s.p90_ns >= s.median_ns && s.p90_ns <= s.max_ns);
    }

    #[test]
    fn summarize_keeps_at_least_four_samples() {
        // A pathological set where the fence would cut to one sample.
        let s = summarize(&[1.0, 1000.0, 2000.0, 3000.0, 4000.0]);
        assert!(s.samples_kept >= 4);
    }

    #[test]
    fn summarize_uniform_samples_unchanged() {
        let s = summarize(&[50.0; 10]);
        assert_eq!(s.outliers_dropped, 0);
        assert_eq!(s.median_ns, 50.0);
        assert_eq!(s.p10_ns, 50.0);
        assert_eq!(s.p90_ns, 50.0);
    }

    #[test]
    fn summarize_empty_is_zeroed() {
        let s = summarize(&[]);
        assert_eq!(s.samples_kept, 0);
        assert_eq!(s.median_ns, 0.0);
    }
}

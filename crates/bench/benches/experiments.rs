//! One Criterion target per paper artifact, at smoke scale.
//!
//! `cargo bench -p poat-bench --bench experiments` regenerates every
//! table/figure pipeline end-to-end (workload execution + trace + timing
//! simulation); the `repro` binary prints the paper-scale numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use poat_harness::experiments;
use poat_harness::Scale;

fn bench_artifacts(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifacts");
    g.sample_size(10);

    g.bench_function("table2", |b| {
        b.iter(|| experiments::table2(Scale::Quick));
    });
    g.bench_function("fig9_table8_instrs", |b| {
        b.iter(|| experiments::main_matrix(Scale::Quick));
    });
    g.bench_function("fig10", |b| {
        b.iter(|| experiments::fig10(Scale::Quick));
    });
    g.bench_function("fig11_table9", |b| {
        b.iter(|| experiments::fig11(Scale::Quick));
    });
    g.bench_function("fig12", |b| {
        b.iter(|| experiments::fig12(Scale::Quick));
    });
    g.finish();
}

criterion_group!(benches, bench_artifacts);
criterion_main!(benches);

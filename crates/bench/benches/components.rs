//! Microbenchmarks of the system's building blocks: translation
//! structures, cache models, runtime primitives, and core-model replay
//! throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use poat_core::polb::{ParallelPolb, PipelinedPolb, TranslationBuffer};
use poat_core::{ObjectId, PoolId, Pot, VirtAddr};
use poat_pmem::{Runtime, RuntimeConfig, TranslationMode};
use poat_sim::{simulate_inorder, simulate_ooo, SimConfig};
use poat_workloads::{ExpConfig, Micro, Pattern};

fn pool(n: u32) -> PoolId {
    PoolId::new(n).unwrap()
}

fn bench_translation_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation");

    // POLB hit-path look-up, both designs, 32 entries (paper default).
    let mut pipe = PipelinedPolb::new(32);
    let mut par = ParallelPolb::new(32);
    for i in 1..=32u32 {
        let oid = ObjectId::new(pool(i), 0);
        pipe.fill(oid, (i as u64) << 32);
        par.fill(oid, (i as u64) << 12);
    }
    let oids: Vec<ObjectId> = (1..=32u32).map(|i| ObjectId::new(pool(i), 64)).collect();
    g.throughput(Throughput::Elements(oids.len() as u64));
    g.bench_function("polb_pipelined_hit", |b| {
        b.iter(|| {
            for &oid in &oids {
                black_box(pipe.translate(oid));
            }
        });
    });
    g.bench_function("polb_parallel_hit", |b| {
        b.iter(|| {
            for &oid in &oids {
                black_box(par.translate(oid));
            }
        });
    });

    // POT hardware walk at paper size (16384 entries, 1000 pools mapped).
    let mut pot = Pot::new(16384);
    for i in 1..=1000u32 {
        pot.insert(pool(i), VirtAddr::new((i as u64) << 32))
            .unwrap();
    }
    g.throughput(Throughput::Elements(1000));
    g.bench_function("pot_walk", |b| {
        b.iter(|| {
            for i in 1..=1000u32 {
                black_box(pot.walk(pool(i)));
            }
        });
    });

    // Software oid_direct (predictor hit and miss paths).
    let mut rt = Runtime::new(RuntimeConfig::base());
    let pools: Vec<_> = (0..32)
        .map(|i| rt.pool_create(&format!("p{i}"), 1 << 16).unwrap())
        .collect();
    let oid_hits = ObjectId::new(pools[0], 64);
    g.throughput(Throughput::Elements(1));
    g.bench_function("oid_direct_predictor_hit", |b| {
        b.iter(|| {
            let r = black_box(rt.deref(oid_hits, None).unwrap());
            rt.take_trace();
            r
        });
    });
    let alternating: Vec<ObjectId> = (0..64).map(|i| ObjectId::new(pools[i % 32], 64)).collect();
    g.throughput(Throughput::Elements(alternating.len() as u64));
    g.bench_function("oid_direct_predictor_miss", |b| {
        b.iter(|| {
            for &oid in &alternating {
                black_box(rt.deref(oid, None).unwrap());
            }
            rt.take_trace();
        });
    });
    g.finish();
}

fn bench_runtime_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    let mut rt = Runtime::new(RuntimeConfig {
        mode: TranslationMode::Hardware,
        ..RuntimeConfig::default()
    });
    let p = rt.pool_create("bench", 32 << 20).unwrap();

    g.bench_function("pmalloc_pfree", |b| {
        b.iter(|| {
            let oid = rt.pmalloc(p, 64).unwrap();
            rt.pfree(black_box(oid)).unwrap();
            rt.take_trace(); // keep the recorded trace from accumulating
        });
    });

    let oid = rt.pmalloc(p, 64).unwrap();
    g.bench_function("write_persist_8B", |b| {
        b.iter(|| {
            rt.write_u64(oid, 42).unwrap();
            rt.persist(oid, 8).unwrap();
            rt.take_trace();
        });
    });

    g.bench_function("transaction_roundtrip", |b| {
        b.iter(|| {
            rt.tx_begin(p).unwrap();
            rt.tx_add_range(oid, 64).unwrap();
            rt.write_u64(oid, 7).unwrap();
            rt.tx_end().unwrap();
            rt.take_trace();
        });
    });
    g.finish();
}

fn bench_simulators(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);

    // A representative OPT trace (BST, RANDOM pattern).
    let seed = 42;
    let mut rt = Runtime::new(ExpConfig::Opt.runtime_config(seed));
    Micro::Bst
        .run_ops(&mut rt, Pattern::Random, seed, 500)
        .unwrap();
    let trace = rt.take_trace();
    let state = rt.machine_state();
    let cfg = SimConfig::default();
    let ops = trace.len() as u64;

    g.throughput(Throughput::Elements(ops));
    g.bench_function("inorder_replay", |b| {
        b.iter(|| black_box(simulate_inorder(&trace, &state, &cfg).unwrap()));
    });
    g.bench_function("ooo_replay", |b| {
        b.iter(|| black_box(simulate_ooo(&trace, &state, &cfg).unwrap()));
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_gen");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    for bench in [Micro::Ll, Micro::Bst, Micro::Bpt] {
        g.bench_function(format!("{bench}_random_100ops"), |b| {
            b.iter(|| {
                let seed = rng.gen();
                let mut rt = Runtime::new(ExpConfig::Opt.runtime_config(seed));
                black_box(bench.run_ops(&mut rt, Pattern::Random, seed, 100).unwrap());
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_translation_structures,
    bench_runtime_primitives,
    bench_simulators,
    bench_workload_generation
);
criterion_main!(benches);

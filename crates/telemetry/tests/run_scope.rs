//! Run-scope isolation for span series.
//!
//! These tests assert on the *global* registry (run scoping only applies
//! there), so they live in their own integration-test binary where no
//! unrelated test trips the same series.

use std::sync::{Arc, Barrier};

fn counter(name: &str) -> u64 {
    poat_telemetry::global().counter(name).get()
}

fn hist_count(name: &str) -> u64 {
    poat_telemetry::global().histogram(name).count()
}

#[test]
fn concurrent_runs_do_not_contaminate_each_others_series() {
    let timer = poat_telemetry::global().span_timer("scope_conc");
    let barrier = Arc::new(Barrier::new(2));
    let spawn = |label: &'static str, spans: usize| {
        let timer = timer.clone();
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            let _scope = poat_telemetry::run_scope(label);
            barrier.wait();
            for _ in 0..spans {
                drop(timer.start());
            }
        })
    };
    let a = spawn("alpha", 5);
    let b = spawn("beta", 9);
    a.join().unwrap();
    b.join().unwrap();

    // Each run's scoped series carries exactly its own spans…
    assert_eq!(counter("span.scope_conc.count{run=alpha}"), 5);
    assert_eq!(counter("span.scope_conc.count{run=beta}"), 9);
    assert_eq!(hist_count("span.scope_conc.nanos{run=alpha}"), 5);
    assert_eq!(hist_count("span.scope_conc.nanos{run=beta}"), 9);
    // …while the unscoped series still aggregates everything.
    assert_eq!(counter("span.scope_conc.count"), 14);
    assert_eq!(hist_count("span.scope_conc.nanos"), 14);
}

#[test]
fn scopes_nest_and_restore() {
    let timer = poat_telemetry::global().span_timer("scope_nest");
    {
        let _outer = poat_telemetry::run_scope("outer");
        drop(timer.start());
        {
            let _inner = poat_telemetry::run_scope("inner");
            drop(timer.start());
        }
        // The inner guard restored the outer scope.
        drop(timer.start());
    }
    // No scope: only the unscoped series records.
    drop(timer.start());

    assert_eq!(counter("span.scope_nest.count{run=outer}"), 2);
    assert_eq!(counter("span.scope_nest.count{run=inner}"), 1);
    assert_eq!(counter("span.scope_nest.count"), 4);
}

#[test]
fn isolated_registries_ignore_run_scopes() {
    let isolated = poat_telemetry::Registry::new();
    let _scope = poat_telemetry::run_scope("iso");
    {
        let _span = isolated.span("scope_iso");
    }
    // The isolated registry recorded normally…
    assert_eq!(isolated.counter("span.scope_iso.count").get(), 1);
    // …and nothing leaked a scoped series into the global registry.
    assert_eq!(counter("span.scope_iso.count{run=iso}"), 0);
    assert_eq!(counter("span.scope_iso.count"), 0);
}

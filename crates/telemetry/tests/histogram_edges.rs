// SPDX-License-Identifier: MIT OR Apache-2.0
//! Edge-case pins for `HistogramSnapshot` percentile behavior: empty
//! histograms, single samples, extreme values, and the quantile-range
//! boundaries. These are the cases the ledger and the profiler's
//! self-time table lean on, so their behavior is contractual.

use poat_telemetry::Registry;

#[test]
fn empty_histogram_percentiles_are_zero() {
    let r = Registry::new();
    let h = r.histogram("t.empty");
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(h.percentile(q), 0, "q={q} on an empty histogram");
    }
    let s = r
        .snapshot(manifest())
        .histograms
        .get("t.empty")
        .cloned()
        .unwrap();
    assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
    assert_eq!((s.p50, s.p90, s.p99), (0, 0, 0));
    assert_eq!(s.mean, 0.0);
    assert!(s.buckets.is_empty());
}

#[test]
fn single_sample_dominates_every_percentile() {
    for v in [1u64, 2, 3, 37, 1023, 1024, u64::MAX] {
        let r = Registry::new();
        let h = r.histogram("t.single");
        h.record(v);
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), v, "q={q} with single sample {v}");
        }
    }
}

#[test]
fn single_zero_sample_is_zero_everywhere() {
    let r = Registry::new();
    let h = r.histogram("t.zero");
    h.record(0);
    let s = r
        .snapshot(manifest())
        .histograms
        .get("t.zero")
        .cloned()
        .unwrap();
    assert_eq!((s.count, s.max), (1, 0));
    assert_eq!((s.p50, s.p90, s.p99), (0, 0, 0));
    assert_eq!(s.buckets.len(), 1);
    assert_eq!(s.buckets[0].lower_bound, 0);
}

#[test]
fn percentiles_never_exceed_max_nor_undershoot_bucket_floor() {
    let r = Registry::new();
    let h = r.histogram("t.mixed");
    // Two samples in the same octave: estimates must stay in [512, 700].
    h.record(513);
    h.record(700);
    let s = r
        .snapshot(manifest())
        .histograms
        .get("t.mixed")
        .cloned()
        .unwrap();
    for (q, v) in [("p50", s.p50), ("p90", s.p90), ("p99", s.p99)] {
        assert!((512..=700).contains(&v), "{q}={v} escaped [512, 700]");
    }
    assert!(s.p50 <= s.p90 && s.p90 <= s.p99, "monotone percentiles");
}

#[test]
fn quantile_extremes_are_clamped_to_the_sample_range() {
    let r = Registry::new();
    let h = r.histogram("t.clamp");
    for v in [4u64, 5, 6, 7, 1000] {
        h.record(v);
    }
    // q=0.0 must rank the first sample (never a negative rank), q=1.0 the
    // observed maximum exactly.
    assert!(h.percentile(0.0) >= 4);
    assert_eq!(h.percentile(1.0), 1000);
}

#[test]
fn bimodal_distribution_separates_median_and_tail() {
    let r = Registry::new();
    let h = r.histogram("t.bimodal");
    for _ in 0..90 {
        h.record(8);
    }
    for _ in 0..10 {
        h.record(100_000);
    }
    let s = r
        .snapshot(manifest())
        .histograms
        .get("t.bimodal")
        .cloned()
        .unwrap();
    assert!(s.p50 < 16, "median stays in the low mode, got {}", s.p50);
    assert!(
        s.p99 >= 65_536,
        "p99 must reach the high mode's octave, got {}",
        s.p99
    );
}

fn manifest() -> poat_telemetry::RunManifest {
    poat_telemetry::RunManifest {
        command: "test".into(),
        scale: "quick".into(),
        git_revision: "deadbeef".into(),
        elapsed_seconds: 0.0,
    }
}

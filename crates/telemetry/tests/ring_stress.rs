// SPDX-License-Identifier: MIT OR Apache-2.0
//! Multi-threaded stress test for the event ring — backs the soundness
//! audit on `Slot` in `src/events.rs`: concurrent writers plus a
//! concurrent reader must never observe a torn or cross-generation
//! event, and a quiescent ring must read back exactly.

use poat_telemetry::events::{EventKind, EventRecorder, TraceDesign};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: u64 = 4;
const PER_WRITER: u64 = 20_000;
const CAPACITY: usize = 1024;

/// Each writer `t` records events whose fields are all derived from
/// `(t, k)`: `instr = cycle = t * PER_WRITER + k`, `pool = t`,
/// `arg = k & 0xFFFFF`, `kind` alternating by `k`. Any event assembled
/// from two different writes breaks at least one of those equations.
fn kind_for(k: u64) -> EventKind {
    if k % 2 == 0 {
        EventKind::PolbHit
    } else {
        EventKind::PolbMiss
    }
}

fn check_event(ev: &poat_telemetry::events::TraceEvent) {
    assert_eq!(ev.instr, ev.cycle, "instr/cycle from different writes");
    assert!(ev.pool < WRITERS as u32, "pool {} out of range", ev.pool);
    let t = ev.pool as u64;
    let k = ev
        .instr
        .checked_sub(t * PER_WRITER)
        .expect("pool and instr from different writes");
    assert!(k < PER_WRITER, "instr {} not from writer {}", ev.instr, t);
    assert_eq!(ev.arg as u64, k & 0xFFFFF, "arg from a different write");
    assert_eq!(ev.kind, kind_for(k), "kind from a different write");
    assert_eq!(ev.design, TraceDesign::Pipelined);
}

#[test]
fn concurrent_writers_and_reader_never_observe_torn_events() {
    let ring = Arc::new(EventRecorder::new(CAPACITY, 1));
    let done = Arc::new(AtomicBool::new(false));

    let reader = {
        let ring = Arc::clone(&ring);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut scans = 0u64;
            while !done.load(Ordering::Acquire) {
                let events = ring.events();
                let mut last_seq = 0;
                for ev in &events {
                    check_event(ev);
                    assert!(ev.seq > last_seq, "seqs must be strictly increasing");
                    last_seq = ev.seq;
                }
                scans += 1;
            }
            scans
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for k in 0..PER_WRITER {
                    let stamp = t * PER_WRITER + k;
                    ring.record(
                        kind_for(k),
                        TraceDesign::Pipelined,
                        stamp,
                        stamp,
                        t as u32,
                        (k & 0xFFFFF) as u32,
                    );
                }
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer thread panicked");
    }
    done.store(true, Ordering::Release);
    let scans = reader.join().expect("reader thread panicked");
    assert!(scans > 0, "reader never got a scan in");

    // Quiescent exactness: every ticket was claimed exactly once, and
    // with writers stopped the full window reads back — except slots a
    // wrap-stalled writer published under an older generation, which
    // must be *skipped* (audit point 2), never misread. With writers
    // joined, every slot's final seq is some generation of that slot,
    // so at most one generation per slot can be current and losses are
    // bounded by the writer count.
    let total = WRITERS * PER_WRITER;
    assert_eq!(ring.recorded(), total);
    let events = ring.events();
    assert!(events.len() <= CAPACITY);
    assert!(
        events.len() + WRITERS as usize >= CAPACITY,
        "lost more than one in-flight event per writer: {}",
        events.len()
    );
    let mut last_seq = 0;
    for ev in &events {
        check_event(ev);
        assert!(ev.seq > last_seq);
        assert!(
            ev.seq > total - CAPACITY as u64,
            "event outside the live window"
        );
        last_seq = ev.seq;
    }
}

#[test]
fn single_writer_reads_back_exactly() {
    let ring = EventRecorder::new(CAPACITY, 1);
    for k in 0..(CAPACITY as u64 * 3 + 7) {
        ring.record(
            kind_for(k),
            TraceDesign::Pipelined,
            k,
            k,
            0,
            (k & 0xFFFFF) as u32,
        );
    }
    let events = ring.events();
    assert_eq!(
        events.len(),
        CAPACITY,
        "quiescent single-writer ring is exact"
    );
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.seq, CAPACITY as u64 * 2 + 8 + i as u64);
        assert_eq!(ev.instr, ev.seq - 1);
    }
}

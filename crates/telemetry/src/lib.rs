// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-telemetry
//!
//! The unified telemetry layer for the POAT reproduction. Every layer of
//! the pipeline — NVM device model, POLB/POT hardware structures, the
//! software `oid_direct` translator, the cycle-level simulators, and the
//! experiment harness — publishes into one process-global [`Registry`] of
//! named metrics, and one snapshot call serializes everything to the
//! versioned JSON document described in `docs/METRICS.md`.
//!
//! Three metric kinds cover the pipeline:
//!
//! * [`Counter`] — monotonically increasing `u64` (hits, misses, bytes).
//! * [`Gauge`] — last-write-wins `u64` (occupancy, configured sizes).
//! * [`Histogram`] — log2-bucketed distribution of `u64` samples
//!   (POT probe lengths, span latencies).
//!
//! The hot path is lock-free: handles returned by the registry are
//! `Arc`-shared atomics, so a POLB lookup inside the simulator inner loop
//! costs one relaxed `fetch_add`. The registry mutex is touched only at
//! registration and snapshot time.
//!
//! Phase timing uses span guards: [`Registry::span`] starts a wall-clock
//! timer whose `Drop` records nanoseconds into `span.<phase>.nanos` and
//! bumps `span.<phase>.count`. The canonical phase names used across the
//! workspace are the `PHASE_*` constants.
//!
//! ## Naming convention
//!
//! Metric names are dot-separated `layer.component.quantity` paths, e.g.
//! `core.polb.hits` or `nvm.device.bytes_written`. Per-experiment series
//! add a `{key=value,...}` label suffix built with [`labeled`], e.g.
//! `harness.experiment.polb_hits{artifact=table2,micro=ll,pattern=random}`.
//! The full catalogue lives in `docs/METRICS.md`.

//!
//! Beyond aggregates, the [`events`] module records *per-event* timelines
//! (a lock-free flight-recorder ring buffer threaded through the POLB/POT
//! pipeline) and [`timeline`] exports them as Chrome Trace Format JSON or
//! windowed CSV time series — see `docs/TRACING.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod profile;
pub mod timeline;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::Serialize;

/// Version of the snapshot JSON schema (`schema_version` field).
///
/// Bump on any breaking change to the snapshot layout and document the
/// migration in `docs/METRICS.md`.
pub const SCHEMA_VERSION: u32 = 1;

/// Canonical phase name: workload execution on the persistent runtime.
pub const PHASE_WORKLOAD_EXEC: &str = "workload_exec";
/// Canonical phase name: trace replay through a cycle-level core model.
pub const PHASE_TRACE_REPLAY: &str = "trace_replay";
/// Canonical phase name: POLB/translation-unit simulation of one config.
pub const PHASE_POLB_SIM: &str = "polb_sim";
/// Canonical phase name: POT hash-table walks (software or simulated).
pub const PHASE_POT_WALK: &str = "pot_walk";

/// Number of log2 histogram buckets: bucket 0 holds zeros, bucket `i`
/// (1..=64) holds samples with `i` significant bits.
const HIST_BUCKETS: usize = 65;

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins value. Cloning shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log2-bucketed distribution of `u64` samples. Cloning shares cells.
///
/// Bucket boundaries are powers of two: a sample `v > 0` lands in the
/// bucket whose lower bound is the largest power of two `<= v`; zero has
/// its own bucket. This keeps recording allocation-free and O(1) while
/// preserving order-of-magnitude shape, which is what probe-length and
/// latency distributions need.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) of the recorded samples,
    /// interpolated within the containing log2 bucket — see
    /// [`HistogramSnapshot::percentile`] for the estimation contract.
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().percentile(q)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.0.buckets.iter().enumerate() {
            let count = b.load(Ordering::Relaxed);
            if count > 0 {
                let lower_bound = if i == 0 { 0 } else { 1u64 << (i - 1) };
                buckets.push(BucketCount { lower_bound, count });
            }
        }
        let count = self.count();
        let max = self.max();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            max,
            mean: self.mean(),
            p50: percentile_from(&buckets, count, max, 0.50),
            p90: percentile_from(&buckets, count, max, 0.90),
            p99: percentile_from(&buckets, count, max, 0.99),
            buckets,
        }
    }
}

/// Estimates a quantile from log2 bucket counts: find the bucket holding
/// the target rank, then interpolate linearly at the rank's midpoint
/// within the bucket's `[lower, 2·lower)` range. The estimate is clamped
/// to the observed maximum, so single-bucket distributions stay sane.
fn percentile_from(buckets: &[BucketCount], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for b in buckets {
        if seen + b.count >= rank {
            if b.lower_bound == 0 {
                return 0;
            }
            // The bucket spans [lower, 2·lower), but no sample exceeds the
            // observed max; interpolating toward the effective upper edge
            // makes the top rank land on max for single-bucket tails.
            let lower = b.lower_bound as f64;
            let upper = (2.0 * lower).min(max as f64 + 1.0);
            let frac = (rank - seen) as f64 / b.count as f64;
            let est = lower + (upper - lower) * frac;
            return (est.round() as u64).clamp(b.lower_bound, max);
        }
        seen += b.count;
    }
    max
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named collection of metrics.
///
/// Use [`global()`] for the process-wide registry every pipeline layer
/// publishes into; construct standalone registries only in tests that
/// need isolation.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` already registered as {other:?}, wanted counter"),
        }
    }

    /// Returns the gauge `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` already registered as {other:?}, wanted gauge"),
        }
    }

    /// Returns the histogram `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` already registered as {other:?}, wanted histogram"),
        }
    }

    /// Starts a wall-clock span for `phase`; its guard records
    /// `span.<phase>.nanos` (histogram) and `span.<phase>.count`
    /// (counter) when dropped.
    pub fn span(&self, phase: &str) -> Span {
        self.span_timer(phase).start()
    }

    /// Resolves the metric handles for `phase` once, so hot code can
    /// start spans repeatedly without touching the registry lock.
    pub fn span_timer(&self, phase: &str) -> SpanTimer {
        SpanTimer {
            phase: Arc::from(phase),
            nanos: self.histogram(&format!("span.{phase}.nanos")),
            count: self.counter(&format!("span.{phase}.count")),
            // Run-scoped duplicate series only make sense in the shared
            // global registry; timers on isolated test registries stay
            // unscoped so they cannot leak series into `global()`.
            is_global: std::ptr::eq(self, global()),
            scoped: RefCell::new(None),
        }
    }

    /// Zeroes every registered metric, keeping registrations.
    ///
    /// The harness calls this at process start so a snapshot reflects one
    /// run; tests use it for isolation.
    pub fn reset(&self) {
        let m = self.metrics.lock().unwrap();
        for metric in m.values() {
            match metric {
                Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed),
                Metric::Histogram(h) => {
                    for b in &h.0.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.0.count.store(0, Ordering::Relaxed);
                    h.0.sum.store(0, Ordering::Relaxed);
                    h.0.max.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Captures the current value of every registered metric.
    pub fn snapshot(&self, manifest: RunManifest) -> MetricsSnapshot {
        let m = self.metrics.lock().unwrap();
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            manifest,
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide registry all pipeline layers publish into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Run scoping
// ---------------------------------------------------------------------------

thread_local! {
    static RUN_SCOPE: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// RAII guard returned by [`run_scope`]; dropping it restores the
/// previous scope of the thread (scopes nest).
#[must_use = "the run scope is active only while this guard is alive"]
pub struct RunScope {
    prev: Option<Arc<str>>,
}

/// Tags every span started on this thread with a `run` label until the
/// returned guard drops.
///
/// While a scope is active, each span records into *two* series: the
/// plain process-wide `span.<phase>.nanos` / `.count`, and a duplicate
/// `span.<phase>.nanos{run=<label>}` / `.count{run=<label>}` pair scoped
/// to the labelled run. This is what keeps per-run latency percentiles
/// meaningful when many workload runs execute concurrently on a thread
/// pool: each worker scopes its own runs, so one run's samples cannot
/// contaminate another's distribution.
///
/// The scope is thread-local: work handed to other threads must
/// re-establish it there.
pub fn run_scope(label: &str) -> RunScope {
    let prev = RUN_SCOPE.with(|s| s.replace(Some(Arc::from(label))));
    RunScope { prev }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        RUN_SCOPE.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

fn current_run_scope() -> Option<Arc<str>> {
    RUN_SCOPE.with(|s| s.borrow().clone())
}

/// Pre-resolved handles for one phase's span metrics; [`SpanTimer::start`]
/// is lock-free, so timers can be cached inside simulator structures.
///
/// When a [`run_scope`] is active on the calling thread, `start` also
/// resolves (and caches, per scope label) the run-labelled series, so
/// only the first span under a new scope touches the registry lock.
#[derive(Clone, Debug)]
pub struct SpanTimer {
    phase: Arc<str>,
    nanos: Histogram,
    count: Counter,
    is_global: bool,
    scoped: RefCell<Option<(Arc<str>, Histogram, Counter)>>,
}

impl SpanTimer {
    /// Starts a span; the returned guard records on drop.
    pub fn start(&self) -> Span {
        let scoped = if self.is_global {
            current_run_scope().map(|label| self.scoped_handles(label))
        } else {
            None
        };
        Span {
            nanos: self.nanos.clone(),
            count: self.count.clone(),
            scoped,
            start: Instant::now(),
        }
    }

    fn scoped_handles(&self, label: Arc<str>) -> (Histogram, Counter) {
        let mut cache = self.scoped.borrow_mut();
        if let Some((l, h, c)) = cache.as_ref() {
            if *l == label {
                return (h.clone(), c.clone());
            }
        }
        let phase = &self.phase;
        let run = [("run", &*label)];
        let h = global().histogram(&labeled(&format!("span.{phase}.nanos"), &run));
        let c = global().counter(&labeled(&format!("span.{phase}.count"), &run));
        *cache = Some((label, h.clone(), c.clone()));
        (h, c)
    }
}

/// A live phase timer; dropping it records the elapsed wall-clock time.
/// Obtain via [`Registry::span`].
#[must_use = "a span records its duration when dropped; binding it to `_` drops immediately"]
pub struct Span {
    nanos: Histogram,
    count: Counter,
    scoped: Option<(Histogram, Counter)>,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        self.nanos.record(elapsed);
        self.count.inc();
        if let Some((nanos, count)) = &self.scoped {
            nanos.record(elapsed);
            count.inc();
        }
    }
}

/// Builds a labeled series name: `name{k1=v1,k2=v2}`.
///
/// Labels are emitted in the given order; callers keep a stable order so
/// the same series maps to the same key. Empty `labels` returns `name`
/// unchanged.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", body.join(","))
}

// ---------------------------------------------------------------------------
// Snapshot document
// ---------------------------------------------------------------------------

/// One non-empty log2 bucket of a [`HistogramSnapshot`].
#[derive(Clone, Debug, Serialize)]
pub struct BucketCount {
    /// Inclusive lower bound of the bucket (0 or a power of two).
    pub lower_bound: u64,
    /// Samples that landed in this bucket.
    pub count: u64,
}

/// Point-in-time view of one histogram.
#[derive(Clone, Debug, Serialize)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Estimated median (see [`HistogramSnapshot::percentile`]).
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Non-empty log2 buckets, ascending by lower bound.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile (`0.0..=1.0`) of the snapshot.
    ///
    /// Log2 buckets only bound each sample to `[2^k, 2^{k+1})`, so this is
    /// an *estimate*: the target rank is located in its bucket and
    /// interpolated linearly within the bucket's range, clamped to the
    /// observed maximum. The error is at most one octave — adequate for
    /// tail-latency reporting, which is what the paper's walk-latency
    /// distributions need.
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_from(&self.buckets, self.count, self.max, q)
    }
}

/// Provenance of a metrics snapshot: what ran, at what scale, from which
/// source revision, and for how long.
#[derive(Clone, Debug, Serialize)]
pub struct RunManifest {
    /// The command or artifact selection that produced the run.
    pub command: String,
    /// Experiment scale ("quick" or "full").
    pub scale: String,
    /// Git revision of the source tree, or "unknown" outside a checkout.
    pub git_revision: String,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_seconds: f64,
}

impl RunManifest {
    /// A manifest for `command` at `scale`, with the git revision read
    /// from the enclosing checkout and elapsed time measured from `start`.
    pub fn collect(command: &str, scale: &str, start: Instant) -> Self {
        RunManifest {
            command: command.to_string(),
            scale: scale.to_string(),
            git_revision: git_revision().unwrap_or_else(|| "unknown".to_string()),
            elapsed_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

/// Reads the current git revision by following `.git/HEAD` upward from
/// the current directory — no `git` subprocess, works offline.
pub fn git_revision() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(contents) = std::fs::read_to_string(&head) {
            let contents = contents.trim();
            if let Some(refname) = contents.strip_prefix("ref: ") {
                let ref_path = dir.join(".git").join(refname);
                if let Ok(rev) = std::fs::read_to_string(ref_path) {
                    return Some(rev.trim().to_string());
                }
                // Packed refs: scan .git/packed-refs for the ref name.
                if let Ok(packed) = std::fs::read_to_string(dir.join(".git").join("packed-refs")) {
                    for line in packed.lines() {
                        if let Some((rev, name)) = line.split_once(' ') {
                            if name.trim() == refname {
                                return Some(rev.trim().to_string());
                            }
                        }
                    }
                }
                return None;
            }
            return Some(contents.to_string());
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The versioned, self-describing metrics document written by
/// `repro --metrics <path>`. Field-by-field description: `docs/METRICS.md`.
#[derive(Clone, Debug, Serialize)]
pub struct MetricsSnapshot {
    /// Snapshot layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Run provenance.
    pub manifest: RunManifest,
    /// All counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// All gauges, by name.
    pub gauges: BTreeMap<String, u64>,
    /// All histograms, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes to the pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        let c = r.counter("t.hits");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("t.hits").get(), 5, "same name shares the cell");
        let g = r.gauge("t.size");
        g.set(32);
        g.set(128);
        assert_eq!(r.gauge("t.size").get(), 128);
    }

    #[test]
    fn histogram_log2_bucketing() {
        let r = Registry::new();
        let h = r.histogram("t.probes");
        for v in [0, 1, 1, 2, 3, 700] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 707);
        assert_eq!(h.max(), 700);
        let snap = h.snapshot();
        let bounds: Vec<u64> = snap.buckets.iter().map(|b| b.lower_bound).collect();
        // 0 -> [0]; 1,1 -> [1]; 2,3 -> [2]; 700 -> [512].
        assert_eq!(bounds, vec![0, 1, 2, 512]);
        let counts: Vec<u64> = snap.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 2, 2, 1]);
    }

    #[test]
    fn percentiles_estimate_within_a_bucket() {
        let r = Registry::new();
        let h = r.histogram("t.lat");
        for v in 1..=100u64 {
            h.record(v);
        }
        // Exact answers are 50/90/99; log2 estimates must stay within the
        // containing octave ([32,64), [64,128), [64,128)).
        let snap = h.snapshot();
        assert!((32..64).contains(&snap.p50), "p50 estimate {}", snap.p50);
        assert!((64..=100).contains(&snap.p90), "p90 estimate {}", snap.p90);
        assert!((64..=100).contains(&snap.p99), "p99 estimate {}", snap.p99);
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99, "monotone");
        assert_eq!(snap.percentile(0.5), snap.p50);
        assert!(snap.percentile(1.0) <= 100);
    }

    #[test]
    fn percentiles_degenerate_cases() {
        let r = Registry::new();
        let empty = r.histogram("t.empty");
        assert_eq!(empty.percentile(0.99), 0);
        let zeros = r.histogram("t.zeros");
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.percentile(0.99), 0);
        let single = r.histogram("t.single");
        single.record(37);
        let s = single.snapshot();
        assert_eq!((s.p50, s.p90, s.p99), (37, 37, 37), "clamped to max");
    }

    #[test]
    fn snapshot_json_carries_percentiles() {
        let r = Registry::new();
        r.histogram("t.lat").record(1000);
        let manifest = RunManifest {
            command: "x".into(),
            scale: "quick".into(),
            git_revision: "deadbeef".into(),
            elapsed_seconds: 0.0,
        };
        let json = r.snapshot(manifest).to_json_string();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["histograms"]["t.lat"]["p99"].as_u64(), Some(1000));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("t.x");
        r.gauge("t.x");
    }

    #[test]
    fn spans_record_duration_and_count() {
        let r = Registry::new();
        {
            let _span = r.span("unit_test");
        }
        {
            let _span = r.span("unit_test");
        }
        assert_eq!(r.counter("span.unit_test.count").get(), 2);
        assert_eq!(r.histogram("span.unit_test.nanos").count(), 2);
    }

    #[test]
    fn reset_zeroes_everything() {
        let r = Registry::new();
        r.counter("t.c").add(9);
        r.gauge("t.g").set(9);
        r.histogram("t.h").record(9);
        r.reset();
        assert_eq!(r.counter("t.c").get(), 0);
        assert_eq!(r.gauge("t.g").get(), 0);
        assert_eq!(r.histogram("t.h").count(), 0);
        assert_eq!(r.histogram("t.h").snapshot().buckets.len(), 0);
    }

    #[test]
    fn labeled_series_names() {
        assert_eq!(labeled("a.b", &[]), "a.b");
        assert_eq!(
            labeled("a.b", &[("artifact", "table2"), ("micro", "ll")]),
            "a.b{artifact=table2,micro=ll}"
        );
    }

    #[test]
    fn snapshot_serializes_with_schema_version() {
        let r = Registry::new();
        r.counter("t.hits").add(3);
        r.histogram("t.lat").record(100);
        let manifest = RunManifest {
            command: "all".into(),
            scale: "quick".into(),
            git_revision: "deadbeef".into(),
            elapsed_seconds: 1.5,
        };
        let snap = r.snapshot(manifest);
        let json = snap.to_json_string();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["schema_version"].as_u64(), Some(1));
        assert_eq!(v["manifest"]["scale"].as_str(), Some("quick"));
        assert_eq!(v["counters"]["t.hits"].as_u64(), Some(3));
        assert_eq!(v["histograms"]["t.lat"]["count"].as_u64(), Some(1));
    }
}

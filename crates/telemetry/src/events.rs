//! Event-level translation tracing: a bounded, lock-free ring-buffer
//! recorder for the POLB/POT pipeline.
//!
//! Aggregate counters (the rest of this crate) answer *how many*; this
//! module answers *when*: every `nvld`/`nvst` issue, POLB hit/miss/
//! fill/evict, POT walk begin/end (with probe count), page-table walk,
//! translation fault, and software `oid_direct` call can be captured as a
//! [`TraceEvent`] stamped with instruction index, cycle, pool id, and
//! [`TraceDesign`]. The exporters in [`crate::timeline`] turn the captured
//! stream into Chrome Trace Format JSON and windowed CSV time series.
//!
//! ## Design
//!
//! * **Disabled is (nearly) free.** Every emission helper starts with one
//!   relaxed atomic load of a global flag; until [`install`] is called the
//!   simulator hot paths pay a load and a predictable branch, nothing else.
//! * **Lock-free ring.** The recorder is a fixed-capacity ring of atomic
//!   word groups (this crate forbids `unsafe`); writers claim a slot with
//!   one `fetch_add` and publish it with a release store of its sequence
//!   number. The ring retains the **last N** events — older ones are
//!   overwritten, which is exactly the flight-recorder behavior wanted for
//!   post-hoc debugging.
//! * **Torn reads are tolerated, not invented.** A reader validates the
//!   slot sequence before and after copying the payload and skips slots
//!   that changed underneath it, so a concurrent writer can hide an event
//!   but never fabricate one. Quiescent reads (the harness drains between
//!   runs) are exact.
//! * **Sampling is per *access*, not per event.** [`begin_access`] decides
//!   once per `nvld`/`nvst` (1-in-N of issues) and the decision sticks for
//!   every event the access produces, so sampled timelines keep whole
//!   miss→walk→fill chains instead of disconnected fragments.
//!   [`EventKind::Fault`] bypasses sampling: faults are always recorded
//!   and, when a flight-dump path is configured, dump the ring tail to
//!   disk automatically.
//!
//! Simulators run workloads on multiple threads, so the access context
//! (instruction index, cycle, design, sampling decision) lives in a
//! thread-local; emission sites deep in `poat-core` that only know the
//! pool id inherit the context set by the simulator's [`begin_access`].

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Which translation hardware (or software path) produced an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceDesign {
    /// No simulator context was active (e.g. direct unit-test calls).
    Unknown,
    /// The Pipelined POLB design (pool id → virtual base, Figure 6a).
    Pipelined,
    /// The Parallel POLB design (page tag → physical frame, Figure 6b).
    Parallel,
    /// The software `oid_direct` baseline (`crates/pmem/src/translate.rs`).
    Software,
}

impl Default for TraceDesign {
    fn default() -> Self {
        TraceDesign::Unknown
    }
}

impl TraceDesign {
    /// Stable wire encoding (4 bits of the packed slot word).
    fn to_u8(self) -> u8 {
        match self {
            TraceDesign::Unknown => 0,
            TraceDesign::Pipelined => 1,
            TraceDesign::Parallel => 2,
            TraceDesign::Software => 3,
        }
    }

    fn from_u8(v: u8) -> TraceDesign {
        match v {
            1 => TraceDesign::Pipelined,
            2 => TraceDesign::Parallel,
            3 => TraceDesign::Software,
            _ => TraceDesign::Unknown,
        }
    }

    /// Human-readable name, used as the Chrome-trace process name and in
    /// the timeline CSV `design` column.
    pub fn name(self) -> &'static str {
        match self {
            TraceDesign::Unknown => "unknown",
            TraceDesign::Pipelined => "pipelined",
            TraceDesign::Parallel => "parallel",
            TraceDesign::Software => "software",
        }
    }
}

/// What happened. The `arg` field of [`TraceEvent`] is kind-specific and
/// documented per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// An `nvld` issued (recorded by [`begin_access`]).
    NvLoad,
    /// An `nvst` issued (recorded by [`begin_access`]).
    NvStore,
    /// POLB lookup hit.
    PolbHit,
    /// POLB lookup missed.
    PolbMiss,
    /// A translation was installed in the POLB.
    PolbFill,
    /// A fill displaced a valid LRU victim; `pool` is the *victim's* pool.
    PolbEvict,
    /// A hardware POT walk started.
    PotWalkBegin,
    /// A hardware POT walk finished; `arg` = linear probes performed.
    PotWalkEnd,
    /// The Parallel refill path walked the page table; `arg` = 1 if a
    /// frame was found, 0 if the identity fallback was used.
    PageWalk,
    /// Translation fault (unmapped pool). Always recorded, never sampled
    /// out, and triggers the flight-recorder dump if one is configured.
    Fault,
    /// A software `oid_direct` call started (recorded by [`begin_access`]).
    SoftCall,
    /// The software last-value predictor hit.
    SoftPredictorHit,
    /// The software predictor missed; `arg` = hash-table probes.
    SoftPredictorMiss,
}

impl EventKind {
    fn to_u8(self) -> u8 {
        match self {
            EventKind::NvLoad => 0,
            EventKind::NvStore => 1,
            EventKind::PolbHit => 2,
            EventKind::PolbMiss => 3,
            EventKind::PolbFill => 4,
            EventKind::PolbEvict => 5,
            EventKind::PotWalkBegin => 6,
            EventKind::PotWalkEnd => 7,
            EventKind::PageWalk => 8,
            EventKind::Fault => 9,
            EventKind::SoftCall => 10,
            EventKind::SoftPredictorHit => 11,
            EventKind::SoftPredictorMiss => 12,
        }
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::NvLoad,
            1 => EventKind::NvStore,
            2 => EventKind::PolbHit,
            3 => EventKind::PolbMiss,
            4 => EventKind::PolbFill,
            5 => EventKind::PolbEvict,
            6 => EventKind::PotWalkBegin,
            7 => EventKind::PotWalkEnd,
            8 => EventKind::PageWalk,
            9 => EventKind::Fault,
            10 => EventKind::SoftCall,
            11 => EventKind::SoftPredictorHit,
            12 => EventKind::SoftPredictorMiss,
            _ => return None,
        })
    }

    /// The snake_case event name used by both exporters (see
    /// `docs/TRACING.md` for the schema).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::NvLoad => "nvld",
            EventKind::NvStore => "nvst",
            EventKind::PolbHit => "polb_hit",
            EventKind::PolbMiss => "polb_miss",
            EventKind::PolbFill => "polb_fill",
            EventKind::PolbEvict => "polb_evict",
            EventKind::PotWalkBegin => "pot_walk_begin",
            EventKind::PotWalkEnd => "pot_walk_end",
            EventKind::PageWalk => "page_walk",
            EventKind::Fault => "fault",
            EventKind::SoftCall => "oid_direct",
            EventKind::SoftPredictorHit => "soft_predictor_hit",
            EventKind::SoftPredictorMiss => "soft_predictor_miss",
        }
    }
}

/// One captured event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record order (monotonic across threads and workloads).
    pub seq: u64,
    /// Instruction index of the enclosing access in its trace / run.
    pub instr: u64,
    /// Simulated cycle (hardware designs) or emitted-instruction count
    /// (the software baseline, which has no cycle clock of its own).
    pub cycle: u64,
    /// Pool id the event concerns (0 = none/unknown; for
    /// [`EventKind::PolbEvict`] this is the victim's pool).
    pub pool: u32,
    /// Which design's pipeline produced the event.
    pub design: TraceDesign,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (probe count, …), saturated to 20 bits.
    pub arg: u32,
}

/// Maximum value representable in the packed 20-bit `arg` field.
pub const MAX_ARG: u32 = (1 << 20) - 1;

/// One ring slot: sequence word plus three payload words. The sequence
/// word is zeroed while the payload is being replaced and published last
/// with release ordering, seqlock-style.
///
/// # Soundness audit (why this ring needs no `unsafe`)
///
/// The crate `#![forbid(unsafe_code)]`s, so the usual seqlock hazard —
/// a reader copying a non-atomic payload while a writer scribbles over
/// it, which is UB and needs `unsafe` plus fences to justify — cannot
/// arise here by construction: every payload word is its own atomic,
/// so all concurrent access is a data race only in the benign,
/// well-defined sense. What is left to audit is *logical* tearing
/// (an event assembled from two different writes) and these are the
/// arguments, backed by `tests/ring_stress.rs`:
///
/// 1. **A reader never returns a torn event.** `record` publishes in
///    the order `seq = 0` (release) → payload (relaxed) → `seq = i + 1`
///    (release); `events` reads `seq` (acquire), the payload, then
///    `seq` again (acquire) and discards the slot unless both loads saw
///    `i + 1`. The release/acquire pairing on the *second* check means:
///    if it still observes `i + 1`, the first store of any later write
///    (`seq = 0`) had not happened before the payload loads — the
///    payload words all came from the write that published `i + 1`.
/// 2. **A stalled writer cannot forge a current event.** Two writers
///    only ever share a slot across a full ring wrap (distinct
///    `fetch_add` tickets `i` and `i' = i + k·capacity`). Their
///    interleaved relaxed payload stores can leave a mixed payload in
///    memory, but the slot's final `seq` is one of `0`, `i + 1`, or
///    `i' + 1`, and a reader demands exactly `j + 1` for the unique
///    ticket `j` of that slot inside the live window `[head − cap,
///    head)` — a mix under the *older* generation's seq fails the
///    check and is skipped. The cost is bounded loss (the overwritten
///    newer event), never corruption; `events` documents the same
///    "skipped, not guessed" contract.
/// 3. **`clear` vs. a concurrent writer** is last-store-wins on `seq`:
///    the racing event either survives the drain or vanishes — both
///    acceptable for a drain; exactness is only promised when writers
///    are quiescent.
/// 4. **`head` is a ticket counter, not a publication word.** It is
///    advanced with relaxed `fetch_add` and read relaxed: it never
///    carries payload visibility (that is `seq`'s job, per point 1), it
///    only picks which window of tickets a reader attempts. A stale
///    `head` just means a slightly older window — the per-slot `seq`
///    check still rejects anything torn.
#[derive(Debug, Default)]
struct Slot {
    seq: AtomicU64,
    instr: AtomicU64,
    cycle: AtomicU64,
    packed: AtomicU64,
}

fn pack(kind: EventKind, design: TraceDesign, pool: u32, arg: u32) -> u64 {
    ((pool as u64) << 32)
        | ((arg.min(MAX_ARG) as u64) << 12)
        | ((design.to_u8() as u64) << 8)
        | kind.to_u8() as u64
}

fn unpack(seq: u64, instr: u64, cycle: u64, packed: u64) -> Option<TraceEvent> {
    Some(TraceEvent {
        seq,
        instr,
        cycle,
        pool: (packed >> 32) as u32,
        design: TraceDesign::from_u8(((packed >> 8) & 0xF) as u8),
        kind: EventKind::from_u8((packed & 0xFF) as u8)?,
        arg: ((packed >> 12) & MAX_ARG as u64) as u32,
    })
}

/// The per-access context produced by [`EventRecorder::begin_access`]:
/// carries the sampling decision and the timestamp base for every event
/// the access emits. The global helpers keep one per thread.
#[derive(Clone, Copy, Debug)]
pub struct AccessCtx {
    /// Whether this access was selected by 1-in-N sampling.
    pub sampled: bool,
    /// Instruction index stamped on the access's events.
    pub instr: u64,
    /// Current cycle; advanced by [`advance_cycle`] as latency accrues.
    pub cycle: u64,
    /// Design stamped on the access's events.
    pub design: TraceDesign,
}

const IDLE_CTX: AccessCtx = AccessCtx {
    sampled: false,
    instr: 0,
    cycle: 0,
    design: TraceDesign::Unknown,
};

/// A bounded, lock-free ring buffer of [`TraceEvent`]s.
///
/// Construct standalone instances in tests; production code uses the
/// process-global instance via [`install`] and the free emission helpers.
#[derive(Debug)]
pub struct EventRecorder {
    slots: Vec<Slot>,
    head: AtomicU64,
    issues: AtomicU64,
    sample: u64,
    flight: Mutex<Option<PathBuf>>,
    flight_dumps: AtomicU64,
}

impl EventRecorder {
    /// A recorder retaining the last `capacity` events, sampling 1-in-
    /// `sample` accesses (`0`/`1` = record every access).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, sample: u64) -> Self {
        assert!(capacity > 0, "event ring needs at least one slot");
        EventRecorder {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
            issues: AtomicU64::new(0),
            sample: sample.max(1),
            flight: Mutex::new(None),
            flight_dumps: AtomicU64::new(0),
        }
    }

    /// Ring capacity (the N of "last N events").
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The configured 1-in-N sampling period.
    pub fn sample(&self) -> u64 {
        self.sample
    }

    /// Total events ever recorded (including ones already overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Unconditionally appends one event, returning its sequence number.
    pub fn record(
        &self,
        kind: EventKind,
        design: TraceDesign,
        instr: u64,
        cycle: u64,
        pool: u32,
        arg: u32,
    ) -> u64 {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        // Invalidate, replace payload, publish: a reader that observes the
        // new sequence number also observes the matching payload.
        slot.seq.store(0, Ordering::Release);
        slot.instr.store(instr, Ordering::Relaxed);
        slot.cycle.store(cycle, Ordering::Relaxed);
        slot.packed
            .store(pack(kind, design, pool, arg), Ordering::Relaxed);
        slot.seq.store(i + 1, Ordering::Release);
        i
    }

    /// Starts one `nvld`/`nvst`/`oid_direct` access: takes the sampling
    /// decision, records the issue event if selected, and returns the
    /// context subsequent [`EventRecorder::emit`] calls should carry.
    pub fn begin_access(
        &self,
        kind: EventKind,
        design: TraceDesign,
        instr: u64,
        cycle: u64,
        pool: u32,
    ) -> AccessCtx {
        let n = self.issues.fetch_add(1, Ordering::Relaxed);
        let sampled = self.sample <= 1 || n % self.sample == 0;
        if sampled {
            self.record(kind, design, instr, cycle, pool, 0);
        }
        AccessCtx {
            sampled,
            instr,
            cycle,
            design,
        }
    }

    /// Emits a follow-on event of the access described by `ctx`.
    ///
    /// Respects the access's sampling decision, except for
    /// [`EventKind::Fault`] which is always recorded and triggers the
    /// flight dump (if a path is configured).
    pub fn emit(&self, ctx: &AccessCtx, kind: EventKind, pool: u32, arg: u32) {
        if kind == EventKind::Fault {
            self.record(kind, ctx.design, ctx.instr, ctx.cycle, pool, arg);
            self.flight_dump();
            return;
        }
        if ctx.sampled {
            self.record(kind, ctx.design, ctx.instr, ctx.cycle, pool, arg);
        }
    }

    /// The surviving events, oldest first.
    ///
    /// Under concurrent writers a slot being overwritten mid-read is
    /// skipped (never returned torn); with writers quiescent the result is
    /// exact.
    pub fn events(&self) -> Vec<TraceEvent> {
        // Relaxed: `head` is only ever advanced with relaxed fetch_add
        // (it is a ticket counter, not a publication word), so an
        // Acquire here has no Release partner to synchronize with.
        // Slot visibility is carried entirely by the per-slot `seq`
        // Release/Acquire pair checked below.
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let mut out = Vec::with_capacity(head.min(cap) as usize);
        for i in head.saturating_sub(cap)..head {
            let slot = &self.slots[(i % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != i + 1 {
                continue; // overwritten or mid-write
            }
            let instr = slot.instr.load(Ordering::Relaxed);
            let cycle = slot.cycle.load(Ordering::Relaxed);
            let packed = slot.packed.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != i + 1 {
                continue; // changed underneath us: discard, don't guess
            }
            if let Some(ev) = unpack(i + 1, instr, cycle, packed) {
                out.push(ev);
            }
        }
        out
    }

    /// Invalidates every retained event (sequence numbers keep growing, so
    /// later [`EventRecorder::events`] calls only see newer records). The
    /// harness drains between runs to attribute events per workload.
    pub fn clear(&self) {
        for slot in &self.slots {
            slot.seq.store(0, Ordering::Release);
        }
    }

    /// Configures the flight-recorder dump: on every recorded
    /// [`EventKind::Fault`] the surviving ring tail is written to `path`
    /// as Chrome Trace Format JSON (last fault wins; see
    /// [`EventRecorder::flight_dumps`] for how many fired).
    pub fn set_flight_path(&self, path: impl Into<PathBuf>) {
        *self.flight.lock().unwrap() = Some(path.into());
    }

    /// Number of flight-recorder dumps successfully written.
    pub fn flight_dumps(&self) -> u64 {
        self.flight_dumps.load(Ordering::Relaxed)
    }

    /// Forces a flight-recorder dump immediately (the worker-pool stall
    /// watchdog uses this when a worker goes silent); a no-op when no
    /// flight path is configured.
    pub fn dump_flight_now(&self) {
        self.flight_dump();
    }

    fn flight_dump(&self) {
        let guard = self.flight.lock().unwrap();
        if let Some(path) = guard.as_ref() {
            let json = crate::timeline::chrome_trace_json(&self.events());
            if std::fs::write(path, json).is_ok() {
                self.flight_dumps.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Global recorder + thread-local access context
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<EventRecorder> = OnceLock::new();

thread_local! {
    static CTX: Cell<AccessCtx> = const { Cell::new(IDLE_CTX) };
}

/// Installs (or re-enables) the process-global recorder and returns it.
///
/// The first call fixes `capacity` and `sample` for the process lifetime;
/// later calls re-enable tracing but keep the original configuration.
pub fn install(capacity: usize, sample: u64) -> &'static EventRecorder {
    let rec = GLOBAL.get_or_init(|| EventRecorder::new(capacity, sample));
    ENABLED.store(true, Ordering::Relaxed);
    rec
}

/// The global recorder, if [`install`] has been called and tracing is
/// enabled.
pub fn installed() -> Option<&'static EventRecorder> {
    if is_enabled() {
        GLOBAL.get()
    } else {
        None
    }
}

/// Whether the global recorder is active. This is the one-load fast path
/// every emission helper takes first.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Pauses or resumes global recording (the recorder keeps its contents).
pub fn set_enabled(on: bool) {
    if !on || GLOBAL.get().is_some() {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

/// Starts one access on the global recorder and stores its context in the
/// calling thread. No-op (one relaxed load) when tracing is disabled.
#[inline]
pub fn begin_access(kind: EventKind, design: TraceDesign, instr: u64, cycle: u64, pool: u32) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = GLOBAL.get() {
        let ctx = rec.begin_access(kind, design, instr, cycle, pool);
        CTX.with(|c| c.set(ctx));
    }
}

/// Emits a follow-on event under the calling thread's current access
/// context. No-op (one relaxed load) when tracing is disabled.
#[inline]
pub fn emit(kind: EventKind, pool: u32, arg: u32) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = GLOBAL.get() {
        let ctx = CTX.with(|c| c.get());
        rec.emit(&ctx, kind, pool, arg);
    }
}

/// Advances the calling thread's access-context cycle by `delta`, so
/// events emitted after a modeled latency carry the post-latency cycle
/// (this is what gives POT-walk spans their duration).
#[inline]
pub fn advance_cycle(delta: u64) {
    if !is_enabled() {
        return;
    }
    CTX.with(|c| {
        let mut ctx = c.get();
        ctx.cycle = ctx.cycle.saturating_add(delta);
        c.set(ctx);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let rec = EventRecorder::new(16, 1);
        let ctx = rec.begin_access(EventKind::NvLoad, TraceDesign::Pipelined, 10, 100, 7);
        rec.emit(&ctx, EventKind::PolbMiss, 7, 0);
        rec.emit(&ctx, EventKind::PotWalkEnd, 7, 3);
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::NvLoad);
        assert_eq!(evs[1].kind, EventKind::PolbMiss);
        assert_eq!(evs[2].kind, EventKind::PotWalkEnd);
        assert_eq!(evs[2].arg, 3);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(evs[0].instr, 10);
        assert_eq!(evs[0].cycle, 100);
        assert_eq!(evs[0].pool, 7);
        assert_eq!(evs[0].design, TraceDesign::Pipelined);
    }

    #[test]
    fn ring_wraparound_keeps_last_capacity_events() {
        let rec = EventRecorder::new(8, 1);
        for i in 0..20u64 {
            rec.record(EventKind::PolbHit, TraceDesign::Parallel, i, i, i as u32, 0);
        }
        assert_eq!(rec.recorded(), 20);
        let evs = rec.events();
        assert_eq!(evs.len(), 8, "ring retains exactly capacity events");
        // The survivors are the newest 8, in order: instr 12..=19.
        let instrs: Vec<u64> = evs.iter().map(|e| e.instr).collect();
        assert_eq!(instrs, (12..20).collect::<Vec<u64>>());
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (13..=20).collect::<Vec<u64>>());
    }

    #[test]
    fn sampling_is_deterministic_one_in_n() {
        let a = EventRecorder::new(1024, 4);
        let b = EventRecorder::new(1024, 4);
        for rec in [&a, &b] {
            for i in 0..100u64 {
                let ctx = rec.begin_access(EventKind::NvLoad, TraceDesign::Pipelined, i, i, 1);
                rec.emit(&ctx, EventKind::PolbHit, 1, 0);
            }
        }
        let ea = a.events();
        let eb = b.events();
        // 1-in-4 of 100 issues, two events per sampled access.
        assert_eq!(ea.len(), 50);
        let ia: Vec<u64> = ea.iter().map(|e| e.instr).collect();
        let ib: Vec<u64> = eb.iter().map(|e| e.instr).collect();
        assert_eq!(ia, ib, "same inputs, same sampled accesses");
        assert!(ia.iter().all(|i| i % 4 == 0), "every 4th issue selected");
    }

    #[test]
    fn unsampled_access_suppresses_followups_but_not_faults() {
        let rec = EventRecorder::new(64, 1000);
        // Burn the one sampled slot (issue 0), then use an unsampled access.
        let _ = rec.begin_access(EventKind::NvLoad, TraceDesign::Pipelined, 0, 0, 1);
        let ctx = rec.begin_access(EventKind::NvLoad, TraceDesign::Pipelined, 1, 1, 2);
        assert!(!ctx.sampled);
        rec.emit(&ctx, EventKind::PolbMiss, 2, 0);
        rec.emit(&ctx, EventKind::Fault, 2, 0);
        let kinds: Vec<EventKind> = rec.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EventKind::NvLoad, EventKind::Fault]);
    }

    #[test]
    fn clear_drops_retained_events_but_keeps_counting() {
        let rec = EventRecorder::new(8, 1);
        rec.record(EventKind::PolbHit, TraceDesign::Unknown, 0, 0, 1, 0);
        rec.clear();
        assert!(rec.events().is_empty());
        rec.record(EventKind::PolbMiss, TraceDesign::Unknown, 1, 1, 1, 0);
        let evs = rec.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::PolbMiss);
        assert_eq!(evs[0].seq, 2, "sequence numbers survive clear");
    }

    #[test]
    fn arg_saturates_at_20_bits() {
        let rec = EventRecorder::new(4, 1);
        rec.record(
            EventKind::PotWalkEnd,
            TraceDesign::Pipelined,
            0,
            0,
            1,
            u32::MAX,
        );
        assert_eq!(rec.events()[0].arg, MAX_ARG);
    }

    #[test]
    fn flight_dump_writes_ring_tail_on_fault() {
        let dir = std::env::temp_dir().join(format!("poat-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.json");
        let rec = EventRecorder::new(32, 1);
        rec.set_flight_path(&path);
        let ctx = rec.begin_access(EventKind::NvLoad, TraceDesign::Pipelined, 5, 50, 9);
        rec.emit(&ctx, EventKind::PolbMiss, 9, 0);
        rec.emit(&ctx, EventKind::Fault, 9, 0);
        assert_eq!(rec.flight_dumps(), 1);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"fault\""), "dump contains the fault event");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        let rec = std::sync::Arc::new(EventRecorder::new(64, 1));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..2000u64 {
                        // Each thread writes self-consistent payloads:
                        // instr == cycle and pool == thread id.
                        rec.record(EventKind::PolbHit, TraceDesign::Parallel, i, i, t, 0);
                    }
                });
            }
        });
        for ev in rec.events() {
            assert_eq!(ev.instr, ev.cycle, "torn payload leaked");
            assert!(ev.pool < 4);
        }
    }
}

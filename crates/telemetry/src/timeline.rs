//! Exporters over captured [`TraceEvent`] streams: Chrome Trace Format
//! JSON and a windowed time-series aggregator with CSV output.
//!
//! * [`chrome_trace_json`] produces a `{"traceEvents": [...]}` document
//!   loadable in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`. Each [`TraceDesign`] becomes a *process* (named
//!   via metadata events), each pool id a *thread*, POT walks become
//!   complete spans (`ph: "X"`, paired from begin/end events), and
//!   everything else an instant event (`ph: "i"`). Timestamps are
//!   simulated cycles reinterpreted as microseconds — relative spacing is
//!   what matters, not wall time.
//! * [`windows`] folds the stream into per-design, per-N-instruction
//!   [`TimelineWindow`] rows (miss rate, walk latency, POLB occupancy…);
//!   [`windows_csv`] renders them with the same conventions as the
//!   harness's `results_csv` files (header line + comma rows).
//!
//! The full schema is documented in `docs/TRACING.md`.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::events::{EventKind, TraceDesign, TraceEvent};

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn design_pid(d: TraceDesign) -> u64 {
    match d {
        TraceDesign::Unknown => 0,
        TraceDesign::Pipelined => 1,
        TraceDesign::Parallel => 2,
        TraceDesign::Software => 3,
    }
}

fn category(kind: EventKind) -> &'static str {
    match kind {
        EventKind::NvLoad | EventKind::NvStore => "issue",
        EventKind::PolbHit | EventKind::PolbMiss | EventKind::PolbFill | EventKind::PolbEvict => {
            "polb"
        }
        EventKind::PotWalkBegin | EventKind::PotWalkEnd | EventKind::PageWalk => "pot",
        EventKind::Fault => "fault",
        EventKind::SoftCall | EventKind::SoftPredictorHit | EventKind::SoftPredictorMiss => "soft",
    }
}

fn instant(ev: &TraceEvent) -> Value {
    obj(vec![
        ("name", s(ev.kind.name())),
        ("cat", s(category(ev.kind))),
        ("ph", s("i")),
        ("s", s("t")),
        ("ts", Value::U64(ev.cycle)),
        ("pid", Value::U64(design_pid(ev.design))),
        ("tid", Value::U64(ev.pool as u64)),
        (
            "args",
            obj(vec![
                ("seq", Value::U64(ev.seq)),
                ("instr", Value::U64(ev.instr)),
                ("arg", Value::U64(ev.arg as u64)),
            ]),
        ),
    ])
}

fn walk_span(begin: &TraceEvent, end_cycle: u64, probes: u64, faulted: bool) -> Value {
    obj(vec![
        (
            "name",
            s(if faulted {
                "pot_walk_fault"
            } else {
                "pot_walk"
            }),
        ),
        ("cat", s("pot")),
        ("ph", s("X")),
        ("ts", Value::U64(begin.cycle)),
        (
            "dur",
            Value::U64(end_cycle.saturating_sub(begin.cycle).max(1)),
        ),
        ("pid", Value::U64(design_pid(begin.design))),
        ("tid", Value::U64(begin.pool as u64)),
        (
            "args",
            obj(vec![
                ("seq", Value::U64(begin.seq)),
                ("instr", Value::U64(begin.instr)),
                ("probes", Value::U64(probes)),
            ]),
        ),
    ])
}

/// Serializes `events` as a Chrome Trace Format JSON document.
///
/// `PotWalkBegin`/`PotWalkEnd` pairs (matched per design+pool in sequence
/// order) become complete `"X"` spans named `pot_walk`, with the probe
/// count in `args`; a begin closed by a [`EventKind::Fault`] becomes a
/// `pot_walk_fault` span; every other event is an `"i"` instant. One
/// metadata record per design present names the Chrome "process".
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut trace_events: Vec<Value> = Vec::with_capacity(events.len() + 8);

    // Process-name metadata for each design that appears.
    let mut designs: Vec<TraceDesign> = events.iter().map(|e| e.design).collect();
    designs.sort();
    designs.dedup();
    for d in &designs {
        trace_events.push(obj(vec![
            ("name", s("process_name")),
            ("ph", s("M")),
            ("pid", Value::U64(design_pid(*d))),
            ("args", obj(vec![("name", s(d.name()))])),
        ]));
    }

    // Pending POT-walk begins, keyed by (design, pool).
    let mut pending: BTreeMap<(u64, u32), TraceEvent> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::PotWalkBegin => {
                // An unmatched earlier begin (e.g. sampling artifact)
                // degrades to an instant rather than vanishing.
                if let Some(stale) = pending.insert((design_pid(ev.design), ev.pool), *ev) {
                    trace_events.push(instant(&stale));
                }
            }
            EventKind::PotWalkEnd => match pending.remove(&(design_pid(ev.design), ev.pool)) {
                Some(begin) => trace_events.push(walk_span(&begin, ev.cycle, ev.arg as u64, false)),
                None => trace_events.push(instant(ev)),
            },
            EventKind::Fault => {
                if let Some(begin) = pending.remove(&(design_pid(ev.design), ev.pool)) {
                    trace_events.push(walk_span(&begin, ev.cycle, ev.arg as u64, true));
                }
                trace_events.push(instant(ev));
            }
            _ => trace_events.push(instant(ev)),
        }
    }
    // Walks still open at the end of the stream degrade to instants.
    for (_, begin) in pending {
        trace_events.push(instant(&begin));
    }

    let doc = obj(vec![
        ("traceEvents", Value::Seq(trace_events)),
        ("displayTimeUnit", s("ms")),
        (
            "otherData",
            obj(vec![("ts_unit", s("simulated cycles (as µs)"))]),
        ),
    ]);
    // Compact output: traces reach millions of events, and Perfetto does
    // not care about whitespace.
    serde_json::to_string(&doc).expect("chrome trace serialization is infallible")
}

/// One aggregation window: all events of one design whose instruction
/// index falls in `[start_instr, start_instr + window)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineWindow {
    /// The design this row aggregates.
    pub design: TraceDesign,
    /// Inclusive instruction-index lower bound of the window.
    pub start_instr: u64,
    /// `nvld`/`nvst`/`oid_direct` issues observed.
    pub accesses: u64,
    /// POLB hits.
    pub polb_hits: u64,
    /// POLB misses.
    pub polb_misses: u64,
    /// POLB fills.
    pub fills: u64,
    /// POLB evictions.
    pub evictions: u64,
    /// Estimated POLB occupancy at window end (running fills − evictions).
    pub occupancy: u64,
    /// Completed POT walks.
    pub pot_walks: u64,
    /// Sum of linear probes over completed walks.
    pub walk_probes: u64,
    /// Sum of walk durations in cycles (end − begin per matched pair).
    pub walk_cycles: u64,
    /// Translation faults.
    pub faults: u64,
    /// Software predictor hits.
    pub soft_hits: u64,
    /// Software predictor misses.
    pub soft_misses: u64,
}

impl TimelineWindow {
    /// POLB miss rate within the window (0.0 when no lookups).
    pub fn miss_rate(&self) -> f64 {
        let lookups = self.polb_hits + self.polb_misses;
        if lookups == 0 {
            0.0
        } else {
            self.polb_misses as f64 / lookups as f64
        }
    }

    /// Mean probes per completed POT walk (0.0 when none).
    pub fn mean_probes(&self) -> f64 {
        if self.pot_walks == 0 {
            0.0
        } else {
            self.walk_probes as f64 / self.pot_walks as f64
        }
    }

    /// Mean POT-walk latency in cycles (0.0 when none).
    pub fn mean_walk_cycles(&self) -> f64 {
        if self.pot_walks == 0 {
            0.0
        } else {
            self.walk_cycles as f64 / self.pot_walks as f64
        }
    }

    /// Software predictor miss rate within the window (0.0 when idle).
    pub fn soft_miss_rate(&self) -> f64 {
        let calls = self.soft_hits + self.soft_misses;
        if calls == 0 {
            0.0
        } else {
            self.soft_misses as f64 / calls as f64
        }
    }
}

/// Folds `events` into per-design windows of `window` instructions,
/// ordered by (design, start_instr).
///
/// Occupancy is the running `fills − evictions` balance per design — an
/// estimate of live POLB entries that is exact as long as the stream
/// covers the POLB's whole life (the harness drains the ring per run).
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn windows(events: &[TraceEvent], window: u64) -> Vec<TimelineWindow> {
    assert!(window > 0, "window size must be positive");
    let mut rows: BTreeMap<(u64, u64), TimelineWindow> = BTreeMap::new();
    let mut occupancy: BTreeMap<u64, u64> = BTreeMap::new();
    let mut pending_walk: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    for ev in events {
        let pid = design_pid(ev.design);
        let start = (ev.instr / window) * window;
        let row = rows.entry((pid, start)).or_insert_with(|| TimelineWindow {
            design: ev.design,
            start_instr: start,
            ..TimelineWindow::default()
        });
        match ev.kind {
            EventKind::NvLoad | EventKind::NvStore | EventKind::SoftCall => row.accesses += 1,
            EventKind::PolbHit => row.polb_hits += 1,
            EventKind::PolbMiss => row.polb_misses += 1,
            EventKind::PolbFill => {
                row.fills += 1;
                *occupancy.entry(pid).or_default() += 1;
            }
            EventKind::PolbEvict => {
                row.evictions += 1;
                let occ = occupancy.entry(pid).or_default();
                *occ = occ.saturating_sub(1);
            }
            EventKind::PotWalkBegin => {
                pending_walk.insert((pid, ev.pool), ev.cycle);
            }
            EventKind::PotWalkEnd => {
                row.pot_walks += 1;
                row.walk_probes += ev.arg as u64;
                if let Some(begin) = pending_walk.remove(&(pid, ev.pool)) {
                    row.walk_cycles += ev.cycle.saturating_sub(begin);
                }
            }
            EventKind::PageWalk => {}
            EventKind::Fault => row.faults += 1,
            EventKind::SoftPredictorHit => row.soft_hits += 1,
            EventKind::SoftPredictorMiss => row.soft_misses += 1,
        }
        row.occupancy = occupancy.get(&pid).copied().unwrap_or(0);
    }
    rows.into_values().collect()
}

/// The header line of [`windows_csv`].
pub const WINDOWS_CSV_HEADER: &str = "design,start_instr,accesses,polb_hits,polb_misses,\
miss_rate,fills,evictions,occupancy,pot_walks,mean_probes,mean_walk_cycles,faults,\
soft_hits,soft_misses";

/// Renders windows as CSV (header + one row per window), matching the
/// harness `results_csv` conventions.
pub fn windows_csv(rows: &[TimelineWindow]) -> String {
    let mut out = String::from(WINDOWS_CSV_HEADER);
    out.push('\n');
    for w in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{:.4},{},{},{},{},{:.2},{:.1},{},{},{}\n",
            w.design.name(),
            w.start_instr,
            w.accesses,
            w.polb_hits,
            w.polb_misses,
            w.miss_rate(),
            w.fills,
            w.evictions,
            w.occupancy,
            w.pot_walks,
            w.mean_probes(),
            w.mean_walk_cycles(),
            w.faults,
            w.soft_hits,
            w.soft_misses,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventRecorder;

    /// Advances a copied context's cycle (tests don't use the TLS layer).
    fn advanced(mut ctx: crate::events::AccessCtx, delta: u64) -> crate::events::AccessCtx {
        ctx.cycle += delta;
        ctx
    }

    fn sample_stream() -> Vec<TraceEvent> {
        let rec = EventRecorder::new(256, 1);
        for (i, design) in [TraceDesign::Pipelined, TraceDesign::Parallel]
            .into_iter()
            .enumerate()
        {
            let pool = (i + 1) as u32;
            let ctx = rec.begin_access(EventKind::NvLoad, design, 100, 1000, pool);
            rec.emit(&ctx, EventKind::PolbMiss, pool, 0);
            rec.emit(&ctx, EventKind::PotWalkBegin, pool, 0);
            let ctx2 = advanced(ctx, 33);
            rec.emit(&ctx2, EventKind::PotWalkEnd, pool, 2);
            rec.emit(&ctx2, EventKind::PolbFill, pool, 0);
            let ctx3 = rec.begin_access(EventKind::NvLoad, design, 5000, 2000, pool);
            rec.emit(&ctx3, EventKind::PolbHit, pool, 0);
        }
        rec.events()
    }

    #[test]
    fn chrome_trace_round_trips_through_vendored_parser() {
        let json = chrome_trace_json(&sample_stream());
        let v: Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
        let evs = v["traceEvents"].as_array().expect("traceEvents array");
        assert!(!evs.is_empty());
        // Both designs got a process_name metadata record.
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M"))
            .filter_map(|e| e["args"]["name"].as_str())
            .collect();
        assert!(names.contains(&"pipelined") && names.contains(&"parallel"));
        // The walk begin/end pair became an X span with duration and probes.
        let span = evs
            .iter()
            .find(|e| e["name"].as_str() == Some("pot_walk"))
            .expect("pot_walk span present");
        assert_eq!(span["ph"].as_str(), Some("X"));
        assert_eq!(span["dur"].as_u64(), Some(33));
        assert_eq!(span["args"]["probes"].as_u64(), Some(2));
        // Instants carry the thread (pool) and process (design) ids.
        let miss = evs
            .iter()
            .find(|e| e["name"].as_str() == Some("polb_miss"))
            .expect("polb_miss instant present");
        assert_eq!(miss["ph"].as_str(), Some("i"));
        assert_eq!(miss["pid"].as_u64(), Some(1));
    }

    #[test]
    fn fault_closes_pending_walk_as_fault_span() {
        let rec = EventRecorder::new(64, 1);
        let ctx = rec.begin_access(EventKind::NvLoad, TraceDesign::Pipelined, 1, 10, 9);
        rec.emit(&ctx, EventKind::PolbMiss, 9, 0);
        rec.emit(&ctx, EventKind::PotWalkBegin, 9, 0);
        let later = advanced(ctx, 30);
        rec.emit(&later, EventKind::Fault, 9, 0);
        let json = chrome_trace_json(&rec.events());
        let v: Value = serde_json::from_str(&json).unwrap();
        let evs = v["traceEvents"].as_array().unwrap();
        assert!(evs
            .iter()
            .any(|e| e["name"].as_str() == Some("pot_walk_fault")));
        assert!(evs.iter().any(|e| e["name"].as_str() == Some("fault")));
    }

    #[test]
    fn windows_aggregate_per_design_and_instruction_interval() {
        let evs = sample_stream();
        let rows = windows(&evs, 1024);
        // Two designs × two windows (instr 100 → window 0, instr 5000 → 4096).
        assert_eq!(rows.len(), 4);
        let first = &rows[0];
        assert_eq!(first.design, TraceDesign::Pipelined);
        assert_eq!(first.start_instr, 0);
        assert_eq!(first.accesses, 1);
        assert_eq!(first.polb_misses, 1);
        assert_eq!(first.fills, 1);
        assert_eq!(first.pot_walks, 1);
        assert_eq!(first.walk_probes, 2);
        assert_eq!(first.walk_cycles, 33);
        assert_eq!(first.occupancy, 1);
        assert!((first.miss_rate() - 1.0).abs() < 1e-9);
        let warm = rows
            .iter()
            .find(|r| r.design == TraceDesign::Pipelined && r.start_instr == 4096)
            .unwrap();
        assert_eq!(warm.polb_hits, 1);
        assert!((warm.miss_rate() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn windows_csv_has_header_and_rows() {
        let csv = windows_csv(&windows(&sample_stream(), 1024));
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(WINDOWS_CSV_HEADER));
        assert_eq!(lines.count(), 4);
        assert!(csv.contains("pipelined,0,1,0,1,1.0000,1,0,1,1,2.00,33.0,0,0,0"));
    }
}

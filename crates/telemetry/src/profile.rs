// SPDX-License-Identifier: MIT OR Apache-2.0
//! Span-tree profiler: parent/child phase attribution with self-time.
//!
//! The flat [`crate::Registry::span`] timers answer "how long did phase X
//! take in total", but cannot say *where inside* a phase the time went —
//! a `trace_replay` span includes every translation, POT walk and cache
//! access made underneath it. This module keeps an explicit call tree per
//! thread: entering a scope pushes a frame, leaving it attributes the
//! elapsed wall-clock to that node and *subtracts* it from the parent's
//! self-time, so for every thread
//!
//! ```text
//! Σ self_nanos over all nodes == Σ total_nanos over the roots
//! ```
//!
//! holds exactly (saturating arithmetic aside). That identity is what
//! makes the collapsed-stack export ([`ProfileSnapshot::collapsed`])
//! valid flamegraph input: tools like inferno assume the values are
//! exclusive (self) times.
//!
//! ## Cost model
//!
//! Profiling is off by default: every scope helper loads one relaxed
//! atomic and returns an inert guard, so simulator hot loops and the
//! bench budgets are unaffected. When enabled (`repro --profile`), each
//! active scope costs two `Instant::now` calls plus an uncontended mutex
//! lock on the thread's own tree. Per-operation scopes in the replay
//! loops additionally honour a 1-in-N sampling knob ([`set_sample`],
//! wired to the same `--trace-sample` value as the event recorder): the
//! decision is made once per replayed operation ([`begin_op`]) and shared
//! by every [`hot_scope`] underneath it, so a sampled-out operation skips
//! *all* of its hot scopes and its time simply stays in the enclosing
//! phase's self-time — the sum identity above survives sampling.
//!
//! Trees are registered globally and survive thread exit (the worker
//! threads of a sweep are gone before the report is rendered), and
//! [`snapshot`] merges identical root-to-leaf paths across threads.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::{labeled, percentile_from, BucketCount, Registry};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SAMPLE: AtomicU64 = AtomicU64::new(1);

fn trees() -> &'static Mutex<Vec<Arc<Mutex<Tree>>>> {
    static TREES: OnceLock<Mutex<Vec<Arc<Mutex<Tree>>>>> = OnceLock::new();
    TREES.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<Tree>>>> = const { RefCell::new(None) };
    /// Whether the current replayed operation was chosen by sampling.
    static HOT: Cell<bool> = const { Cell::new(false) };
    /// Per-thread operation counter driving 1-in-N sampling.
    static OP_CTR: Cell<u64> = const { Cell::new(0) };
}

/// Turns profiling on or off process-wide. Scopes opened while disabled
/// are inert; scopes already open keep recording until dropped.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the 1-in-`n` sampling rate for per-operation scopes
/// ([`begin_op`]/[`hot_scope`]); `0` is treated as 1 (every operation).
/// Phase-level [`scope`]s are never sampled out.
pub fn set_sample(n: u64) {
    SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// Discards all recorded profile data (every thread's tree).
pub fn reset() {
    let list = trees().lock().unwrap();
    for tree in list.iter() {
        let mut t = tree.lock().unwrap();
        t.nodes.clear();
        t.stack.clear();
    }
}

struct Node {
    name: Arc<str>,
    parent: Option<usize>,
    children: Vec<usize>,
    count: u64,
    total_nanos: u64,
    self_nanos: u64,
    self_max: u64,
    /// Log2 buckets of per-invocation self-time (see [`crate::Histogram`]).
    self_buckets: Box<[u64; 65]>,
}

struct Frame {
    node: usize,
    start: Instant,
    child_nanos: u64,
}

#[derive(Default)]
struct Tree {
    nodes: Vec<Node>,
    stack: Vec<Frame>,
}

impl Tree {
    fn enter(&mut self, name: &str) -> usize {
        let parent = self.stack.last().map(|f| f.node);
        let node = match parent {
            Some(p) => self.nodes[p]
                .children
                .iter()
                .copied()
                .find(|&c| &*self.nodes[c].name == name),
            None => self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.parent.is_none())
                .find(|(_, n)| &*n.name == name)
                .map(|(i, _)| i),
        };
        let node = node.unwrap_or_else(|| {
            let idx = self.nodes.len();
            self.nodes.push(Node {
                name: Arc::from(name),
                parent,
                children: Vec::new(),
                count: 0,
                total_nanos: 0,
                self_nanos: 0,
                self_max: 0,
                self_buckets: Box::new([0; 65]),
            });
            if let Some(p) = parent {
                self.nodes[p].children.push(idx);
            }
            idx
        });
        self.stack.push(Frame {
            node,
            start: Instant::now(),
            child_nanos: 0,
        });
        self.stack.len() - 1
    }

    fn exit(&mut self, depth: usize) {
        // RAII nesting makes this LIFO; truncate defensively so a leaked
        // guard cannot desynchronise deeper frames.
        while self.stack.len() > depth + 1 {
            self.pop();
        }
        if self.stack.len() == depth + 1 {
            self.pop();
        }
    }

    fn pop(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        let self_nanos = elapsed.saturating_sub(frame.child_nanos);
        let node = &mut self.nodes[frame.node];
        node.count += 1;
        node.total_nanos += elapsed;
        node.self_nanos += self_nanos;
        node.self_max = node.self_max.max(self_nanos);
        node.self_buckets[(64 - self_nanos.leading_zeros()) as usize] += 1;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_nanos += elapsed;
        }
    }

    fn path_of(&self, mut idx: usize) -> String {
        let mut parts = vec![self.nodes[idx].name.clone()];
        while let Some(p) = self.nodes[idx].parent {
            parts.push(self.nodes[p].name.clone());
            idx = p;
        }
        parts.reverse();
        parts.join(";")
    }
}

fn with_local_tree<R>(f: impl FnOnce(&mut Tree) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let t = Arc::new(Mutex::new(Tree::default()));
            trees().lock().unwrap().push(t.clone());
            t
        });
        let mut tree = arc.lock().unwrap();
        f(&mut tree)
    })
}

/// RAII guard for one profiled scope; records on drop. Inert (free)
/// when profiling was disabled at entry.
#[must_use = "a profile scope records its duration when dropped"]
pub struct ProfileScope {
    depth: Option<usize>,
}

impl Drop for ProfileScope {
    fn drop(&mut self) {
        if let Some(depth) = self.depth.take() {
            with_local_tree(|t| t.exit(depth));
        }
    }
}

/// Enters a phase-level scope named `name` under the innermost open scope
/// of this thread (or as a root). Always active while profiling is
/// enabled — never sampled out.
#[inline]
pub fn scope(name: &str) -> ProfileScope {
    if !enabled() {
        return ProfileScope { depth: None };
    }
    ProfileScope {
        depth: Some(with_local_tree(|t| t.enter(name))),
    }
}

/// Guard for one replayed operation's sampling decision; restores the
/// previous decision on drop.
#[must_use = "the sampling decision is active only while this guard is alive"]
pub struct OpScope {
    prev: Option<bool>,
}

impl Drop for OpScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            HOT.with(|h| h.set(prev));
        }
    }
}

/// Makes the per-operation sampling decision: 1 in [`set_sample`]
/// operations is *hot*, and every [`hot_scope`] opened while the returned
/// guard lives follows that one decision. Free when profiling is off.
#[inline]
pub fn begin_op() -> OpScope {
    if !enabled() {
        return OpScope { prev: None };
    }
    let sample = SAMPLE.load(Ordering::Relaxed);
    let hot = OP_CTR.with(|c| {
        let n = c.get();
        c.set(n.wrapping_add(1));
        n % sample == 0
    });
    OpScope {
        prev: Some(HOT.with(|h| h.replace(hot))),
    }
}

/// Enters a per-operation scope: active only when the enclosing
/// [`begin_op`] chose this operation. Use for scopes that run once per
/// replayed instruction (translation, cache access); their skipped time
/// folds into the parent phase's self-time.
#[inline]
pub fn hot_scope(name: &str) -> ProfileScope {
    if !enabled() || !HOT.with(|h| h.get()) {
        return ProfileScope { depth: None };
    }
    ProfileScope {
        depth: Some(with_local_tree(|t| t.enter(name))),
    }
}

/// Merged statistics for one root-to-leaf path across all threads.
#[derive(Clone, Debug)]
pub struct PathStats {
    /// Semicolon-joined names from root to this node (collapsed-stack key).
    pub path: String,
    /// Leaf name (last path component).
    pub name: String,
    /// Nesting depth (0 for roots).
    pub depth: usize,
    /// Times the scope was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds, children included.
    pub total_nanos: u64,
    /// Exclusive wall-clock nanoseconds (children subtracted).
    pub self_nanos: u64,
    /// Estimated median per-invocation self-time, nanoseconds.
    pub self_p50: u64,
    /// Estimated 90th-percentile per-invocation self-time.
    pub self_p90: u64,
    /// Estimated 99th-percentile per-invocation self-time.
    pub self_p99: u64,
}

/// A merged, point-in-time view of every thread's span tree.
#[derive(Clone, Debug, Default)]
pub struct ProfileSnapshot {
    /// One entry per distinct path, depth-first (parents before children).
    pub paths: Vec<PathStats>,
}

impl ProfileSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Sum of total time over root scopes (the profiled wall-clock).
    pub fn root_total_nanos(&self) -> u64 {
        self.paths
            .iter()
            .filter(|p| p.depth == 0)
            .map(|p| p.total_nanos)
            .sum()
    }

    /// Sum of self time over every path; equals
    /// [`root_total_nanos`](Self::root_total_nanos) by construction.
    pub fn total_self_nanos(&self) -> u64 {
        self.paths.iter().map(|p| p.self_nanos).sum()
    }

    /// Renders the inferno/flamegraph collapsed-stack format: one
    /// `root;child;leaf <self_nanos>` line per path with nonzero self
    /// time, sorted by path.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for p in &self.paths {
            if p.self_nanos > 0 {
                out.push_str(&p.path);
                out.push(' ');
                out.push_str(&p.self_nanos.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Publishes per-phase aggregates into `registry` so metric snapshots
    /// (and the run ledger) carry profile data: self/total nanoseconds
    /// and entry counts per leaf phase name, plus the number of distinct
    /// paths exported. Counter semantics — repeated publishes accumulate.
    pub fn publish(&self, registry: &Registry) {
        let mut by_phase: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for p in &self.paths {
            let e = by_phase.entry(&p.name).or_default();
            e.0 += p.self_nanos;
            e.1 += p.total_nanos;
            e.2 += p.count;
        }
        for (phase, (self_ns, total_ns, count)) in by_phase {
            let l = [("phase", phase)];
            registry
                .counter(&labeled("profile.phase.self_nanos", &l))
                .add(self_ns);
            registry
                .counter(&labeled("profile.phase.total_nanos", &l))
                .add(total_ns);
            registry
                .counter(&labeled("profile.phase.count", &l))
                .add(count);
        }
        registry
            .counter("profile.export.paths")
            .add(self.paths.len() as u64);
    }
}

struct MergedPath {
    count: u64,
    total_nanos: u64,
    self_nanos: u64,
    self_max: u64,
    self_buckets: [u64; 65],
}

/// Merges every thread's tree into one snapshot, combining identical
/// root-to-leaf paths (the per-worker trees of a sweep collapse into one
/// logical tree).
pub fn snapshot() -> ProfileSnapshot {
    let list: Vec<Arc<Mutex<Tree>>> = trees().lock().unwrap().clone();
    let mut merged: BTreeMap<String, MergedPath> = BTreeMap::new();
    for tree in list {
        let t = tree.lock().unwrap();
        for (idx, node) in t.nodes.iter().enumerate() {
            if node.count == 0 {
                continue;
            }
            let path = t.path_of(idx);
            let e = merged.entry(path).or_insert_with(|| MergedPath {
                count: 0,
                total_nanos: 0,
                self_nanos: 0,
                self_max: 0,
                self_buckets: [0; 65],
            });
            e.count += node.count;
            e.total_nanos += node.total_nanos;
            e.self_nanos += node.self_nanos;
            e.self_max = e.self_max.max(node.self_max);
            for (b, n) in e.self_buckets.iter_mut().zip(node.self_buckets.iter()) {
                *b += n;
            }
        }
    }
    let mut paths = Vec::with_capacity(merged.len());
    for (path, m) in merged {
        let buckets: Vec<BucketCount> = m
            .self_buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &count)| BucketCount {
                lower_bound: if i == 0 { 0 } else { 1u64 << (i - 1) },
                count,
            })
            .collect();
        let name = path.rsplit(';').next().unwrap_or(&path).to_string();
        let depth = path.matches(';').count();
        paths.push(PathStats {
            name,
            depth,
            count: m.count,
            total_nanos: m.total_nanos,
            self_nanos: m.self_nanos,
            self_p50: percentile_from(&buckets, m.count, m.self_max, 0.50),
            self_p90: percentile_from(&buckets, m.count, m.self_max, 0.90),
            self_p99: percentile_from(&buckets, m.count, m.self_max, 0.99),
            path,
        });
    }
    // BTreeMap order is lexicographic on the path, which already places
    // every parent immediately before its children ("a" < "a;b").
    ProfileSnapshot { paths }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The profiler is process-global state; tests serialize on this so
    /// one test's `set_enabled`/`reset` cannot corrupt another's tree.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spin(nanos: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < nanos {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _s = scope("t_off_root");
            let _op = begin_op();
            let _h = hot_scope("t_off_hot");
        }
        let snap = snapshot();
        assert!(
            !snap.paths.iter().any(|p| p.path.contains("t_off")),
            "disabled profiling must not create nodes"
        );
    }

    #[test]
    fn self_times_sum_to_root_total() {
        let _g = lock();
        set_enabled(true);
        set_sample(1);
        reset();
        {
            let _root = scope("t_root");
            spin(200_000);
            {
                let _a = scope("t_a");
                spin(400_000);
                {
                    let _b = scope("t_b");
                    spin(300_000);
                }
            }
            {
                let _a = scope("t_a");
                spin(100_000);
            }
        }
        set_enabled(false);
        let snap = snapshot();
        let find = |p: &str| snap.paths.iter().find(|x| x.path == p).unwrap().clone();
        let root = find("t_root");
        let a = find("t_root;t_a");
        let b = find("t_root;t_a;t_b");
        assert_eq!(root.count, 1);
        assert_eq!(a.count, 2);
        assert_eq!(b.count, 1);
        assert!(root.total_nanos >= a.total_nanos);
        assert!(a.total_nanos >= b.total_nanos);
        let self_sum: u64 = [&root, &a, &b].iter().map(|p| p.self_nanos).sum();
        assert_eq!(self_sum, root.total_nanos, "self times partition the root");
        assert_eq!(snap.collapsed().lines().count(), 3);
        assert!(snap
            .collapsed()
            .lines()
            .any(|l| l.starts_with("t_root;t_a;t_b ")));
        reset();
    }

    #[test]
    fn sampling_decision_is_shared_within_an_op() {
        let _g = lock();
        set_enabled(true);
        set_sample(2);
        reset();
        {
            let _root = scope("t_samp_root");
            for _ in 0..10 {
                let _op = begin_op();
                let _h = hot_scope("t_samp_hot");
                let _inner = hot_scope("t_samp_inner");
            }
        }
        set_enabled(false);
        set_sample(1);
        let snap = snapshot();
        let hot = snap
            .paths
            .iter()
            .find(|p| p.path == "t_samp_root;t_samp_hot")
            .unwrap();
        let inner = snap
            .paths
            .iter()
            .find(|p| p.path == "t_samp_root;t_samp_hot;t_samp_inner")
            .unwrap();
        assert_eq!(hot.count, 5, "1-in-2 sampling keeps half the ops");
        assert_eq!(inner.count, 5, "nested hot scope follows the op decision");
        reset();
    }

    #[test]
    fn publish_exports_per_phase_counters() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _r = scope("t_pub_root");
            let _c = scope("t_pub_leaf");
        }
        set_enabled(false);
        let snap = snapshot();
        let reg = Registry::new();
        snap.publish(&reg);
        let count = reg
            .counter(&labeled("profile.phase.count", &[("phase", "t_pub_leaf")]))
            .get();
        assert_eq!(count, 1);
        reset();
    }
}

//! The Persistent Object Look-aside Buffer (paper §4.1).
//!
//! The POLB is a small, fully-associative, CAM-tagged cache of recent
//! ObjectID translations held inside the core. Two designs are modeled:
//!
//! * [`PipelinedPolb`] — tag: pool id, data: 64-bit *virtual* base address
//!   of the pool. One entry covers the entire pool. The translated virtual
//!   address is then sent through the TLB and L1D as usual (Figure 6a).
//! * [`ParallelPolb`] — tag: the upper 52 bits of the ObjectID (pool id and
//!   page-within-pool), data: the *physical* page frame. The low 12 bits
//!   index the virtually-indexed L1D directly, so the POLB look-up overlaps
//!   the cache access (Figure 6b). One entry covers a single 4 KB page.
//!
//! Both use true-LRU replacement, which is practical at the modeled sizes
//! (1–128 entries).
//!
//! Look-up cost on the host is a tracked hot path: the
//! `translation/polb_*` benchmarks pin it in the committed
//! `BENCH_<n>.json` baseline (docs/BENCHMARKS.md).

use crate::addr::PAGE_BYTES;
use crate::oid::{ObjectId, PoolId};
use crate::stats::PolbStats;
use poat_telemetry::events::{self, EventKind};
use poat_telemetry::Counter;

/// Common interface over the two POLB designs.
///
/// `translate` returns the full translated address on a hit (a virtual
/// address for [`PipelinedPolb`], a physical address for [`ParallelPolb`])
/// and records a hit or miss in [`TranslationBuffer::stats`]. After a miss,
/// the pipeline walks the POT and calls `fill` with the base produced by
/// the walk, mirroring the hardware refill path.
pub trait TranslationBuffer {
    /// Looks up `oid`, returning the translated raw address on a hit.
    fn translate(&mut self, oid: ObjectId) -> Option<u64>;

    /// Installs a translation for `oid`.
    ///
    /// For the Pipelined design `base` is the virtual base address of the
    /// pool; for the Parallel design it is the physical base address of the
    /// 4 KB frame backing `oid`'s page.
    fn fill(&mut self, oid: ObjectId, base: u64);

    /// Drops every entry belonging to `pool` (used on `pool_close`).
    fn invalidate_pool(&mut self, pool: PoolId);

    /// Drops all entries (context switch / process exit).
    fn flush(&mut self);

    /// Hit/miss counters accumulated by `translate`.
    fn stats(&self) -> &PolbStats;

    /// Resets the hit/miss counters (e.g. after warm-up).
    fn reset_stats(&mut self);

    /// Number of entries the buffer can hold (0 = no POLB present).
    fn capacity(&self) -> usize;
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u64,
    data: u64,
    last_use: u64,
}

/// What a [`Cam::fill`] did, so the design wrappers can emit the matching
/// trace events (they know the pool id; the CAM only knows tags).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FillOutcome {
    /// Capacity 0: the fill was dropped.
    Ignored,
    /// An existing entry was refreshed in place.
    Updated,
    /// A new entry was installed in a free slot.
    Inserted,
    /// A new entry displaced the LRU victim with this tag.
    Evicted(u64),
}

/// Shared fully-associative LRU machinery for both designs.
///
/// Besides the per-instance [`PolbStats`] consumed by the simulators, every
/// event also feeds the process-wide `core.polb.*` telemetry counters
/// (aggregated across all live POLB instances and both designs); the
/// handles are resolved once here so the lookup path stays lock-free.
#[derive(Clone, Debug)]
struct Cam {
    entries: Vec<Entry>,
    capacity: usize,
    tick: u64,
    stats: PolbStats,
    tele_hits: Counter,
    tele_misses: Counter,
    tele_fills: Counter,
    tele_evictions: Counter,
}

impl Cam {
    fn new(capacity: usize) -> Self {
        let registry = poat_telemetry::global();
        Cam {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: PolbStats::default(),
            tele_hits: registry.counter("core.polb.hits"),
            tele_misses: registry.counter("core.polb.misses"),
            tele_fills: registry.counter("core.polb.fills"),
            tele_evictions: registry.counter("core.polb.evictions"),
        }
    }

    fn lookup(&mut self, tag: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.iter_mut().find(|e| e.tag == tag) {
            Some(e) => {
                e.last_use = tick;
                self.stats.hits += 1;
                self.tele_hits.inc();
                Some(e.data)
            }
            None => {
                self.stats.misses += 1;
                self.tele_misses.inc();
                None
            }
        }
    }

    fn fill(&mut self, tag: u64, data: u64) -> FillOutcome {
        if self.capacity == 0 {
            return FillOutcome::Ignored;
        }
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.tag == tag) {
            e.data = data;
            e.last_use = self.tick;
            return FillOutcome::Updated;
        }
        let entry = Entry {
            tag,
            data,
            last_use: self.tick,
        };
        self.tele_fills.inc();
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            FillOutcome::Inserted
        } else {
            // Evict the true-LRU victim.
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("invariant: capacity > 0 implies entries non-empty at eviction");
            let victim_tag = self.entries[victim].tag;
            self.entries[victim] = entry;
            self.tele_evictions.inc();
            FillOutcome::Evicted(victim_tag)
        }
    }

    fn retain(&mut self, keep: impl Fn(u64) -> bool) {
        self.entries.retain(|e| keep(e.tag));
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Records a POLB hit/miss trace event (no-op while tracing is disabled).
#[inline]
fn emit_lookup(hit: bool, pool: u32) {
    events::emit(
        if hit {
            EventKind::PolbHit
        } else {
            EventKind::PolbMiss
        },
        pool,
        0,
    );
}

/// Records fill/evict trace events for a [`Cam::fill`] outcome;
/// `victim_pool` recovers the evicted entry's pool id from its tag.
#[inline]
fn emit_fill(outcome: FillOutcome, pool: u32, victim_pool: impl Fn(u64) -> u32) {
    match outcome {
        FillOutcome::Ignored | FillOutcome::Updated => {}
        FillOutcome::Inserted => events::emit(EventKind::PolbFill, pool, 0),
        FillOutcome::Evicted(tag) => {
            events::emit(EventKind::PolbFill, pool, 0);
            events::emit(EventKind::PolbEvict, victim_pool(tag), 0);
        }
    }
}

/// The *Pipelined* POLB: pool id → virtual base address (Figure 6a).
///
/// ```
/// use poat_core::{ObjectId, PoolId};
/// use poat_core::polb::{PipelinedPolb, TranslationBuffer};
///
/// let pool = PoolId::new(1).unwrap();
/// let mut polb = PipelinedPolb::new(4);
/// let oid = ObjectId::new(pool, 0x80);
/// assert_eq!(polb.translate(oid), None);
/// polb.fill(oid, 0x7000_0000);
/// assert_eq!(polb.translate(oid), Some(0x7000_0080));
/// // Any other offset in the same pool hits on the same entry.
/// assert_eq!(polb.translate(ObjectId::new(pool, 0x2000)), Some(0x7000_2000));
/// assert_eq!(polb.stats().hits, 2);
/// ```
#[derive(Clone, Debug)]
pub struct PipelinedPolb {
    cam: Cam,
}

impl PipelinedPolb {
    /// Creates a POLB with `entries` CAM entries (0 disables the buffer).
    pub fn new(entries: usize) -> Self {
        PipelinedPolb {
            cam: Cam::new(entries),
        }
    }
}

impl TranslationBuffer for PipelinedPolb {
    fn translate(&mut self, oid: ObjectId) -> Option<u64> {
        let hit = self.cam.lookup(oid.pool_raw() as u64);
        emit_lookup(hit.is_some(), oid.pool_raw());
        hit.map(|base| base + oid.offset() as u64)
    }

    fn fill(&mut self, oid: ObjectId, base: u64) {
        // Pipelined tags *are* pool ids, so the evicted tag names the
        // victim pool directly.
        emit_fill(
            self.cam.fill(oid.pool_raw() as u64, base),
            oid.pool_raw(),
            |tag| tag as u32,
        );
    }

    fn invalidate_pool(&mut self, pool: PoolId) {
        self.cam.retain(|tag| tag != pool.raw() as u64);
    }

    fn flush(&mut self) {
        self.cam.clear();
    }

    fn stats(&self) -> &PolbStats {
        &self.cam.stats
    }

    fn reset_stats(&mut self) {
        self.cam.stats = PolbStats::default();
    }

    fn capacity(&self) -> usize {
        self.cam.capacity
    }
}

/// The *Parallel* POLB: upper 52 ObjectID bits → physical frame (Figure 6b).
///
/// ```
/// use poat_core::{ObjectId, PoolId};
/// use poat_core::polb::{ParallelPolb, TranslationBuffer};
///
/// let pool = PoolId::new(1).unwrap();
/// let mut polb = ParallelPolb::new(4);
/// let oid = ObjectId::new(pool, 0x1080);
/// polb.fill(oid, 0x40_0000); // physical frame backing page 1 of the pool
/// assert_eq!(polb.translate(oid), Some(0x40_0080));
/// // A different page of the same pool misses: entries are per page.
/// assert_eq!(polb.translate(ObjectId::new(pool, 0x2080)), None);
/// ```
#[derive(Clone, Debug)]
pub struct ParallelPolb {
    cam: Cam,
}

impl ParallelPolb {
    /// Creates a POLB with `entries` CAM entries (0 disables the buffer).
    pub fn new(entries: usize) -> Self {
        ParallelPolb {
            cam: Cam::new(entries),
        }
    }
}

impl TranslationBuffer for ParallelPolb {
    fn translate(&mut self, oid: ObjectId) -> Option<u64> {
        let hit = self.cam.lookup(oid.page_tag());
        emit_lookup(hit.is_some(), oid.pool_raw());
        hit.map(|frame| frame + (oid.offset() as u64 % PAGE_BYTES))
    }

    fn fill(&mut self, oid: ObjectId, base: u64) {
        debug_assert_eq!(base % PAGE_BYTES, 0, "Parallel POLB data is a frame base");
        // Page tags carry the victim's pool id in their upper 32 bits.
        emit_fill(self.cam.fill(oid.page_tag(), base), oid.pool_raw(), |tag| {
            (tag >> 20) as u32
        });
    }

    fn invalidate_pool(&mut self, pool: PoolId) {
        // Page tags carry the pool id in their upper 32 bits (52-bit tag =
        // 32-bit pool id + 20-bit page-in-pool).
        let pool = pool.raw() as u64;
        self.cam.retain(|tag| tag >> 20 != pool);
    }

    fn flush(&mut self) {
        self.cam.clear();
    }

    fn stats(&self) -> &PolbStats {
        &self.cam.stats
    }

    fn reset_stats(&mut self) {
        self.cam.stats = PolbStats::default();
    }

    fn capacity(&self) -> usize {
        self.cam.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: u32) -> PoolId {
        PoolId::new(n).unwrap()
    }

    #[test]
    fn pipelined_hit_and_miss_counting() {
        let mut polb = PipelinedPolb::new(2);
        let oid = ObjectId::new(pool(1), 64);
        assert!(polb.translate(oid).is_none());
        polb.fill(oid, 0x1000);
        assert_eq!(polb.translate(oid), Some(0x1040));
        assert_eq!(polb.stats().misses, 1);
        assert_eq!(polb.stats().hits, 1);
        assert_eq!(polb.stats().lookups(), 2);
    }

    #[test]
    fn pipelined_lru_eviction() {
        let mut polb = PipelinedPolb::new(2);
        polb.fill(ObjectId::new(pool(1), 0), 0x1000);
        polb.fill(ObjectId::new(pool(2), 0), 0x2000);
        // Touch pool 1 so pool 2 becomes LRU.
        assert!(polb.translate(ObjectId::new(pool(1), 0)).is_some());
        polb.fill(ObjectId::new(pool(3), 0), 0x3000);
        assert!(polb.translate(ObjectId::new(pool(1), 4)).is_some());
        assert!(
            polb.translate(ObjectId::new(pool(2), 4)).is_none(),
            "evicted"
        );
        assert!(polb.translate(ObjectId::new(pool(3), 4)).is_some());
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut polb = PipelinedPolb::new(0);
        let oid = ObjectId::new(pool(1), 0);
        polb.fill(oid, 0x1000);
        assert!(polb.translate(oid).is_none());
        assert_eq!(polb.capacity(), 0);
    }

    #[test]
    fn pipelined_one_entry_per_pool() {
        let mut polb = PipelinedPolb::new(1);
        let a = ObjectId::new(pool(1), 0x10_0000);
        let b = ObjectId::new(pool(1), 0x20_0000);
        polb.fill(a, 0x1000_0000);
        // Pages far apart in the same pool still hit: the entry covers the pool.
        assert_eq!(polb.translate(b), Some(0x1020_0000));
    }

    #[test]
    fn parallel_one_entry_per_page() {
        let mut polb = ParallelPolb::new(8);
        let page0 = ObjectId::new(pool(1), 0x10);
        let page1 = ObjectId::new(pool(1), 0x1010);
        polb.fill(page0, 0x8000);
        assert_eq!(polb.translate(page0), Some(0x8010));
        assert!(polb.translate(page1).is_none(), "different page misses");
        polb.fill(page1, 0xA000);
        assert_eq!(polb.translate(page1), Some(0xA010));
    }

    #[test]
    fn parallel_invalidate_pool_drops_all_its_pages() {
        let mut polb = ParallelPolb::new(8);
        polb.fill(ObjectId::new(pool(1), 0x0), 0x8000);
        polb.fill(ObjectId::new(pool(1), 0x1000), 0x9000);
        polb.fill(ObjectId::new(pool(2), 0x0), 0xA000);
        polb.invalidate_pool(pool(1));
        assert!(polb.translate(ObjectId::new(pool(1), 0)).is_none());
        assert!(polb.translate(ObjectId::new(pool(1), 0x1000)).is_none());
        assert!(polb.translate(ObjectId::new(pool(2), 0)).is_some());
    }

    #[test]
    fn pipelined_invalidate_and_flush() {
        let mut polb = PipelinedPolb::new(4);
        polb.fill(ObjectId::new(pool(1), 0), 0x1000);
        polb.fill(ObjectId::new(pool(2), 0), 0x2000);
        polb.invalidate_pool(pool(1));
        assert!(polb.translate(ObjectId::new(pool(1), 0)).is_none());
        assert!(polb.translate(ObjectId::new(pool(2), 0)).is_some());
        polb.flush();
        assert!(polb.translate(ObjectId::new(pool(2), 0)).is_none());
    }

    #[test]
    fn fill_updates_existing_entry() {
        let mut polb = PipelinedPolb::new(2);
        let oid = ObjectId::new(pool(1), 0);
        polb.fill(oid, 0x1000);
        polb.fill(oid, 0x9000); // pool re-mapped
        assert_eq!(polb.translate(oid), Some(0x9000));
    }

    #[test]
    fn reset_stats() {
        let mut polb = ParallelPolb::new(2);
        let _ = polb.translate(ObjectId::new(pool(1), 0));
        polb.reset_stats();
        assert_eq!(polb.stats().lookups(), 0);
    }
}

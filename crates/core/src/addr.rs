//! Virtual and physical address newtypes shared across the workspace.
//!
//! The simulated machine uses 4 KB pages and 64-byte cache blocks, matching
//! the architecture configuration of the paper (Table 4).

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// Bytes per page (4 KB, Table 4).
pub const PAGE_BYTES: u64 = 4096;

/// Bytes per cache block (64 B, Table 4).
pub const CACHE_LINE_BYTES: u64 = 64;

macro_rules! addr_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit address.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw 64-bit address.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The page number (address divided by the 4 KB page size).
            pub const fn page_number(self) -> u64 {
                self.0 / PAGE_BYTES
            }

            /// The byte offset within the page.
            pub const fn page_offset(self) -> u64 {
                self.0 % PAGE_BYTES
            }

            /// The cache-line number (address divided by the 64 B line size).
            pub const fn line_number(self) -> u64 {
                self.0 / CACHE_LINE_BYTES
            }

            /// The address rounded down to its page base.
            pub const fn page_base(self) -> Self {
                $name(self.0 & !(PAGE_BYTES - 1))
            }

            /// The address rounded down to its cache-line base.
            pub const fn line_base(self) -> Self {
                $name(self.0 & !(CACHE_LINE_BYTES - 1))
            }

            /// Returns the address advanced by `bytes`.
            pub const fn offset(self, bytes: u64) -> Self {
                $name(self.0 + bytes)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

addr_type! {
    /// An address in a process' virtual address space.
    ///
    /// ```
    /// use poat_core::VirtAddr;
    /// let va = VirtAddr::new(0x7f00_1234);
    /// assert_eq!(va.page_offset(), 0x234);
    /// assert_eq!(va.page_base().raw(), 0x7f00_1000);
    /// ```
    VirtAddr
}

addr_type! {
    /// A physical (machine) address in simulated NVM or DRAM.
    ///
    /// ```
    /// use poat_core::PhysAddr;
    /// let pa = PhysAddr::new(0x4000).offset(64);
    /// assert_eq!(pa.line_number(), 0x4040 / 64);
    /// ```
    PhysAddr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let va = VirtAddr::new(3 * PAGE_BYTES + 17);
        assert_eq!(va.page_number(), 3);
        assert_eq!(va.page_offset(), 17);
        assert_eq!(va.page_base(), VirtAddr::new(3 * PAGE_BYTES));
    }

    #[test]
    fn line_arithmetic() {
        let pa = PhysAddr::new(130);
        assert_eq!(pa.line_number(), 2);
        assert_eq!(pa.line_base(), PhysAddr::new(128));
    }

    #[test]
    fn add_sub() {
        let a = VirtAddr::new(100);
        let b = a + 28;
        assert_eq!(b.raw(), 128);
        assert_eq!(b - a, 28);
    }

    #[test]
    fn constants_match_table4() {
        assert_eq!(PAGE_BYTES, 4096);
        assert_eq!(CACHE_LINE_BYTES, 64);
    }
}

//! The Persistent Object Table (paper §4.2, Figure 7).
//!
//! The POT tracks the current pool mappings of a process: pool id →
//! virtual base address. It is the backing store behind the POLB, the same
//! way the page table backs the TLB. It is designed around the paper's
//! assumptions:
//!
//! * pools are file-like, so hundreds-to-thousands of mappings suffice —
//!   the default table holds 16384 entries (256 KB);
//! * look-up is a hardware walk modeled after the x86 page-table walk: the
//!   pool id is hashed to an index and **linear probing** resolves
//!   collisions;
//! * pool id 0 marks an invalid (never-allocated) entry, so the table can
//!   be initialized by zeroing;
//! * encountering an invalid entry during a walk means the translation is
//!   missing and an exception must be raised (the OS may abort the program
//!   or let a signal handler map the pool).
//!
//! Walk cost on the host is a tracked hot path: the
//! `translation/pot_walk_*` benchmarks pin it at paper size (16384
//! entries, 1000 pools) in the committed `BENCH_<n>.json` baseline
//! (docs/BENCHMARKS.md).

use std::fmt;

use crate::addr::VirtAddr;
use crate::oid::PoolId;

/// Errors raised by POT operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PotError {
    /// The table has no free slot for a new mapping.
    Full,
    /// The pool is already mapped; `insert` refuses to double-map.
    AlreadyMapped(PoolId),
}

impl fmt::Display for PotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PotError::Full => write!(f, "persistent object table is full"),
            PotError::AlreadyMapped(p) => write!(f, "pool {p} is already mapped"),
        }
    }
}

impl std::error::Error for PotError {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// Never used; terminates probe chains.
    Empty,
    /// Previously held a mapping that was removed; probe chains continue
    /// through it but inserts may reuse it.
    Tombstone,
    /// A live mapping.
    Live { pool: PoolId, base: VirtAddr },
}

/// Outcome of a hardware POT walk, including the number of probes the walk
/// performed (each probe is one table-entry read in real hardware).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkResult {
    /// The translation, or `None` if the walk hit an invalid entry
    /// (translation missing ⇒ exception, paper §4.2).
    pub base: Option<VirtAddr>,
    /// Number of entries examined by linear probing.
    pub probes: u32,
}

/// The Persistent Object Table.
///
/// ```
/// use poat_core::{Pot, PoolId, VirtAddr};
///
/// let mut pot = Pot::new(64);
/// let p = PoolId::new(42).unwrap();
/// pot.insert(p, VirtAddr::new(0x5000_0000)).unwrap();
/// assert_eq!(pot.lookup(p), Some(VirtAddr::new(0x5000_0000)));
/// assert_eq!(pot.lookup(PoolId::new(7).unwrap()), None);
/// ```
#[derive(Clone)]
pub struct Pot {
    slots: Vec<Slot>,
    live: usize,
    walks: u64,
    total_probes: u64,
    tele_walks: poat_telemetry::Counter,
    tele_probe_len: poat_telemetry::Histogram,
    tele_occupancy: poat_telemetry::Gauge,
}

impl Pot {
    /// Creates a POT with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "POT must have at least one entry");
        let registry = poat_telemetry::global();
        let tele_occupancy = registry.gauge("core.pot.occupancy");
        // A fresh table has zero live entries; without this, the gauge
        // keeps the last value published by a *previous* Pot until the
        // first insert/remove, reporting stale occupancy.
        tele_occupancy.set(0);
        Pot {
            slots: vec![Slot::Empty; entries],
            live: 0,
            walks: 0,
            total_probes: 0,
            tele_walks: registry.counter("core.pot.walks"),
            tele_probe_len: registry.histogram("core.pot.probe_len"),
            tele_occupancy,
        }
    }

    /// The hash function the hardware walker applies to a pool id.
    ///
    /// A Fibonacci-style multiplicative hash: cheap to realize in hardware
    /// (one multiply) and well-distributed for sequential pool ids.
    fn hash(&self, pool: PoolId) -> usize {
        let h = (pool.raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.slots.len()
    }

    /// Maps `pool` at `base`.
    ///
    /// # Errors
    ///
    /// [`PotError::AlreadyMapped`] if the pool has a live entry, or
    /// [`PotError::Full`] if probing wraps without finding a free slot.
    pub fn insert(&mut self, pool: PoolId, base: VirtAddr) -> Result<(), PotError> {
        let start = self.hash(pool);
        let n = self.slots.len();
        let mut first_free = None;
        for i in 0..n {
            let idx = (start + i) % n;
            match self.slots[idx] {
                Slot::Empty => {
                    let idx = first_free.unwrap_or(idx);
                    self.slots[idx] = Slot::Live { pool, base };
                    self.live += 1;
                    self.tele_occupancy.set(self.live as u64);
                    return Ok(());
                }
                Slot::Tombstone => {
                    first_free.get_or_insert(idx);
                }
                Slot::Live { pool: p, .. } if p == pool => {
                    return Err(PotError::AlreadyMapped(pool));
                }
                Slot::Live { .. } => {}
            }
        }
        if let Some(idx) = first_free {
            self.slots[idx] = Slot::Live { pool, base };
            self.live += 1;
            self.tele_occupancy.set(self.live as u64);
            return Ok(());
        }
        Err(PotError::Full)
    }

    /// Performs a hardware walk for `pool`, recording probe statistics.
    ///
    /// The walk starts at the hashed index and probes linearly. A live
    /// matching entry yields the translation; an `Empty` slot means the
    /// mapping does not exist (the caller raises an exception).
    pub fn walk(&mut self, pool: PoolId) -> WalkResult {
        self.walks += 1;
        let start = self.hash(pool);
        let n = self.slots.len();
        let mut result = WalkResult {
            base: None,
            probes: n as u32,
        };
        for i in 0..n {
            let idx = (start + i) % n;
            match self.slots[idx] {
                Slot::Empty => {
                    result.probes = i as u32 + 1;
                    break;
                }
                Slot::Live { pool: p, base } if p == pool => {
                    result.base = Some(base);
                    result.probes = i as u32 + 1;
                    break;
                }
                _ => {}
            }
        }
        self.total_probes += result.probes as u64;
        self.tele_walks.inc();
        self.tele_probe_len.record(result.probes as u64);
        // Close the PotWalkBegin the translation unit opened (no-op while
        // event tracing is disabled); the probe count rides in `arg`.
        poat_telemetry::events::emit(
            poat_telemetry::events::EventKind::PotWalkEnd,
            pool.raw(),
            result.probes,
        );
        result
    }

    /// Looks up a pool without touching walk statistics (software view).
    pub fn lookup(&self, pool: PoolId) -> Option<VirtAddr> {
        let start = self.hash(pool);
        let n = self.slots.len();
        for i in 0..n {
            match self.slots[(start + i) % n] {
                Slot::Empty => return None,
                Slot::Live { pool: p, base } if p == pool => return Some(base),
                _ => {}
            }
        }
        None
    }

    /// Unmaps a pool, returning its base address if it was mapped.
    pub fn remove(&mut self, pool: PoolId) -> Option<VirtAddr> {
        let start = self.hash(pool);
        let n = self.slots.len();
        for i in 0..n {
            let idx = (start + i) % n;
            match self.slots[idx] {
                Slot::Empty => return None,
                Slot::Live { pool: p, base } if p == pool => {
                    self.slots[idx] = Slot::Tombstone;
                    self.live -= 1;
                    self.tele_occupancy.set(self.live as u64);
                    return Some(base);
                }
                _ => {}
            }
        }
        None
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table holds no live mappings.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of hardware walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Mean probes per walk (1.0 = perfect hashing), or 0 if no walks ran.
    pub fn mean_probes(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.total_probes as f64 / self.walks as f64
        }
    }

    /// The memory footprint of the table in bytes (16 B per entry: 4 B pool
    /// id + padding + 8 B base address), as sized in the paper (§5.1:
    /// 16384 entries ⇒ 256 KB).
    pub fn footprint_bytes(&self) -> usize {
        self.slots.len() * 16
    }
}

impl fmt::Debug for Pot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pot")
            .field("capacity", &self.slots.len())
            .field("live", &self.live)
            .field("walks", &self.walks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: u32) -> PoolId {
        PoolId::new(n).unwrap()
    }

    #[test]
    fn insert_walk_lookup() {
        let mut pot = Pot::new(16);
        pot.insert(pool(1), VirtAddr::new(0x1000)).unwrap();
        let r = pot.walk(pool(1));
        assert_eq!(r.base, Some(VirtAddr::new(0x1000)));
        assert!(r.probes >= 1);
        assert_eq!(pot.lookup(pool(1)), Some(VirtAddr::new(0x1000)));
    }

    #[test]
    fn missing_translation_is_none() {
        let mut pot = Pot::new(16);
        assert_eq!(pot.walk(pool(9)).base, None);
        assert_eq!(pot.lookup(pool(9)), None);
    }

    #[test]
    fn double_map_rejected() {
        let mut pot = Pot::new(16);
        pot.insert(pool(1), VirtAddr::new(0x1000)).unwrap();
        assert_eq!(
            pot.insert(pool(1), VirtAddr::new(0x2000)),
            Err(PotError::AlreadyMapped(pool(1)))
        );
    }

    #[test]
    fn fills_to_capacity_then_full() {
        let mut pot = Pot::new(8);
        for i in 1..=8 {
            pot.insert(pool(i), VirtAddr::new(i as u64 * 0x1000))
                .unwrap();
        }
        assert_eq!(pot.len(), 8);
        assert_eq!(
            pot.insert(pool(9), VirtAddr::new(0x9000)),
            Err(PotError::Full)
        );
        // Every mapping still resolvable despite collisions.
        for i in 1..=8 {
            assert_eq!(pot.lookup(pool(i)), Some(VirtAddr::new(i as u64 * 0x1000)));
        }
    }

    #[test]
    fn remove_leaves_probe_chains_intact() {
        let mut pot = Pot::new(4);
        for i in 1..=4 {
            pot.insert(pool(i), VirtAddr::new(i as u64)).unwrap();
        }
        // Remove one in the middle of a (possibly) shared chain.
        assert_eq!(pot.remove(pool(2)), Some(VirtAddr::new(2)));
        assert_eq!(pot.lookup(pool(2)), None);
        for i in [1u32, 3, 4] {
            assert_eq!(
                pot.lookup(pool(i)),
                Some(VirtAddr::new(i as u64)),
                "pool {i}"
            );
        }
        // Tombstone is reusable.
        pot.insert(pool(7), VirtAddr::new(7)).unwrap();
        assert_eq!(pot.lookup(pool(7)), Some(VirtAddr::new(7)));
    }

    #[test]
    fn walk_counts_probes() {
        let mut pot = Pot::new(16);
        for i in 1..=12 {
            pot.insert(pool(i), VirtAddr::new(i as u64)).unwrap();
        }
        for i in 1..=12 {
            assert!(pot.walk(pool(i)).base.is_some());
        }
        assert_eq!(pot.walks(), 12);
        assert!(pot.mean_probes() >= 1.0);
    }

    #[test]
    fn paper_footprint() {
        let pot = Pot::new(16384);
        assert_eq!(pot.footprint_bytes(), 256 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = Pot::new(0);
    }
}

//! Counters for the translation hardware.

use serde::{Deserialize, Serialize};

/// Hit/miss counters for a POLB (Tables 8 and 9 of the paper report these
/// as miss rates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolbStats {
    /// Look-ups that found a valid matching entry.
    pub hits: u64,
    /// Look-ups that required a POT walk.
    pub misses: u64,
}

impl PolbStats {
    /// Total look-ups performed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in [0, 1]; 0 when no look-ups were performed.
    ///
    /// ```
    /// use poat_core::stats::PolbStats;
    /// let s = PolbStats { hits: 3, misses: 1 };
    /// assert_eq!(s.miss_rate(), 0.25);
    /// ```
    pub fn miss_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Aggregate statistics for a full translation unit (POLB + POT) over a
/// simulated run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationStats {
    /// POLB counters.
    pub polb: PolbStats,
    /// Hardware POT walks triggered by POLB misses.
    pub pot_walks: u64,
    /// Walks that found no mapping and raised an exception.
    pub exceptions: u64,
    /// Total cycles charged to translation (POLB access + walk penalties).
    pub translation_cycles: u64,
}

impl TranslationStats {
    /// Merges another unit's counters into this one (e.g. across cores).
    pub fn merge(&mut self, other: &TranslationStats) {
        self.polb.hits += other.polb.hits;
        self.polb.misses += other.polb.misses;
        self.pot_walks += other.pot_walks;
        self.exceptions += other.exceptions;
        self.translation_cycles += other.translation_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_empty_is_zero() {
        assert_eq!(PolbStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_fraction() {
        let s = PolbStats { hits: 9, misses: 1 };
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(s.lookups(), 10);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TranslationStats {
            polb: PolbStats { hits: 1, misses: 2 },
            pot_walks: 2,
            exceptions: 0,
            translation_cycles: 60,
        };
        let b = TranslationStats {
            polb: PolbStats { hits: 3, misses: 4 },
            pot_walks: 4,
            exceptions: 1,
            translation_cycles: 120,
        };
        a.merge(&b);
        assert_eq!(a.polb.hits, 4);
        assert_eq!(a.polb.misses, 6);
        assert_eq!(a.pot_walks, 6);
        assert_eq!(a.exceptions, 1);
        assert_eq!(a.translation_cycles, 180);
    }
}

//! Translation-hardware configuration knobs (paper §5.1, Table 4).

use serde::{Deserialize, Serialize};

/// Which POLB microarchitecture is simulated (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolbDesign {
    /// POLB translates pool id → virtual base address in the AGEN stage,
    /// then the TLB and L1D are accessed as usual. Adds the POLB access
    /// latency in front of every `nvld`/`nvst`, but one POLB entry covers a
    /// whole pool.
    Pipelined,
    /// POLB translates (pool id, page-in-pool) → physical frame in parallel
    /// with the L1D tag access. No added hit latency, but one entry per
    /// *page* and a longer miss penalty (POT walk + page-table walk).
    Parallel,
}

impl PolbDesign {
    /// All designs, in the order the paper's figures present them.
    pub const ALL: [PolbDesign; 2] = [PolbDesign::Pipelined, PolbDesign::Parallel];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            PolbDesign::Pipelined => "Pipelined",
            PolbDesign::Parallel => "Parallel",
        }
    }
}

impl std::fmt::Display for PolbDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Latency and sizing parameters for the translation hardware.
///
/// Defaults reproduce Table 4 of the paper: a 32-entry POLB with a 3-cycle
/// (1 ns at 2.66 GHz) access, a 30-cycle POT walk for *Pipelined* and a
/// 60-cycle combined POT + page-table walk for *Parallel*, and a
/// 16384-entry POT.
///
/// ```
/// use poat_core::TranslationConfig;
/// let cfg = TranslationConfig::default();
/// assert_eq!(cfg.polb_entries, 32);
/// assert_eq!(cfg.polb_access_cycles, 3);
/// assert_eq!(cfg.pot_walk_cycles, 30);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationConfig {
    /// Which POLB design to simulate.
    pub design: PolbDesign,
    /// Number of POLB entries (0 = no POLB: every translation walks the POT).
    pub polb_entries: usize,
    /// Cycles to search the POLB CAM and compute the address (Pipelined
    /// charges this before the TLB/cache access; Parallel hides it).
    pub polb_access_cycles: u64,
    /// Fixed POT-walk penalty on a POLB miss (Pipelined).
    pub pot_walk_cycles: u64,
    /// Fixed combined POT + page-table walk penalty on a POLB miss
    /// (Parallel).
    pub pot_page_walk_cycles: u64,
    /// Number of POT entries per process.
    pub pot_entries: usize,
    /// Ideal mode: translation is free (no POLB latency, no miss penalty).
    /// Used for the red-dot upper bounds in Figure 9 and the "ideal" bar of
    /// Figure 12.
    pub ideal: bool,
}

impl TranslationConfig {
    /// The paper's default configuration for a given design.
    pub fn for_design(design: PolbDesign) -> Self {
        TranslationConfig {
            design,
            ..Self::default()
        }
    }

    /// An ideal (zero-overhead) variant of this configuration.
    pub fn idealized(mut self) -> Self {
        self.ideal = true;
        self
    }

    /// The POLB miss penalty for this configuration's design.
    pub fn miss_penalty_cycles(&self) -> u64 {
        if self.ideal {
            return 0;
        }
        match self.design {
            PolbDesign::Pipelined => self.pot_walk_cycles,
            PolbDesign::Parallel => self.pot_page_walk_cycles,
        }
    }

    /// Cycles a POLB miss costs when the POT walk itself *faults* (no
    /// mapping for the pool): only the POT-walk share is charged. The
    /// Parallel design's page-table walk never runs in that case — there
    /// is no base address to walk from — so charging the full combined
    /// [`miss_penalty_cycles`](Self::miss_penalty_cycles) would
    /// overstate the fault path by the page-walk latency.
    pub fn fault_penalty_cycles(&self) -> u64 {
        if self.ideal {
            return 0;
        }
        self.pot_walk_cycles
    }

    /// The added latency a POLB *hit* contributes to a memory access.
    ///
    /// Pipelined serializes the POLB in front of the TLB + cache; Parallel
    /// overlaps it with the L1D access and contributes nothing on a hit.
    pub fn hit_latency_cycles(&self) -> u64 {
        if self.ideal {
            return 0;
        }
        match self.design {
            PolbDesign::Pipelined => self.polb_access_cycles,
            PolbDesign::Parallel => 0,
        }
    }
}

impl Default for TranslationConfig {
    fn default() -> Self {
        TranslationConfig {
            design: PolbDesign::Pipelined,
            polb_entries: 32,
            polb_access_cycles: 3,
            pot_walk_cycles: 30,
            pot_page_walk_cycles: 60,
            pot_entries: 16384,
            ideal: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table4() {
        let cfg = TranslationConfig::default();
        assert_eq!(cfg.polb_entries, 32);
        assert_eq!(cfg.polb_access_cycles, 3);
        assert_eq!(cfg.pot_walk_cycles, 30);
        assert_eq!(cfg.pot_page_walk_cycles, 60);
        assert_eq!(cfg.pot_entries, 16384);
        assert!(!cfg.ideal);
    }

    #[test]
    fn miss_penalty_depends_on_design() {
        let p = TranslationConfig::for_design(PolbDesign::Pipelined);
        let q = TranslationConfig::for_design(PolbDesign::Parallel);
        assert_eq!(p.miss_penalty_cycles(), 30);
        assert_eq!(q.miss_penalty_cycles(), 60);
        assert_eq!(p.hit_latency_cycles(), 3);
        assert_eq!(q.hit_latency_cycles(), 0);
    }

    #[test]
    fn ideal_zeroes_all_penalties() {
        let cfg = TranslationConfig::default().idealized();
        assert_eq!(cfg.miss_penalty_cycles(), 0);
        assert_eq!(cfg.hit_latency_cycles(), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(PolbDesign::Pipelined.to_string(), "Pipelined");
        assert_eq!(PolbDesign::Parallel.label(), "Parallel");
    }
}

// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-core — the hardware translation layer
//!
//! This crate models the primary contribution of *"Hardware Supported
//! Persistent Object Address Translation"* (MICRO'17): interpreting
//! **ObjectIDs** as a persistent address space that sits on top of virtual
//! memory, translated in hardware by two cooperating structures:
//!
//! * the [`polb::PipelinedPolb`] / [`polb::ParallelPolb`] — a small,
//!   CAM-organized **Persistent Object Look-aside Buffer** inside the core
//!   (analogous to a TLB), and
//! * the [`pot::Pot`] — the **Persistent Object Table**, an in-memory,
//!   linearly-probed hash table walked by hardware on a POLB miss
//!   (analogous to a page table).
//!
//! Two microarchitectural designs are modeled (paper §4.1):
//!
//! | design | POLB tag | POLB data | placed | miss handling |
//! |--------|----------|-----------|--------|---------------|
//! | *Pipelined* | pool id (32 b) | virtual base address | AGEN stage, before TLB + L1D | POT walk |
//! | *Parallel*  | upper 52 b of ObjectID (pool id + page-in-pool) | physical frame number | in parallel with the VIPT L1D | POT walk **+ page-table walk** |
//!
//! ## Example
//!
//! ```
//! use poat_core::{ObjectId, PoolId, VirtAddr};
//! use poat_core::polb::{PipelinedPolb, TranslationBuffer};
//! use poat_core::pot::Pot;
//!
//! let mut pot = Pot::new(1024);
//! let pool = PoolId::new(7).unwrap();
//! pot.insert(pool, VirtAddr::new(0x7000_0000)).unwrap();
//!
//! let mut polb = PipelinedPolb::new(32);
//! let oid = ObjectId::new(pool, 0x10);
//! // First access misses the POLB and is filled from the POT.
//! assert!(polb.translate(oid).is_none());
//! let base = pot.lookup(pool).unwrap();
//! polb.fill(oid, base.raw());
//! assert_eq!(polb.translate(oid), Some(VirtAddr::new(0x7000_0010).raw()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod oid;
pub mod polb;
pub mod pot;
pub mod stats;

pub use addr::{PhysAddr, VirtAddr, CACHE_LINE_BYTES, PAGE_BYTES};
pub use config::{PolbDesign, TranslationConfig};
pub use oid::{ObjectId, PoolId};
pub use pot::{Pot, PotError};
pub use stats::TranslationStats;

//! ObjectIDs and pool identifiers (paper §2.1.2, Figure 1).
//!
//! An [`ObjectId`] is the concatenation of a system-wide unique 32-bit pool
//! identifier (upper bits) and a 32-bit byte offset within the pool (lower
//! bits), so that it fits in one 64-bit register. Pool id 0 is reserved for
//! the NULL pool (paper §4.2), which makes the all-zero ObjectId the natural
//! NULL reference for building linked structures.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A system-wide unique identifier assigned to a pool when it is created.
///
/// Pool id 0 is reserved to denote the NULL pool and cannot be constructed;
/// this allows hardware structures (POT, POLB) to treat an all-zero entry as
/// invalid (paper §4.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PoolId(u32);

impl PoolId {
    /// Creates a pool id, returning `None` for the reserved value 0.
    ///
    /// ```
    /// use poat_core::PoolId;
    /// assert!(PoolId::new(1).is_some());
    /// assert!(PoolId::new(0).is_none());
    /// ```
    pub fn new(raw: u32) -> Option<Self> {
        (raw != 0).then_some(PoolId(raw))
    }

    /// The raw 32-bit identifier.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PoolId({})", self.0)
    }
}

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A reference to a byte of persistent data: `pool_id << 32 | offset`.
///
/// ObjectIDs are what persistent data structures store in their link fields
/// instead of raw pointers, making every object relocatable: the same
/// ObjectId remains valid regardless of where the pool is mapped in a
/// process' virtual address space.
///
/// ```
/// use poat_core::{ObjectId, PoolId};
///
/// let pool = PoolId::new(3).unwrap();
/// let oid = ObjectId::new(pool, 0x40);
/// assert_eq!(oid.pool(), Some(pool));
/// assert_eq!(oid.offset(), 0x40);
/// assert_eq!(oid.raw(), (3 << 32) | 0x40);
/// assert!(!oid.is_null());
/// assert!(ObjectId::NULL.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ObjectId(u64);

impl ObjectId {
    /// The NULL reference: pool 0, offset 0.
    pub const NULL: ObjectId = ObjectId(0);

    /// Builds an ObjectId from a pool id and a byte offset within the pool.
    pub fn new(pool: PoolId, offset: u32) -> Self {
        ObjectId(((pool.raw() as u64) << 32) | offset as u64)
    }

    /// Reconstructs an ObjectId from its raw 64-bit representation.
    pub fn from_raw(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// The raw 64-bit representation (as held in a register).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The pool identifier, or `None` for a NULL-pool reference.
    pub fn pool(self) -> Option<PoolId> {
        PoolId::new((self.0 >> 32) as u32)
    }

    /// The raw pool-id bits (upper 32), including the reserved 0.
    pub fn pool_raw(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The byte offset within the pool (lower 32 bits).
    pub fn offset(self) -> u32 {
        self.0 as u32
    }

    /// Whether this is the NULL reference (pool id 0).
    ///
    /// Note that *any* ObjectId whose pool bits are 0 is NULL, regardless of
    /// offset, because pool 0 cannot exist.
    pub fn is_null(self) -> bool {
        self.pool_raw() == 0
    }

    /// Returns an ObjectId `bytes` further into the same pool.
    ///
    /// This mirrors pointer arithmetic on the offset field and is what the
    /// `nvld rd, rs1, imm` immediate computes in the AGEN stage.
    ///
    /// # Panics
    ///
    /// Panics if the resulting offset overflows the 32-bit offset field
    /// (which would silently change the pool id on real hardware).
    // Deliberately named like pointer arithmetic; ObjectId is an address.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u32) -> Self {
        let off = self
            .offset()
            .checked_add(bytes)
            .expect("ObjectId offset overflow");
        ObjectId((self.0 & 0xFFFF_FFFF_0000_0000) | off as u64)
    }

    /// The upper 52 bits of the ObjectId: pool id plus page-within-pool.
    ///
    /// This is the tag the *Parallel* POLB design matches on (paper §4.1.2),
    /// assuming 4 KB pages: the low 12 bits index within the page and go
    /// straight to the virtually-indexed L1D.
    pub fn page_tag(self) -> u64 {
        self.0 >> 12
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "ObjectId(NULL)")
        } else {
            write!(f, "ObjectId({}:{:#x})", self.pool_raw(), self.offset())
        }
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "NULL")
        } else {
            write!(f, "{}:{:#x}", self.pool_raw(), self.offset())
        }
    }
}

impl From<ObjectId> for u64 {
    fn from(oid: ObjectId) -> u64 {
        oid.raw()
    }
}

impl From<u64> for ObjectId {
    fn from(raw: u64) -> ObjectId {
        ObjectId::from_raw(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_id_zero_is_reserved() {
        assert!(PoolId::new(0).is_none());
        assert_eq!(PoolId::new(5).unwrap().raw(), 5);
    }

    #[test]
    fn oid_round_trips_fields() {
        let pool = PoolId::new(0xDEAD).unwrap();
        let oid = ObjectId::new(pool, 0xBEEF);
        assert_eq!(oid.pool(), Some(pool));
        assert_eq!(oid.offset(), 0xBEEF);
        assert_eq!(ObjectId::from_raw(oid.raw()), oid);
    }

    #[test]
    fn null_detection() {
        assert!(ObjectId::NULL.is_null());
        assert!(ObjectId::from_raw(0x42).is_null(), "pool bits 0 is NULL");
        let oid = ObjectId::new(PoolId::new(1).unwrap(), 0);
        assert!(!oid.is_null());
    }

    #[test]
    fn add_stays_in_pool() {
        let pool = PoolId::new(9).unwrap();
        let oid = ObjectId::new(pool, 100).add(28);
        assert_eq!(oid.pool(), Some(pool));
        assert_eq!(oid.offset(), 128);
    }

    #[test]
    #[should_panic(expected = "offset overflow")]
    fn add_overflow_panics() {
        let oid = ObjectId::new(PoolId::new(1).unwrap(), u32::MAX);
        let _ = oid.add(1);
    }

    #[test]
    fn page_tag_strips_page_offset() {
        let pool = PoolId::new(2).unwrap();
        let a = ObjectId::new(pool, 0x1000);
        let b = ObjectId::new(pool, 0x1FFF);
        let c = ObjectId::new(pool, 0x2000);
        assert_eq!(a.page_tag(), b.page_tag());
        assert_ne!(a.page_tag(), c.page_tag());
    }

    #[test]
    fn display_formats() {
        let oid = ObjectId::new(PoolId::new(3).unwrap(), 0x40);
        assert_eq!(oid.to_string(), "3:0x40");
        assert_eq!(ObjectId::NULL.to_string(), "NULL");
        assert!(!format!("{oid:?}").is_empty());
    }
}

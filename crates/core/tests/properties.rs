//! Property-based tests for the translation structures.

use std::collections::HashMap;

use poat_core::polb::{ParallelPolb, PipelinedPolb, TranslationBuffer};
use poat_core::{ObjectId, PoolId, Pot, VirtAddr};
use proptest::prelude::*;

fn pool_id() -> impl Strategy<Value = PoolId> {
    (1u32..5000).prop_map(|p| PoolId::new(p).expect("non-zero"))
}

proptest! {
    #[test]
    fn objectid_roundtrips(pool in pool_id(), off in any::<u32>()) {
        let oid = ObjectId::new(pool, off);
        prop_assert_eq!(oid.pool(), Some(pool));
        prop_assert_eq!(oid.offset(), off);
        prop_assert_eq!(ObjectId::from_raw(oid.raw()), oid);
        prop_assert!(!oid.is_null());
    }

    #[test]
    fn objectid_page_tag_consistent_with_offset(pool in pool_id(), off in any::<u32>()) {
        let oid = ObjectId::new(pool, off);
        // Same page ⇒ same tag; different page within pool ⇒ different tag.
        let same_page = ObjectId::new(pool, (off & !0xFFF) | (!off & 0xFFF));
        prop_assert_eq!(oid.page_tag(), same_page.page_tag());
        if off >= 4096 {
            let other_page = ObjectId::new(pool, off - 4096);
            prop_assert_ne!(oid.page_tag(), other_page.page_tag());
        }
    }

    /// The pipelined POLB agrees with a reference map for every
    /// fill/translate/invalidate sequence, modulo capacity evictions:
    /// a hit must always return the reference translation.
    #[test]
    fn pipelined_polb_hits_are_always_correct(
        cap in 1usize..16,
        ops in prop::collection::vec((1u32..12, 0u32..4096, any::<bool>()), 1..200),
    ) {
        let mut polb = PipelinedPolb::new(cap);
        let mut reference: HashMap<u32, u64> = HashMap::new();
        for (pool_raw, off, is_fill) in ops {
            let pool = PoolId::new(pool_raw).expect("non-zero");
            let oid = ObjectId::new(pool, off);
            let base = (pool_raw as u64) << 32;
            if is_fill {
                polb.fill(oid, base);
                reference.insert(pool_raw, base);
            } else if let Some(got) = polb.translate(oid) {
                let want = reference.get(&pool_raw).copied().map(|b| b + off as u64);
                prop_assert_eq!(Some(got), want, "stale or fabricated translation");
            }
        }
        prop_assert!(polb.stats().lookups() >= 1 || polb.stats().hits == 0);
    }

    /// The parallel POLB never returns a translation for the wrong page.
    #[test]
    fn parallel_polb_translations_match_their_page(
        cap in 1usize..16,
        fills in prop::collection::vec((1u32..8, 0u32..16), 1..64),
        probes in prop::collection::vec((1u32..8, 0u32..65536), 1..64),
    ) {
        let mut polb = ParallelPolb::new(cap);
        let mut frames: HashMap<u64, u64> = HashMap::new();
        for (i, (pool_raw, page)) in fills.iter().enumerate() {
            let oid = ObjectId::new(PoolId::new(*pool_raw).expect("non-zero"), page * 4096);
            let frame = (i as u64 + 1) * 0x10_000;
            polb.fill(oid, frame);
            frames.insert(oid.page_tag(), frame);
        }
        for (pool_raw, off) in probes {
            let oid = ObjectId::new(PoolId::new(pool_raw).expect("non-zero"), off);
            if let Some(pa) = polb.translate(oid) {
                let frame = frames.get(&oid.page_tag());
                prop_assert_eq!(Some(pa & !0xFFF), frame.copied(), "wrong frame");
                prop_assert_eq!(pa & 0xFFF, off as u64 & 0xFFF, "page offset mangled");
            }
        }
    }

    /// The POT behaves like a map for arbitrary insert/remove/walk mixes,
    /// as long as it never overfills.
    #[test]
    fn pot_is_a_map(
        ops in prop::collection::vec((1u32..64, 0u8..3), 1..300),
    ) {
        let mut pot = Pot::new(128);
        let mut reference: HashMap<u32, u64> = HashMap::new();
        for (pool_raw, op) in ops {
            let pool = PoolId::new(pool_raw).expect("non-zero");
            match op {
                0 => {
                    let base = (pool_raw as u64 + 7) << 20;
                    match pot.insert(pool, VirtAddr::new(base)) {
                        Ok(()) => {
                            prop_assert!(!reference.contains_key(&pool_raw));
                            reference.insert(pool_raw, base);
                        }
                        Err(_) => prop_assert!(reference.contains_key(&pool_raw)),
                    }
                }
                1 => {
                    let got = pot.remove(pool).map(|v| v.raw());
                    prop_assert_eq!(got, reference.remove(&pool_raw));
                }
                _ => {
                    let got = pot.walk(pool).base.map(|v| v.raw());
                    prop_assert_eq!(got, reference.get(&pool_raw).copied());
                }
            }
            prop_assert_eq!(pot.len(), reference.len());
        }
    }
}

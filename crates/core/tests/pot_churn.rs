//! Model-based churn test for the POT: interleaved insert/remove/walk
//! sequences must keep `walk`, `lookup`, `len` and the published
//! occupancy gauge in agreement with a reference map.
//!
//! This lives in its own integration-test binary (one process) because
//! it asserts on the *global* `core.pot.occupancy` gauge, which unit
//! tests running concurrently in the library test binary would trample.

use proptest::prelude::*;
use std::collections::HashMap;

use poat_core::{PoolId, Pot, VirtAddr};

const ENTRIES: usize = 8;

fn occupancy_gauge() -> poat_telemetry::Gauge {
    poat_telemetry::global().gauge("core.pot.occupancy")
}

#[derive(Clone, Debug)]
enum Op {
    Insert(u32, u64),
    Remove(u32),
    Walk(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Pool ids drawn from a small range so removes and walks frequently
    // target live entries, and the 8-slot table fills up and collides.
    prop_oneof![
        (1u32..=16, 1u64..=1 << 40).prop_map(|(p, b)| Op::Insert(p, b * 64)),
        (1u32..=16).prop_map(Op::Remove),
        (1u32..=16).prop_map(Op::Walk),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn pot_agrees_with_model_under_churn(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut pot = Pot::new(ENTRIES);
        let mut model: HashMap<u32, u64> = HashMap::new();
        let gauge = occupancy_gauge();

        for op in ops {
            match op {
                Op::Insert(p, base) => {
                    let r = pot.insert(PoolId::new(p).unwrap(), VirtAddr::new(base));
                    if model.contains_key(&p) {
                        prop_assert!(r.is_err(), "double-map of pool {p} must be rejected");
                    } else if model.len() < ENTRIES {
                        prop_assert!(r.is_ok(), "insert of pool {p} into non-full table failed: {r:?}");
                        model.insert(p, base);
                    } else {
                        prop_assert!(r.is_err(), "insert into full table must fail");
                    }
                }
                Op::Remove(p) => {
                    let got = pot.remove(PoolId::new(p).unwrap()).map(|v| v.raw());
                    prop_assert_eq!(got, model.remove(&p), "remove({}) disagrees with model", p);
                }
                Op::Walk(p) => {
                    let pool = PoolId::new(p).unwrap();
                    let want = model.get(&p).copied();
                    let walk = pot.walk(pool);
                    prop_assert_eq!(walk.base.map(|v| v.raw()), want, "walk({}) disagrees", p);
                    prop_assert_eq!(pot.lookup(pool).map(|v| v.raw()), want, "lookup({}) disagrees", p);
                    prop_assert!(
                        walk.probes as usize <= ENTRIES,
                        "walk probed {} slots in an {}-slot table", walk.probes, ENTRIES
                    );
                }
            }
            prop_assert_eq!(pot.len(), model.len(), "live count diverged from model");
            prop_assert_eq!(
                gauge.get(),
                model.len() as u64,
                "occupancy gauge diverged from live count"
            );
        }
    }
}

#[test]
fn fresh_pot_resets_occupancy_gauge() {
    let mut a = Pot::new(ENTRIES);
    for i in 1..=3u32 {
        a.insert(PoolId::new(i).unwrap(), VirtAddr::new(i as u64 * 4096))
            .unwrap();
    }
    assert_eq!(occupancy_gauge().get(), 3);
    // A brand-new table has no live entries: the gauge must say so
    // rather than keep reporting the previous table's occupancy.
    let b = Pot::new(ENTRIES);
    assert_eq!(b.len(), 0);
    assert_eq!(
        occupancy_gauge().get(),
        0,
        "gauge still reports the previous Pot's occupancy"
    );
}

//! TPC-C over persistent B+Trees (paper Table 5, TPCC).
//!
//! "Generate 1 warehouse according to the parameters in the TPC-C spec and
//! perform 1000 transactions", with every table held in a B+Tree backed by
//! persistent memory (the paper moved TPC-C's B+Tree structures into
//! pools). Two placements exist (Table 6): `TPCC_ALL` puts every tree in
//! one pool; `TPCC_EACH` gives each tree its own pool.
//!
//! The implementation covers the five TPC-C transaction profiles with the
//! spec's mix (NewOrder 45%, Payment 43%, OrderStatus/Delivery/StockLevel
//! 4% each) over the spec's cardinalities, linearly scalable through
//! [`TpccConfig::scale`] so the simulation harness can trade setup time
//! for fidelity (documented in EXPERIMENTS.md; the paper's shape is
//! preserved because per-transaction work is scale-independent once trees
//! are a few levels deep). Each transaction runs inside one undo-log
//! transaction on its district's pool — a simplification of the paper's
//! "TPC-C's own failure-safe logging", preserving both the logging traffic
//! and the crash safety it provides.
//!
//! Tables and their (packed) keys:
//!
//! | table | key | record fields |
//! |-------|-----|----------------|
//! | warehouse | `w` | ytd |
//! | district | `d` | next_o_id, ytd |
//! | customer | `d·10^6 + c` | balance, ytd_payment, payment_cnt, delivery_cnt |
//! | item | `i` | price |
//! | stock | `i` | quantity, ytd, order_cnt |
//! | orders | `d<<40 \| o` | c_id, ol_cnt, carrier_id |
//! | new_order | `d<<40 \| o` | (presence only) |
//! | order_line | `d<<40 \| o<<8 \| n` | item, qty, amount |
//! | history | sequence number | c_key, amount |

use poat_core::{ObjectId, PoolId};
use poat_pmem::{PmemError, Runtime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bplus::PersistentBPlusTree;
use crate::util::TxLogSet;

/// Pool placement for TPC-C (paper Table 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TpccPattern {
    /// All B+Tree structures in one pool (`TPCC_ALL`).
    All,
    /// Each B+Tree structure in its own pool (`TPCC_EACH`).
    Each,
}

impl TpccPattern {
    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            TpccPattern::All => "TPCC_ALL",
            TpccPattern::Each => "TPCC_EACH",
        }
    }
}

impl std::fmt::Display for TpccPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Scale and sizing parameters.
#[derive(Clone, Copy, Debug)]
pub struct TpccConfig {
    /// Linear scale on the spec cardinalities (1.0 = 100 000 items,
    /// 3000 customers/district, 3000 initial orders/district).
    pub scale: f64,
    /// Deterministic seed for population and the transaction stream.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            scale: 1.0,
            seed: 1,
        }
    }
}

impl TpccConfig {
    /// Items in the catalog (spec: 100 000).
    pub fn items(&self) -> u64 {
        ((100_000.0 * self.scale) as u64).max(100)
    }

    /// Customers per district (spec: 3000).
    pub fn customers(&self) -> u64 {
        ((3000.0 * self.scale) as u64).max(30)
    }

    /// Initial orders per district (spec: 3000, the last 900 undelivered).
    pub fn initial_orders(&self) -> u64 {
        self.customers()
    }
}

/// Number of districts per warehouse (spec).
pub const DISTRICTS: u64 = 10;

const D_SHIFT: u64 = 40;
const OL_SHIFT: u64 = 8;

fn customer_key(d: u64, c: u64) -> u64 {
    d * 1_000_000 + c
}
fn order_key(d: u64, o: u64) -> u64 {
    (d << D_SHIFT) | (o << OL_SHIFT)
}
fn order_line_key(d: u64, o: u64, n: u64) -> u64 {
    (d << D_SHIFT) | (o << OL_SHIFT) | n
}

// Record field indices.
const W_YTD: u32 = 0;
const D_NEXT_O_ID: u32 = 0;
const D_YTD: u32 = 1;
const C_BALANCE: u32 = 0;
const C_YTD_PAYMENT: u32 = 1;
const C_PAYMENT_CNT: u32 = 2;
const C_DELIVERY_CNT: u32 = 3;
const I_PRICE: u32 = 0;
const S_QUANTITY: u32 = 0;
const S_YTD: u32 = 1;
const S_ORDER_CNT: u32 = 2;
const O_C_ID: u32 = 0;
const O_OL_CNT: u32 = 1;
const O_CARRIER: u32 = 2;
const OL_ITEM: u32 = 0;
// order-line field 1 is the quantity (written at insert, read only via amount)
const OL_AMOUNT: u32 = 2;

/// One table: a B+Tree (key → record ObjectID) plus the pool its nodes and
/// records are allocated from.
#[derive(Debug)]
struct Table {
    tree: PersistentBPlusTree,
    pool: PoolId,
}

impl Table {
    fn create(rt: &mut Runtime, holder: ObjectId, pool: PoolId) -> Result<Self, PmemError> {
        Ok(Table {
            tree: PersistentBPlusTree::create(rt, holder)?,
            pool,
        })
    }

    /// Allocates a record, writes its fields, and inserts it.
    fn insert_record(
        &mut self,
        rt: &mut Runtime,
        key: u64,
        fields: &[u64],
        rng: &mut StdRng,
    ) -> Result<ObjectId, PmemError> {
        let size = (fields.len() as u64 * 8).max(8);
        let rec = if rt.in_transaction() {
            rt.tx_pmalloc_in(self.pool, size)?
        } else {
            rt.pmalloc(self.pool, size)?
        };
        let r = rt.deref(rec, None)?;
        for (i, &f) in fields.iter().enumerate() {
            rt.write_u64_at(&r, i as u32 * 8, f)?;
        }
        rt.persist(rec, size)?;
        self.tree.insert(rt, key, rec.raw(), self.pool, rng)?;
        Ok(rec)
    }

    fn lookup(
        &self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<Option<ObjectId>, PmemError> {
        Ok(self.tree.get(rt, key, rng)?.map(ObjectId::from_raw))
    }

    fn field(&self, rt: &mut Runtime, rec: ObjectId, idx: u32) -> Result<u64, PmemError> {
        let r = rt.deref(rec, None)?;
        Ok(rt.read_u64_at(&r, idx * 8)?.0)
    }

    /// Updates record fields, logging the record once per transaction set.
    fn update_fields(
        &self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        rec: ObjectId,
        len: u32,
        fields: &[(u32, u64)],
    ) -> Result<(), PmemError> {
        log.log(rt, rec, len)?;
        let r = rt.deref(rec, None)?;
        for &(idx, v) in fields {
            rt.write_u64_at(&r, idx * 8, v)?;
        }
        Ok(())
    }
}

/// What a TPC-C run produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TpccReport {
    /// Transactions executed.
    pub transactions: u64,
    /// NewOrder count.
    pub new_orders: u64,
    /// Payment count.
    pub payments: u64,
    /// OrderStatus count.
    pub order_statuses: u64,
    /// Delivery count.
    pub deliveries: u64,
    /// StockLevel count.
    pub stock_levels: u64,
}

/// The populated TPC-C database and its transaction driver.
#[derive(Debug)]
pub struct Tpcc {
    cfg: TpccConfig,
    warehouse: Table,
    district: Table,
    customer: Table,
    item: Table,
    stock: Table,
    orders: Table,
    new_order: Table,
    order_line: Table,
    history: Table,
    history_seq: u64,
    rng: StdRng,
}

impl Tpcc {
    /// Creates pools, builds all nine trees, and populates them to spec
    /// (scaled). Population traffic is part of the runtime's trace; the
    /// harness clears the trace before measuring transactions, as the
    /// paper measures the 1000-transaction phase.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures.
    pub fn setup(
        rt: &mut Runtime,
        pattern: TpccPattern,
        cfg: TpccConfig,
    ) -> Result<Self, PmemError> {
        let meta = rt.pool_create("tpcc-meta", 16 << 10)?;
        let dir = rt.pool_root(meta, 9 * 8)?;
        let table_names = [
            "warehouse",
            "district",
            "customer",
            "item",
            "stock",
            "orders",
            "new-order",
            "order-line",
            "history",
        ];
        let pools: Vec<PoolId> = match pattern {
            TpccPattern::All => {
                let p = rt.pool_create("tpcc-all", 192 << 20)?;
                vec![p; 9]
            }
            TpccPattern::Each => table_names
                .iter()
                .map(|n| rt.pool_create(&format!("tpcc-{n}"), 64 << 20))
                .collect::<Result<_, _>>()?,
        };
        let mut holders = Vec::new();
        for i in 0..9u32 {
            let h = rt.pmalloc(pools[i as usize], 8)?;
            let d = rt.deref(dir, None)?;
            rt.write_u64_at(&d, i * 8, h.raw())?;
            holders.push(h);
        }
        rt.persist(dir, 9 * 8)?;

        let mut tpcc = Tpcc {
            cfg,
            warehouse: Table::create(rt, holders[0], pools[0])?,
            district: Table::create(rt, holders[1], pools[1])?,
            customer: Table::create(rt, holders[2], pools[2])?,
            item: Table::create(rt, holders[3], pools[3])?,
            stock: Table::create(rt, holders[4], pools[4])?,
            orders: Table::create(rt, holders[5], pools[5])?,
            new_order: Table::create(rt, holders[6], pools[6])?,
            order_line: Table::create(rt, holders[7], pools[7])?,
            history: Table::create(rt, holders[8], pools[8])?,
            history_seq: 0,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x7C0C_7C0C),
        };
        tpcc.populate(rt)?;
        Ok(tpcc)
    }

    fn populate(&mut self, rt: &mut Runtime) -> Result<(), PmemError> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x9999);
        self.warehouse.insert_record(rt, 1, &[0], &mut rng)?;
        let items = self.cfg.items();
        for i in 1..=items {
            let price = rng.gen_range(100..10_000);
            self.item.insert_record(rt, i, &[price], &mut rng)?;
            let qty = rng.gen_range(10..100);
            self.stock.insert_record(rt, i, &[qty, 0, 0], &mut rng)?;
        }
        let customers = self.cfg.customers();
        let init_orders = self.cfg.initial_orders();
        for d in 1..=DISTRICTS {
            self.district
                .insert_record(rt, d, &[init_orders + 1, 0], &mut rng)?;
            for c in 1..=customers {
                self.customer
                    .insert_record(rt, customer_key(d, c), &[0, 0, 0, 0], &mut rng)?;
            }
            for o in 1..=init_orders {
                let c = (o * 7) % customers + 1;
                let ol_cnt = rng.gen_range(5..=15u64);
                let delivered = o <= init_orders * 7 / 10;
                let carrier = if delivered { rng.gen_range(1..=10) } else { 0 };
                self.orders
                    .insert_record(rt, order_key(d, o), &[c, ol_cnt, carrier], &mut rng)?;
                if !delivered {
                    self.new_order
                        .insert_record(rt, order_key(d, o), &[1], &mut rng)?;
                }
                for n in 1..=ol_cnt {
                    let i = rng.gen_range(1..=items);
                    let qty = rng.gen_range(1..=10);
                    self.order_line.insert_record(
                        rt,
                        order_line_key(d, o, n),
                        &[i, qty, qty * 100],
                        &mut rng,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Runs `transactions` transactions with the spec mix.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures.
    pub fn run(&mut self, rt: &mut Runtime, transactions: u64) -> Result<TpccReport, PmemError> {
        let mut report = TpccReport::default();
        for _ in 0..transactions {
            let roll = self.rng.gen_range(0..100u32);
            let d = self.rng.gen_range(1..=DISTRICTS);
            if roll < 45 {
                self.new_order_txn(rt, d)?;
                report.new_orders += 1;
            } else if roll < 88 {
                self.payment_txn(rt, d)?;
                report.payments += 1;
            } else if roll < 92 {
                self.order_status_txn(rt, d)?;
                report.order_statuses += 1;
            } else if roll < 96 {
                self.delivery_txn(rt, d)?;
                report.deliveries += 1;
            } else {
                self.stock_level_txn(rt, d)?;
                report.stock_levels += 1;
            }
            report.transactions += 1;
        }
        Ok(report)
    }

    fn new_order_txn(&mut self, rt: &mut Runtime, d: u64) -> Result<(), PmemError> {
        let c = self.rng.gen_range(1..=self.cfg.customers());
        let ol_cnt = self.rng.gen_range(5..=15u64);
        let items: Vec<(u64, u64)> = (0..ol_cnt)
            .map(|_| {
                (
                    self.rng.gen_range(1..=self.cfg.items()),
                    self.rng.gen_range(1..=10u64),
                )
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(self.rng.gen());

        rt.tx_begin(self.district.pool)?;
        let mut log = TxLogSet::new();
        let drec = self
            .district
            .lookup(rt, d, &mut rng)?
            .expect("district exists");
        let o = self.district.field(rt, drec, D_NEXT_O_ID)?;
        self.district
            .update_fields(rt, &mut log, drec, 16, &[(D_NEXT_O_ID, o + 1)])?;

        self.orders
            .insert_record(rt, order_key(d, o), &[c, ol_cnt, 0], &mut rng)?;
        self.new_order
            .insert_record(rt, order_key(d, o), &[1], &mut rng)?;

        for (n, &(item, qty)) in items.iter().enumerate() {
            let irec = self.item.lookup(rt, item, &mut rng)?.expect("item exists");
            let price = self.item.field(rt, irec, I_PRICE)?;
            let srec = self
                .stock
                .lookup(rt, item, &mut rng)?
                .expect("stock exists");
            let squant = self.stock.field(rt, srec, S_QUANTITY)?;
            let sytd = self.stock.field(rt, srec, S_YTD)?;
            let scnt = self.stock.field(rt, srec, S_ORDER_CNT)?;
            let new_q = if squant > qty + 10 {
                squant - qty
            } else {
                squant + 91 - qty
            };
            self.stock.update_fields(
                rt,
                &mut log,
                srec,
                24,
                &[
                    (S_QUANTITY, new_q),
                    (S_YTD, sytd + qty),
                    (S_ORDER_CNT, scnt + 1),
                ],
            )?;
            self.order_line.insert_record(
                rt,
                order_line_key(d, o, n as u64 + 1),
                &[item, qty, qty * price],
                &mut rng,
            )?;
        }
        rt.tx_end()?;
        Ok(())
    }

    fn payment_txn(&mut self, rt: &mut Runtime, d: u64) -> Result<(), PmemError> {
        let c = self.rng.gen_range(1..=self.cfg.customers());
        let amount = self.rng.gen_range(100..500_000u64);
        let mut rng = StdRng::seed_from_u64(self.rng.gen());

        rt.tx_begin(self.district.pool)?;
        let mut log = TxLogSet::new();
        let wrec = self.warehouse.lookup(rt, 1, &mut rng)?.expect("warehouse");
        let wytd = self.warehouse.field(rt, wrec, W_YTD)?;
        self.warehouse
            .update_fields(rt, &mut log, wrec, 8, &[(W_YTD, wytd + amount)])?;
        let drec = self.district.lookup(rt, d, &mut rng)?.expect("district");
        let dytd = self.district.field(rt, drec, D_YTD)?;
        self.district
            .update_fields(rt, &mut log, drec, 16, &[(D_YTD, dytd + amount)])?;
        let crec = self
            .customer
            .lookup(rt, customer_key(d, c), &mut rng)?
            .expect("customer");
        let bal = self.customer.field(rt, crec, C_BALANCE)?;
        let ytd = self.customer.field(rt, crec, C_YTD_PAYMENT)?;
        let cnt = self.customer.field(rt, crec, C_PAYMENT_CNT)?;
        self.customer.update_fields(
            rt,
            &mut log,
            crec,
            32,
            &[
                (C_BALANCE, bal.wrapping_sub(amount)),
                (C_YTD_PAYMENT, ytd + amount),
                (C_PAYMENT_CNT, cnt + 1),
            ],
        )?;
        self.history_seq += 1;
        self.history.insert_record(
            rt,
            self.history_seq,
            &[customer_key(d, c), amount],
            &mut rng,
        )?;
        rt.tx_end()?;
        Ok(())
    }

    fn order_status_txn(&mut self, rt: &mut Runtime, d: u64) -> Result<(), PmemError> {
        let c = self.rng.gen_range(1..=self.cfg.customers());
        let mut rng = StdRng::seed_from_u64(self.rng.gen());
        // Find the customer's most recent order by scanning back from the
        // district's order counter (bounded probe, as the paper's port
        // indexes orders by id).
        let drec = self.district.lookup(rt, d, &mut rng)?.expect("district");
        let next_o = self.district.field(rt, drec, D_NEXT_O_ID)?;
        let mut found = None;
        for o in (1..next_o).rev().take(40) {
            if let Some(orec) = self.orders.lookup(rt, order_key(d, o), &mut rng)? {
                if self.orders.field(rt, orec, O_C_ID)? == c {
                    found = Some((o, orec));
                    break;
                }
            }
        }
        if let Some((o, orec)) = found {
            let ol_cnt = self.orders.field(rt, orec, O_OL_CNT)?;
            for n in 1..=ol_cnt {
                if let Some(olrec) =
                    self.order_line
                        .lookup(rt, order_line_key(d, o, n), &mut rng)?
                {
                    let _ = self.order_line.field(rt, olrec, OL_AMOUNT)?;
                }
            }
        }
        Ok(())
    }

    fn delivery_txn(&mut self, rt: &mut Runtime, d: u64) -> Result<(), PmemError> {
        let mut rng = StdRng::seed_from_u64(self.rng.gen());
        // Oldest undelivered order for the district.
        let lo = order_key(d, 0);
        let hi = order_key(d + 1, 0);
        let batch = self.new_order.tree.scan_from(rt, lo, 1, &mut rng)?;
        let Some(&(key, _)) = batch.first().filter(|&&(k, _)| k < hi) else {
            return Ok(());
        };
        let o = (key >> OL_SHIFT) & ((1 << (D_SHIFT - OL_SHIFT)) - 1);

        rt.tx_begin(self.district.pool)?;
        let mut log = TxLogSet::new();
        self.new_order.tree.remove(rt, key, &mut rng)?;
        let orec = self
            .orders
            .lookup(rt, key, &mut rng)?
            .expect("order exists");
        let c = self.orders.field(rt, orec, O_C_ID)?;
        let ol_cnt = self.orders.field(rt, orec, O_OL_CNT)?;
        self.orders
            .update_fields(rt, &mut log, orec, 24, &[(O_CARRIER, 7)])?;
        let mut total = 0;
        for n in 1..=ol_cnt {
            if let Some(olrec) = self
                .order_line
                .lookup(rt, order_line_key(d, o, n), &mut rng)?
            {
                total += self.order_line.field(rt, olrec, OL_AMOUNT)?;
            }
        }
        let crec = self
            .customer
            .lookup(rt, customer_key(d, c), &mut rng)?
            .expect("customer");
        let bal = self.customer.field(rt, crec, C_BALANCE)?;
        let cnt = self.customer.field(rt, crec, C_DELIVERY_CNT)?;
        self.customer.update_fields(
            rt,
            &mut log,
            crec,
            32,
            &[
                (C_BALANCE, bal.wrapping_add(total)),
                (C_DELIVERY_CNT, cnt + 1),
            ],
        )?;
        rt.tx_end()?;
        Ok(())
    }

    fn stock_level_txn(&mut self, rt: &mut Runtime, d: u64) -> Result<(), PmemError> {
        let threshold = self.rng.gen_range(10..=20u64);
        let mut rng = StdRng::seed_from_u64(self.rng.gen());
        let drec = self.district.lookup(rt, d, &mut rng)?.expect("district");
        let next_o = self.district.field(rt, drec, D_NEXT_O_ID)?;
        let mut low = 0u64;
        for o in next_o.saturating_sub(20)..next_o {
            if let Some(orec) = self.orders.lookup(rt, order_key(d, o), &mut rng)? {
                let ol_cnt = self.orders.field(rt, orec, O_OL_CNT)?;
                for n in 1..=ol_cnt {
                    if let Some(olrec) =
                        self.order_line
                            .lookup(rt, order_line_key(d, o, n), &mut rng)?
                    {
                        let item = self.order_line.field(rt, olrec, OL_ITEM)?;
                        if let Some(srec) = self.stock.lookup(rt, item, &mut rng)? {
                            if self.stock.field(rt, srec, S_QUANTITY)? < threshold {
                                low += 1;
                            }
                        }
                    }
                }
            }
        }
        rt.exec(low as u32 + 4);
        Ok(())
    }

    /// The configuration this database was populated with.
    pub fn config(&self) -> TpccConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_pmem::RuntimeConfig;

    fn small() -> TpccConfig {
        TpccConfig {
            scale: 0.004,
            seed: 3,
        } // 400 items, 30 cust/district
    }

    #[test]
    fn setup_and_run_all_pattern() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut tpcc = Tpcc::setup(&mut rt, TpccPattern::All, small()).unwrap();
        rt.take_trace();
        let rep = tpcc.run(&mut rt, 60).unwrap();
        assert_eq!(rep.transactions, 60);
        assert_eq!(
            rep.new_orders + rep.payments + rep.order_statuses + rep.deliveries + rep.stock_levels,
            60
        );
        assert!(rep.new_orders > 10, "mix is NewOrder-heavy: {rep:?}");
        assert!(!rt.trace().is_empty());
    }

    #[test]
    fn each_pattern_uses_separate_pools() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut tpcc = Tpcc::setup(&mut rt, TpccPattern::Each, small()).unwrap();
        // meta + 9 table pools.
        assert_eq!(rt.open_pools(), 10);
        let rep = tpcc.run(&mut rt, 30).unwrap();
        assert_eq!(rep.transactions, 30);
    }

    #[test]
    fn all_pattern_uses_one_data_pool() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let _ = Tpcc::setup(&mut rt, TpccPattern::All, small()).unwrap();
        assert_eq!(rt.open_pools(), 2, "meta + one data pool");
    }

    #[test]
    fn new_orders_advance_district_counter() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut tpcc = Tpcc::setup(&mut rt, TpccPattern::All, small()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let before: Vec<u64> = (1..=DISTRICTS)
            .map(|d| {
                let rec = tpcc.district.lookup(&mut rt, d, &mut rng).unwrap().unwrap();
                tpcc.district.field(&mut rt, rec, D_NEXT_O_ID).unwrap()
            })
            .collect();
        for d in 1..=DISTRICTS {
            tpcc.new_order_txn(&mut rt, d).unwrap();
        }
        for d in 1..=DISTRICTS {
            let rec = tpcc.district.lookup(&mut rt, d, &mut rng).unwrap().unwrap();
            let now = tpcc.district.field(&mut rt, rec, D_NEXT_O_ID).unwrap();
            assert_eq!(now, before[(d - 1) as usize] + 1, "district {d}");
        }
    }

    #[test]
    fn payment_updates_balance_and_history() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut tpcc = Tpcc::setup(&mut rt, TpccPattern::All, small()).unwrap();
        let seq_before = tpcc.history_seq;
        for _ in 0..5 {
            tpcc.payment_txn(&mut rt, 1).unwrap();
        }
        assert_eq!(tpcc.history_seq, seq_before + 5);
        let mut rng = StdRng::seed_from_u64(0);
        let wrec = tpcc
            .warehouse
            .lookup(&mut rt, 1, &mut rng)
            .unwrap()
            .unwrap();
        assert!(tpcc.warehouse.field(&mut rt, wrec, W_YTD).unwrap() > 0);
    }

    #[test]
    fn delivery_consumes_new_orders() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut tpcc = Tpcc::setup(&mut rt, TpccPattern::All, small()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let lo = order_key(1, 0);
        let pending_before = tpcc
            .new_order
            .tree
            .scan_from(&mut rt, lo, 1000, &mut rng)
            .unwrap()
            .iter()
            .filter(|&&(k, _)| k < order_key(2, 0))
            .count();
        assert!(pending_before > 0, "population left undelivered orders");
        tpcc.delivery_txn(&mut rt, 1).unwrap();
        let pending_after = tpcc
            .new_order
            .tree
            .scan_from(&mut rt, lo, 1000, &mut rng)
            .unwrap()
            .iter()
            .filter(|&&(k, _)| k < order_key(2, 0))
            .count();
        assert_eq!(pending_after, pending_before - 1);
    }

    #[test]
    fn transactions_survive_crash() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut tpcc = Tpcc::setup(&mut rt, TpccPattern::Each, small()).unwrap();
        tpcc.run(&mut rt, 20).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let wrec = tpcc
            .warehouse
            .lookup(&mut rt, 1, &mut rng)
            .unwrap()
            .unwrap();
        let ytd = tpcc.warehouse.field(&mut rt, wrec, W_YTD).unwrap();
        let mut rt2 = rt.crash_and_recover(23).unwrap();
        let wrec2 = tpcc
            .warehouse
            .lookup(&mut rt2, 1, &mut rng)
            .unwrap()
            .unwrap();
        assert_eq!(tpcc.warehouse.field(&mut rt2, wrec2, W_YTD).unwrap(), ytd);
    }
}

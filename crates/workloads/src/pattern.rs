//! Pool-usage patterns and architecture configurations (paper Tables 6–7).

use poat_core::PoolId;
use poat_pmem::{PmemError, Runtime, RuntimeConfig, TranslationMode};

/// How a workload distributes its objects across pools (paper Table 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// All persistent data in one pool.
    All,
    /// Every structure (node/string) the program creates goes in its own,
    /// newly created pool.
    Each,
    /// 32 pools; an allocation keyed `k` goes to pool `k % 32`.
    Random,
}

impl Pattern {
    /// All patterns, in the order the paper's figures present them.
    pub const ALL: [Pattern; 3] = [Pattern::All, Pattern::Each, Pattern::Random];

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::All => "ALL",
            Pattern::Each => "EACH",
            Pattern::Random => "RANDOM",
        }
    }

    /// Number of pools RANDOM uses (fixed by the paper).
    pub const RANDOM_POOLS: u64 = 32;
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The four benchmark/architecture configurations (paper Table 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExpConfig {
    /// Software translation; failure safety and durability on.
    Base,
    /// Hardware translation; failure safety and durability on.
    Opt,
    /// Software translation; no failure safety (no logging, no persists).
    BaseNtx,
    /// Hardware translation; no failure safety.
    OptNtx,
}

impl ExpConfig {
    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            ExpConfig::Base => "BASE",
            ExpConfig::Opt => "OPT",
            ExpConfig::BaseNtx => "BASE_NTX",
            ExpConfig::OptNtx => "OPT_NTX",
        }
    }

    /// Whether this configuration uses the hardware (`nvld`/`nvst`) path.
    pub fn is_hardware(self) -> bool {
        matches!(self, ExpConfig::Opt | ExpConfig::OptNtx)
    }

    /// Whether failure safety (logging + persists) is enabled.
    pub fn failure_safety(self) -> bool {
        matches!(self, ExpConfig::Base | ExpConfig::Opt)
    }

    /// Builds the runtime configuration for this experiment configuration.
    pub fn runtime_config(self, aslr_seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            aslr_seed,
            mode: if self.is_hardware() {
                TranslationMode::Hardware
            } else {
                TranslationMode::Software
            },
            failure_safety: self.failure_safety(),
            ..RuntimeConfig::default()
        }
    }
}

impl std::fmt::Display for ExpConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Manages pool placement for one workload under a given pattern.
///
/// The *anchor* pool holds the workload's root object (the head/root
/// reference) and is where per-operation transactions log by default; node
/// allocations are routed per the pattern.
#[derive(Debug)]
pub struct PoolSet {
    pattern: Pattern,
    prefix: String,
    anchor: PoolId,
    fixed: Vec<PoolId>,
    next_each: u64,
    each_size: u64,
}

impl PoolSet {
    /// Creates the pools a workload needs up front.
    ///
    /// `total_hint` sizes the ALL pool (and, divided across 32, the RANDOM
    /// pools); EACH pools are created on demand, each just big enough for
    /// one node plus its log area.
    ///
    /// # Errors
    ///
    /// Propagates pool-creation failures.
    pub fn create(
        rt: &mut Runtime,
        pattern: Pattern,
        prefix: &str,
        total_hint: u64,
    ) -> Result<Self, PmemError> {
        let mut fixed = Vec::new();
        let anchor;
        match pattern {
            Pattern::All => {
                anchor = rt.pool_create(&format!("{prefix}-all"), total_hint)?;
                fixed.push(anchor);
            }
            Pattern::Random => {
                let per_pool = (total_hint / Pattern::RANDOM_POOLS).max(64 << 10);
                for i in 0..Pattern::RANDOM_POOLS {
                    fixed.push(rt.pool_create(&format!("{prefix}-r{i}"), per_pool)?);
                }
                anchor = fixed[0];
            }
            Pattern::Each => {
                anchor = rt.pool_create(&format!("{prefix}-anchor"), 16 << 10)?;
            }
        }
        Ok(PoolSet {
            pattern,
            prefix: prefix.to_owned(),
            anchor,
            fixed,
            next_each: 0,
            each_size: 512,
        })
    }

    /// The pattern this set implements.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The pool holding the workload's root object.
    pub fn anchor(&self) -> PoolId {
        self.anchor
    }

    /// The pool a new structure keyed `key` should be allocated in. Under
    /// EACH this creates a fresh pool.
    ///
    /// # Errors
    ///
    /// Propagates pool-creation failures (EACH only).
    pub fn pool_for(&mut self, rt: &mut Runtime, key: u64) -> Result<PoolId, PmemError> {
        match self.pattern {
            Pattern::All => Ok(self.fixed[0]),
            Pattern::Random => Ok(self.fixed[(key % Pattern::RANDOM_POOLS) as usize]),
            Pattern::Each => {
                let name = format!("{}-e{}", self.prefix, self.next_each);
                self.next_each += 1;
                rt.pool_create(&name, self.each_size)
            }
        }
    }

    /// Number of pools created so far (excluding the EACH anchor).
    pub fn pool_count(&self) -> u64 {
        match self.pattern {
            Pattern::Each => self.next_each,
            _ => self.fixed.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_uses_one_pool() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut ps = PoolSet::create(&mut rt, Pattern::All, "t", 1 << 20).unwrap();
        let a = ps.pool_for(&mut rt, 1).unwrap();
        let b = ps.pool_for(&mut rt, 999).unwrap();
        assert_eq!(a, b);
        assert_eq!(ps.pool_count(), 1);
        assert_eq!(ps.anchor(), a);
    }

    #[test]
    fn random_routes_by_key_mod_32() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut ps = PoolSet::create(&mut rt, Pattern::Random, "t", 4 << 20).unwrap();
        assert_eq!(ps.pool_count(), 32);
        let a = ps.pool_for(&mut rt, 5).unwrap();
        let b = ps.pool_for(&mut rt, 5 + 32).unwrap();
        let c = ps.pool_for(&mut rt, 6).unwrap();
        assert_eq!(a, b, "same key class, same pool");
        assert_ne!(a, c);
    }

    #[test]
    fn each_creates_a_pool_per_allocation() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut ps = PoolSet::create(&mut rt, Pattern::Each, "t", 0).unwrap();
        let a = ps.pool_for(&mut rt, 1).unwrap();
        let b = ps.pool_for(&mut rt, 1).unwrap();
        assert_ne!(a, b, "every allocation gets a fresh pool");
        assert_eq!(ps.pool_count(), 2);
        assert_ne!(ps.anchor(), a);
    }

    #[test]
    fn exp_config_properties() {
        assert!(ExpConfig::Opt.is_hardware());
        assert!(!ExpConfig::Base.is_hardware());
        assert!(ExpConfig::Base.failure_safety());
        assert!(!ExpConfig::OptNtx.failure_safety());
        let rc = ExpConfig::BaseNtx.runtime_config(7);
        assert!(!rc.failure_safety);
        assert_eq!(rc.aslr_seed, 7);
    }

    #[test]
    fn labels() {
        assert_eq!(Pattern::Random.to_string(), "RANDOM");
        assert_eq!(ExpConfig::OptNtx.to_string(), "OPT_NTX");
    }
}

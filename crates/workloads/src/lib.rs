// SPDX-License-Identifier: MIT OR Apache-2.0
//! # poat-workloads — the paper's evaluation workloads
//!
//! From-scratch persistent implementations of the six microbenchmarks of
//! Table 5 (linked list, binary search tree, string-position swap,
//! red-black tree, B-Tree and B+Tree of order 7) and the TPC-C application
//! (1 warehouse, 1000 transactions), all written against the `poat-pmem`
//! ObjectID API. Pool placement follows the Table 6 usage patterns (ALL /
//! EACH / RANDOM and TPCC_ALL / TPCC_EACH), and the Table 7 architecture
//! configurations (BASE / OPT / BASE_NTX / OPT_NTX) map onto runtime
//! configurations via [`pattern::ExpConfig`].
//!
//! Every structure is a *real* data structure: its operations are verified
//! against `std::collections` references and its invariants (red-black
//! properties, B-tree depth uniformity) are checked in tests, and all of
//! them survive simulated crashes through the runtime's undo log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod bplus;
pub mod bst;
pub mod btree;
pub mod list;
pub mod pattern;
pub mod rbt;
pub mod sps;
pub mod tpcc;
pub mod util;

pub use bench::{Micro, MicroReport};
pub use pattern::{ExpConfig, Pattern, PoolSet};
pub use tpcc::{Tpcc, TpccConfig, TpccPattern, TpccReport};

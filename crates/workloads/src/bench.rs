//! The six microbenchmarks with their Table 5 parameters, behind one
//! dispatching enum the harness drives.

use poat_pmem::{PmemError, Runtime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bplus::PersistentBPlusTree;
use crate::bst::PersistentBst;
use crate::btree::PersistentBTree;
use crate::list::PersistentList;
use crate::pattern::{Pattern, PoolSet};
use crate::rbt::PersistentRbt;
use crate::sps::StringArray;

/// Instructions charged per benchmark-driver iteration (random-number
/// generation, call setup, loop bookkeeping of the harness program).
pub const OP_DRIVER_EXEC: u32 = 40;

/// One of the paper's six microbenchmarks (Table 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Micro {
    /// Linked list: 700 search-then-remove-or-insert operations.
    Ll,
    /// Binary search tree: 5000 operations.
    Bst,
    /// String position swap: 10000 random swaps in a 32 KB string array.
    Sps,
    /// Red-black tree: 3000 operations.
    Rbt,
    /// B-Tree (order 7): 5000 search-then-insert-if-missing operations.
    Bt,
    /// B+Tree (order 7): 5000 search-then-remove-or-insert operations.
    Bpt,
}

impl Micro {
    /// All six microbenchmarks, in Table 8's row order.
    pub const ALL: [Micro; 6] = [
        Micro::Ll,
        Micro::Bst,
        Micro::Rbt,
        Micro::Bt,
        Micro::Bpt,
        Micro::Sps,
    ];

    /// The paper's abbreviation (Table 5).
    pub fn abbrev(self) -> &'static str {
        match self {
            Micro::Ll => "LL",
            Micro::Bst => "BST",
            Micro::Sps => "SPS",
            Micro::Rbt => "RBT",
            Micro::Bt => "BT",
            Micro::Bpt => "B+T",
        }
    }

    /// Number of operations (Table 5).
    pub fn ops(self) -> usize {
        match self {
            Micro::Ll => 700,
            Micro::Bst => 5000,
            Micro::Sps => 10000,
            Micro::Rbt => 3000,
            Micro::Bt => 5000,
            Micro::Bpt => 5000,
        }
    }

    /// Key range the random integers are drawn from. Sized so a realistic
    /// fraction of searches hit, and (for LL, whose search is linear) so
    /// the list stays at a few hundred nodes, as in the paper.
    pub fn key_range(self) -> u64 {
        match self {
            Micro::Ll => 500,
            Micro::Bst => 2500,
            Micro::Sps => 0, // slots, not keys
            Micro::Rbt => 1500,
            Micro::Bt => 5000,
            Micro::Bpt => 2500,
        }
    }

    /// Runs the full Table 5 benchmark.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures.
    pub fn run(
        self,
        rt: &mut Runtime,
        pattern: Pattern,
        seed: u64,
    ) -> Result<MicroReport, PmemError> {
        self.run_ops(rt, pattern, seed, self.ops())
    }

    /// Runs the benchmark with an explicit operation count (tests and
    /// quick calibration use smaller counts).
    ///
    /// # Errors
    ///
    /// Propagates runtime failures.
    pub fn run_ops(
        self,
        rt: &mut Runtime,
        pattern: Pattern,
        seed: u64,
        ops: usize,
    ) -> Result<MicroReport, PmemError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB16B_00B5);
        let range = self.key_range();
        let mut report = MicroReport {
            bench: self,
            pattern,
            ops,
            pools: 0,
        };
        match self {
            Micro::Ll => {
                let mut l = PersistentList::create(rt, pattern)?;
                for _ in 0..ops {
                    let k = rng.gen_range(0..range);
                    rt.exec(OP_DRIVER_EXEC);
                    l.op(rt, k, &mut rng)?;
                }
                report.pools = l.pools().pool_count();
            }
            Micro::Bst => {
                let mut t = PersistentBst::create(rt, pattern)?;
                for _ in 0..ops {
                    let k = rng.gen_range(0..range);
                    rt.exec(OP_DRIVER_EXEC);
                    t.op(rt, k, &mut rng)?;
                }
                report.pools = t.pools().pool_count();
            }
            Micro::Sps => {
                let mut a = StringArray::create(rt, pattern)?;
                for _ in 0..ops {
                    rt.exec(OP_DRIVER_EXEC);
                    a.swap_random(rt, &mut rng)?;
                }
                report.pools = a.pools().pool_count();
            }
            Micro::Rbt => {
                let mut t = PersistentRbt::create(rt, pattern)?;
                for _ in 0..ops {
                    let k = rng.gen_range(0..range);
                    rt.exec(OP_DRIVER_EXEC);
                    t.op(rt, k, &mut rng)?;
                }
                report.pools = t.pools().pool_count();
            }
            Micro::Bt => {
                let mut t = PersistentBTree::create(rt, pattern)?;
                for _ in 0..ops {
                    let k = rng.gen_range(0..range);
                    rt.exec(OP_DRIVER_EXEC);
                    t.insert(rt, k, &mut rng)?;
                }
                report.pools = t.pools().pool_count();
            }
            Micro::Bpt => {
                let mut b = BPlusBench::create(rt, pattern)?;
                for _ in 0..ops {
                    let k = rng.gen_range(0..range);
                    rt.exec(OP_DRIVER_EXEC);
                    b.op(rt, k, &mut rng)?;
                }
                report.pools = b.pools.pool_count();
            }
        }
        Ok(report)
    }
}

impl std::fmt::Display for Micro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// What a microbenchmark run produced (beyond the runtime's own trace and
/// counters).
#[derive(Clone, Copy, Debug)]
pub struct MicroReport {
    /// Which benchmark ran.
    pub bench: Micro,
    /// The pool-usage pattern used.
    pub pattern: Pattern,
    /// Operations executed.
    pub ops: usize,
    /// Pools the workload created.
    pub pools: u64,
}

/// The B+T microbenchmark wrapper: a [`PersistentBPlusTree`] plus the
/// per-node pool placement of Table 6.
#[derive(Debug)]
pub struct BPlusBench {
    tree: PersistentBPlusTree,
    /// Pool placement (public so reports can read pool counts).
    pub pools: PoolSet,
}

impl BPlusBench {
    /// Creates an empty tree with pools laid out per `pattern`.
    ///
    /// # Errors
    ///
    /// Propagates pool-creation failures.
    pub fn create(rt: &mut Runtime, pattern: Pattern) -> Result<Self, PmemError> {
        let pools = PoolSet::create(rt, pattern, "bpt", 4 << 20)?;
        let holder = rt.pool_root(pools.anchor(), 8)?;
        let tree = PersistentBPlusTree::create(rt, holder)?;
        Ok(BPlusBench { tree, pools })
    }

    /// One Table 5 operation: search; remove if found, else insert.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures.
    pub fn op(&mut self, rt: &mut Runtime, key: u64, rng: &mut StdRng) -> Result<(), PmemError> {
        if self.tree.remove(rt, key, rng)?.is_some() {
            return Ok(());
        }
        let pool = self.pools.pool_for(rt, key)?;
        self.tree.insert(rt, key, key, pool, rng)?;
        Ok(())
    }

    /// The underlying tree (test access).
    pub fn tree(&self) -> &PersistentBPlusTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ExpConfig;
    use poat_pmem::TranslationMode;

    #[test]
    fn every_micro_runs_under_every_pattern() {
        for bench in Micro::ALL {
            for pattern in Pattern::ALL {
                let mut rt = Runtime::new(ExpConfig::Base.runtime_config(1));
                let rep = bench.run_ops(&mut rt, pattern, 7, 40).unwrap();
                assert_eq!(rep.ops, 40);
                assert!(rep.pools >= 1, "{bench} {pattern}");
                assert!(!rt.trace().is_empty());
            }
        }
    }

    #[test]
    fn opt_trace_has_nv_ops_base_does_not() {
        let mut base = Runtime::new(ExpConfig::Base.runtime_config(1));
        let mut opt = Runtime::new(ExpConfig::Opt.runtime_config(1));
        Micro::Ll.run_ops(&mut base, Pattern::All, 3, 30).unwrap();
        Micro::Ll.run_ops(&mut opt, Pattern::All, 3, 30).unwrap();
        assert_eq!(base.trace().summary().nvloads, 0);
        assert!(opt.trace().summary().nvloads > 0);
        assert_eq!(opt.config().mode, TranslationMode::Hardware);
    }

    #[test]
    fn hardware_mode_reduces_instruction_count() {
        let mut base = Runtime::new(ExpConfig::Base.runtime_config(1));
        let mut opt = Runtime::new(ExpConfig::Opt.runtime_config(1));
        Micro::Bst
            .run_ops(&mut base, Pattern::Random, 3, 100)
            .unwrap();
        Micro::Bst
            .run_ops(&mut opt, Pattern::Random, 3, 100)
            .unwrap();
        let bi = base.trace().summary().instructions;
        let oi = opt.trace().summary().instructions;
        assert!(
            oi < bi * 8 / 10,
            "expected a large dynamic-instruction reduction: {oi} vs {bi}"
        );
    }

    #[test]
    fn ntx_emits_no_persistence_traffic() {
        let mut rt = Runtime::new(ExpConfig::OptNtx.runtime_config(1));
        Micro::Bpt.run_ops(&mut rt, Pattern::Each, 3, 30).unwrap();
        let s = rt.trace().summary();
        assert_eq!(s.clwbs, 0);
        assert_eq!(s.fences, 0);
    }

    #[test]
    fn table5_parameters() {
        assert_eq!(Micro::Ll.ops(), 700);
        assert_eq!(Micro::Bst.ops(), 5000);
        assert_eq!(Micro::Sps.ops(), 10000);
        assert_eq!(Micro::Rbt.ops(), 3000);
        assert_eq!(Micro::Bt.ops(), 5000);
        assert_eq!(Micro::Bpt.ops(), 5000);
        assert_eq!(Micro::ALL.len(), 6);
    }
}

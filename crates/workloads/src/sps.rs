//! SPS — String Position Swap (paper Table 5, after NV-heaps).
//!
//! A persistent array of strings totaling 32 KB (512 strings × 64 bytes).
//! Each operation picks a random pair of slots and swaps the two strings'
//! *contents*. The slot directory (an array of ObjectIDs) lives in the
//! anchor pool's root object; the strings themselves are placed per the
//! pool-usage pattern, so under EACH every swap touches two different
//! pools — the paper measures a 99.9% last-value-predictor miss rate here.

use poat_core::ObjectId;
use poat_pmem::{PmemError, Runtime};
use rand::rngs::StdRng;
use rand::Rng;

use crate::pattern::{Pattern, PoolSet};
use crate::util::TxLogSet;

/// Number of string slots.
pub const SLOTS: u32 = 512;
/// Bytes per string (SLOTS × STRING_BYTES = 32 KB).
pub const STRING_BYTES: u32 = 64;

/// The persistent string array.
#[derive(Debug)]
pub struct StringArray {
    root: ObjectId,
    pools: PoolSet,
}

impl StringArray {
    /// Creates and initializes the array: slot `i` holds a string filled
    /// with the byte `i as u8`.
    ///
    /// # Errors
    ///
    /// Propagates pool-creation and allocation failures.
    pub fn create(rt: &mut Runtime, pattern: Pattern) -> Result<Self, PmemError> {
        let mut pools = PoolSet::create(rt, pattern, "sps", 1 << 20)?;
        let root = rt.pool_root(pools.anchor(), SLOTS as u64 * 8)?;
        for i in 0..SLOTS {
            let pool = pools.pool_for(rt, i as u64)?;
            let s = rt.pmalloc(pool, STRING_BYTES as u64)?;
            let sref = rt.deref(s, None)?;
            rt.write_bytes_at(&sref, 0, &[i as u8; STRING_BYTES as usize])?;
            rt.persist(s, STRING_BYTES as u64)?;
            let rref = rt.deref(root, None)?;
            rt.write_u64_at(&rref, i * 8, s.raw())?;
        }
        rt.persist(root, SLOTS as u64 * 8)?;
        Ok(StringArray { root, pools })
    }

    /// Swaps the contents of two random slots (one Table 5 operation).
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn swap_random(&mut self, rt: &mut Runtime, rng: &mut StdRng) -> Result<(), PmemError> {
        let i = rng.gen_range(0..SLOTS);
        let j = rng.gen_range(0..SLOTS);
        self.swap(rt, i, j)
    }

    /// Swaps the contents of slots `i` and `j`.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn swap(&mut self, rt: &mut Runtime, i: u32, j: u32) -> Result<(), PmemError> {
        assert!(i < SLOTS && j < SLOTS, "slot out of range");
        let rref = rt.deref(self.root, None)?;
        let (a_raw, adep) = rt.read_u64_at(&rref, i * 8)?;
        let (b_raw, bdep) = rt.read_u64_at(&rref, j * 8)?;
        let a = ObjectId::from_raw(a_raw);
        let b = ObjectId::from_raw(b_raw);

        rt.tx_begin(a.pool().expect("slot holds a live string"))?;
        let mut log = TxLogSet::new();
        log.log(rt, a, STRING_BYTES)?;
        if i != j {
            log.log(rt, b, STRING_BYTES)?;
        }
        let aref = rt.deref(a, Some(adep))?;
        let mut abuf = [0u8; STRING_BYTES as usize];
        rt.read_bytes_at(&aref, 0, &mut abuf)?;
        let bref = rt.deref(b, Some(bdep))?;
        let mut bbuf = [0u8; STRING_BYTES as usize];
        rt.read_bytes_at(&bref, 0, &mut bbuf)?;
        let aref = rt.deref(a, None)?;
        rt.write_bytes_at(&aref, 0, &bbuf)?;
        let bref = rt.deref(b, None)?;
        rt.write_bytes_at(&bref, 0, &abuf)?;
        rt.exec(6);
        rt.tx_end()?;
        Ok(())
    }

    /// Reads slot `i`'s contents (test helper).
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn read_slot(&self, rt: &mut Runtime, i: u32) -> Result<Vec<u8>, PmemError> {
        let rref = rt.deref(self.root, None)?;
        let (oid, _) = rt.read_u64_at(&rref, i * 8)?;
        let sref = rt.deref(ObjectId::from_raw(oid), None)?;
        let mut buf = vec![0u8; STRING_BYTES as usize];
        rt.read_bytes_at(&sref, 0, &mut buf)?;
        Ok(buf)
    }

    /// The pool set (for pool-count reporting).
    pub fn pools(&self) -> &PoolSet {
        &self.pools
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_pmem::RuntimeConfig;
    use rand::SeedableRng;

    #[test]
    fn swap_exchanges_contents() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut arr = StringArray::create(&mut rt, Pattern::All).unwrap();
        arr.swap(&mut rt, 3, 7).unwrap();
        assert_eq!(arr.read_slot(&mut rt, 3).unwrap(), vec![7u8; 64]);
        assert_eq!(arr.read_slot(&mut rt, 7).unwrap(), vec![3u8; 64]);
        // Swap back.
        arr.swap(&mut rt, 7, 3).unwrap();
        assert_eq!(arr.read_slot(&mut rt, 3).unwrap(), vec![3u8; 64]);
    }

    #[test]
    fn self_swap_is_identity() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut arr = StringArray::create(&mut rt, Pattern::All).unwrap();
        arr.swap(&mut rt, 5, 5).unwrap();
        assert_eq!(arr.read_slot(&mut rt, 5).unwrap(), vec![5u8; 64]);
    }

    #[test]
    fn contents_form_a_permutation_after_many_swaps() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut arr = StringArray::create(&mut rt, Pattern::Random).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            arr.swap_random(&mut rt, &mut rng).unwrap();
        }
        let mut seen = vec![0u32; 256];
        for i in 0..SLOTS {
            let b = arr.read_slot(&mut rt, i).unwrap();
            assert!(b.iter().all(|&x| x == b[0]), "string not torn");
            seen[b[0] as usize] += 1;
        }
        // Byte values 0..=255 each appear exactly SLOTS/256 times.
        assert!(seen.iter().all(|&c| c == (SLOTS / 256)));
    }

    #[test]
    fn each_pattern_uses_one_pool_per_string() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let arr = StringArray::create(&mut rt, Pattern::Each).unwrap();
        assert_eq!(arr.pools().pool_count(), SLOTS as u64);
    }

    #[test]
    fn swap_is_crash_atomic() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let mut arr = StringArray::create(&mut rt, Pattern::All).unwrap();
        arr.swap(&mut rt, 1, 2).unwrap();
        let mut rt2 = rt.crash_and_recover(5).unwrap();
        let a = arr.read_slot(&mut rt2, 1).unwrap();
        let b = arr.read_slot(&mut rt2, 2).unwrap();
        assert_eq!(a, vec![2u8; 64]);
        assert_eq!(b, vec![1u8; 64]);
    }
}

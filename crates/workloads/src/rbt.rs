//! RBT — the persistent red-black tree (paper Table 5).
//!
//! Node layout: `{ key, color, left, right, parent }` (40 bytes, all
//! `u64`/OID words; parent pointers make the CLRS fix-up procedures
//! implementable without a traversal stack). Each Table 5 operation
//! searches a random key; if found the node is removed, otherwise a new
//! node is inserted — both followed by red-black rebalancing, whose
//! pointer ping-pong across nodes (and therefore pools, under EACH) is
//! what drives this workload's high predictor miss rate in Table 2.

use poat_core::ObjectId;
use poat_pmem::{PmemError, Runtime};
use rand::rngs::StdRng;

use crate::pattern::{Pattern, PoolSet};
use crate::util::{compare_branch, loop_branch, TxLogSet};

const KEY: u32 = 0;
const COLOR: u32 = 8;
const LEFT: u32 = 16;
const RIGHT: u32 = 24;
const PARENT: u32 = 32;
/// Node payload size in bytes.
pub const NODE_BYTES: u32 = 40;

const RED: u64 = 1;
const BLACK: u64 = 0;

/// Volatile mirror of a node (one dereference reads the whole node, as a
/// compiler keeps the translated pointer in a register).
#[derive(Clone, Copy, Debug)]
struct Node {
    key: u64,
    color: u64,
    left: ObjectId,
    right: ObjectId,
    parent: ObjectId,
}

/// The persistent red-black tree.
#[derive(Debug)]
pub struct PersistentRbt {
    root_holder: ObjectId,
    pools: PoolSet,
}

impl PersistentRbt {
    /// Creates an empty tree with pools laid out per `pattern`.
    ///
    /// # Errors
    ///
    /// Propagates pool-creation failures.
    pub fn create(rt: &mut Runtime, pattern: Pattern) -> Result<Self, PmemError> {
        let pools = PoolSet::create(rt, pattern, "rbt", 2 << 20)?;
        let root_holder = rt.pool_root(pools.anchor(), 8)?;
        rt.write_u64(root_holder, ObjectId::NULL.raw())?;
        rt.persist(root_holder, 8)?;
        Ok(PersistentRbt { root_holder, pools })
    }

    fn read_node(
        &self,
        rt: &mut Runtime,
        oid: ObjectId,
        dep: Option<u64>,
    ) -> Result<(Node, u64), PmemError> {
        let r = rt.deref(oid, dep)?;
        let (key, _) = rt.read_u64_at(&r, KEY)?;
        let (color, _) = rt.read_u64_at(&r, COLOR)?;
        let (left, _) = rt.read_u64_at(&r, LEFT)?;
        let (right, _) = rt.read_u64_at(&r, RIGHT)?;
        let (parent, pdep) = rt.read_u64_at(&r, PARENT)?;
        Ok((
            Node {
                key,
                color,
                left: ObjectId::from_raw(left),
                right: ObjectId::from_raw(right),
                parent: ObjectId::from_raw(parent),
            },
            pdep,
        ))
    }

    fn get(&self, rt: &mut Runtime, oid: ObjectId, field: u32) -> Result<u64, PmemError> {
        let r = rt.deref(oid, None)?;
        Ok(rt.read_u64_at(&r, field)?.0)
    }

    fn color_of(&self, rt: &mut Runtime, oid: ObjectId) -> Result<u64, PmemError> {
        if oid.is_null() {
            Ok(BLACK)
        } else {
            self.get(rt, oid, COLOR)
        }
    }

    /// Writes fields of one node under the current transaction, logging
    /// the whole node once.
    fn set(
        &self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        oid: ObjectId,
        fields: &[(u32, u64)],
    ) -> Result<(), PmemError> {
        log.log(rt, oid, NODE_BYTES)?;
        let r = rt.deref(oid, None)?;
        for &(off, v) in fields {
            rt.write_u64_at(&r, off, v)?;
        }
        Ok(())
    }

    fn root(&self, rt: &mut Runtime) -> Result<ObjectId, PmemError> {
        Ok(ObjectId::from_raw(rt.read_u64(self.root_holder)?))
    }

    fn set_root(
        &self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        oid: ObjectId,
    ) -> Result<(), PmemError> {
        log.log(rt, self.root_holder, 8)?;
        let r = rt.deref(self.root_holder, None)?;
        rt.write_u64_at(&r, 0, oid.raw())?;
        Ok(())
    }

    /// Replaces the link from `parent` (or the root holder) that points at
    /// `child` with `with`.
    fn replace_child(
        &self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        parent: ObjectId,
        child: ObjectId,
        with: ObjectId,
    ) -> Result<(), PmemError> {
        if parent.is_null() {
            self.set_root(rt, log, with)?;
        } else {
            let pl = ObjectId::from_raw(self.get(rt, parent, LEFT)?);
            let field = if pl == child { LEFT } else { RIGHT };
            self.set(rt, log, parent, &[(field, with.raw())])?;
        }
        if !with.is_null() {
            self.set(rt, log, with, &[(PARENT, parent.raw())])?;
        }
        Ok(())
    }

    fn rotate_left(
        &self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        x: ObjectId,
    ) -> Result<(), PmemError> {
        let y = ObjectId::from_raw(self.get(rt, x, RIGHT)?);
        let y_left = ObjectId::from_raw(self.get(rt, y, LEFT)?);
        let x_parent = ObjectId::from_raw(self.get(rt, x, PARENT)?);
        self.set(rt, log, x, &[(RIGHT, y_left.raw())])?;
        if !y_left.is_null() {
            self.set(rt, log, y_left, &[(PARENT, x.raw())])?;
        }
        self.replace_child(rt, log, x_parent, x, y)?;
        self.set(rt, log, y, &[(LEFT, x.raw())])?;
        self.set(rt, log, x, &[(PARENT, y.raw())])?;
        rt.exec(8);
        Ok(())
    }

    fn rotate_right(
        &self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        x: ObjectId,
    ) -> Result<(), PmemError> {
        let y = ObjectId::from_raw(self.get(rt, x, LEFT)?);
        let y_right = ObjectId::from_raw(self.get(rt, y, RIGHT)?);
        let x_parent = ObjectId::from_raw(self.get(rt, x, PARENT)?);
        self.set(rt, log, x, &[(LEFT, y_right.raw())])?;
        if !y_right.is_null() {
            self.set(rt, log, y_right, &[(PARENT, x.raw())])?;
        }
        self.replace_child(rt, log, x_parent, x, y)?;
        self.set(rt, log, y, &[(RIGHT, x.raw())])?;
        self.set(rt, log, x, &[(PARENT, y.raw())])?;
        rt.exec(8);
        Ok(())
    }

    /// Descends to `key`, returning the node if found, else the would-be
    /// parent.
    fn descend(
        &self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<(Option<ObjectId>, ObjectId), PmemError> {
        let mut cur = self.root(rt)?;
        let mut parent = ObjectId::NULL;
        let mut dep = None;
        loop {
            loop_branch(rt);
            if cur.is_null() {
                return Ok((None, parent));
            }
            let r = rt.deref(cur, dep)?;
            let (k, _) = rt.read_u64_at(&r, KEY)?;
            compare_branch(rt, rng);
            if k == key {
                return Ok((Some(cur), parent));
            }
            let side = if key < k { LEFT } else { RIGHT };
            let (next, ndep) = rt.read_u64_at(&r, side)?;
            parent = cur;
            cur = ObjectId::from_raw(next);
            dep = Some(ndep);
        }
    }

    /// Whether `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn contains(
        &self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        Ok(self.descend(rt, key, rng)?.0.is_some())
    }

    /// Inserts `key` if absent (with rebalancing); returns whether it was
    /// inserted.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn insert(
        &mut self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        let (found, parent) = self.descend(rt, key, rng)?;
        if found.is_some() {
            return Ok(false);
        }
        let pool = self.pools.pool_for(rt, key)?;
        rt.tx_begin(pool)?;
        let mut log = TxLogSet::new();
        let node = if rt.config().failure_safety {
            rt.tx_pmalloc(NODE_BYTES as u64)?
        } else {
            rt.pmalloc(pool, NODE_BYTES as u64)?
        };
        let r = rt.deref(node, None)?;
        rt.write_u64_at(&r, KEY, key)?;
        rt.write_u64_at(&r, COLOR, RED)?;
        rt.write_u64_at(&r, LEFT, 0)?;
        rt.write_u64_at(&r, RIGHT, 0)?;
        rt.write_u64_at(&r, PARENT, parent.raw())?;
        rt.persist(node, NODE_BYTES as u64)?;
        if parent.is_null() {
            self.set_root(rt, &mut log, node)?;
        } else {
            let pk = self.get(rt, parent, KEY)?;
            let side = if key < pk { LEFT } else { RIGHT };
            self.set(rt, &mut log, parent, &[(side, node.raw())])?;
        }
        self.insert_fixup(rt, &mut log, node)?;
        rt.tx_end()?;
        Ok(true)
    }

    fn insert_fixup(
        &self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        mut z: ObjectId,
    ) -> Result<(), PmemError> {
        loop {
            loop_branch(rt);
            let parent = ObjectId::from_raw(self.get(rt, z, PARENT)?);
            if parent.is_null() || self.color_of(rt, parent)? == BLACK {
                break;
            }
            let grand = ObjectId::from_raw(self.get(rt, parent, PARENT)?);
            debug_assert!(!grand.is_null(), "red parent implies grandparent");
            let g_left = ObjectId::from_raw(self.get(rt, grand, LEFT)?);
            if parent == g_left {
                let uncle = ObjectId::from_raw(self.get(rt, grand, RIGHT)?);
                if self.color_of(rt, uncle)? == RED {
                    self.set(rt, log, parent, &[(COLOR, BLACK)])?;
                    self.set(rt, log, uncle, &[(COLOR, BLACK)])?;
                    self.set(rt, log, grand, &[(COLOR, RED)])?;
                    z = grand;
                } else {
                    if z == ObjectId::from_raw(self.get(rt, parent, RIGHT)?) {
                        z = parent;
                        self.rotate_left(rt, log, z)?;
                    }
                    let parent = ObjectId::from_raw(self.get(rt, z, PARENT)?);
                    let grand = ObjectId::from_raw(self.get(rt, parent, PARENT)?);
                    self.set(rt, log, parent, &[(COLOR, BLACK)])?;
                    self.set(rt, log, grand, &[(COLOR, RED)])?;
                    self.rotate_right(rt, log, grand)?;
                }
            } else {
                let uncle = g_left;
                if self.color_of(rt, uncle)? == RED {
                    self.set(rt, log, parent, &[(COLOR, BLACK)])?;
                    self.set(rt, log, uncle, &[(COLOR, BLACK)])?;
                    self.set(rt, log, grand, &[(COLOR, RED)])?;
                    z = grand;
                } else {
                    if z == ObjectId::from_raw(self.get(rt, parent, LEFT)?) {
                        z = parent;
                        self.rotate_right(rt, log, z)?;
                    }
                    let parent = ObjectId::from_raw(self.get(rt, z, PARENT)?);
                    let grand = ObjectId::from_raw(self.get(rt, parent, PARENT)?);
                    self.set(rt, log, parent, &[(COLOR, BLACK)])?;
                    self.set(rt, log, grand, &[(COLOR, RED)])?;
                    self.rotate_left(rt, log, grand)?;
                }
            }
        }
        let root = self.root(rt)?;
        if self.color_of(rt, root)? == RED {
            self.set(rt, log, root, &[(COLOR, BLACK)])?;
        }
        Ok(())
    }

    /// Removes `key` if present (with rebalancing); returns whether a node
    /// was removed.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn remove(
        &mut self,
        rt: &mut Runtime,
        key: u64,
        rng: &mut StdRng,
    ) -> Result<bool, PmemError> {
        let (Some(z), _) = self.descend(rt, key, rng)? else {
            return Ok(false);
        };
        let (zn, _) = self.read_node(rt, z, None)?;
        let victim_pool = z.pool().expect("live node");
        rt.tx_begin(victim_pool)?;
        let mut log = TxLogSet::new();

        // CLRS delete. y = node actually removed; x = its replacement
        // subtree (may be NULL, with x_parent tracked explicitly).
        let (y, y_orig_color, x, x_parent);
        if zn.left.is_null() {
            y = ObjectId::NULL; // z itself is removed; no successor node
            y_orig_color = zn.color;
            x = zn.right;
            x_parent = zn.parent;
            self.replace_child(rt, &mut log, zn.parent, z, zn.right)?;
        } else if zn.right.is_null() {
            y = ObjectId::NULL;
            y_orig_color = zn.color;
            x = zn.left;
            x_parent = zn.parent;
            self.replace_child(rt, &mut log, zn.parent, z, zn.left)?;
        } else {
            // y = minimum of the right subtree.
            let mut m = zn.right;
            loop {
                loop_branch(rt);
                let l = ObjectId::from_raw(self.get(rt, m, LEFT)?);
                if l.is_null() {
                    break;
                }
                m = l;
            }
            y = m;
            let (yn, _) = self.read_node(rt, y, None)?;
            y_orig_color = yn.color;
            x = yn.right;
            if yn.parent == z {
                x_parent = y;
            } else {
                x_parent = yn.parent;
                self.replace_child(rt, &mut log, yn.parent, y, yn.right)?;
                self.set(rt, &mut log, y, &[(RIGHT, zn.right.raw())])?;
                self.set(rt, &mut log, zn.right, &[(PARENT, y.raw())])?;
            }
            self.replace_child(rt, &mut log, zn.parent, z, y)?;
            self.set(rt, &mut log, y, &[(LEFT, zn.left.raw()), (COLOR, zn.color)])?;
            self.set(rt, &mut log, zn.left, &[(PARENT, y.raw())])?;
        }

        let _ = y;
        if y_orig_color == BLACK {
            self.delete_fixup(rt, &mut log, x, x_parent)?;
        }
        if rt.config().failure_safety {
            rt.tx_pfree(z)?;
        } else {
            rt.pfree(z)?;
        }
        rt.tx_end()?;
        Ok(true)
    }

    fn delete_fixup(
        &self,
        rt: &mut Runtime,
        log: &mut TxLogSet,
        mut x: ObjectId,
        mut x_parent: ObjectId,
    ) -> Result<(), PmemError> {
        loop {
            loop_branch(rt);
            let root = self.root(rt)?;
            if x == root || self.color_of(rt, x)? == RED {
                break;
            }
            debug_assert!(!x_parent.is_null(), "non-root x has a parent");
            let p_left = ObjectId::from_raw(self.get(rt, x_parent, LEFT)?);
            if x == p_left {
                let mut w = ObjectId::from_raw(self.get(rt, x_parent, RIGHT)?);
                if self.color_of(rt, w)? == RED {
                    self.set(rt, log, w, &[(COLOR, BLACK)])?;
                    self.set(rt, log, x_parent, &[(COLOR, RED)])?;
                    self.rotate_left(rt, log, x_parent)?;
                    w = ObjectId::from_raw(self.get(rt, x_parent, RIGHT)?);
                }
                let wl = ObjectId::from_raw(self.get(rt, w, LEFT)?);
                let wr = ObjectId::from_raw(self.get(rt, w, RIGHT)?);
                if self.color_of(rt, wl)? == BLACK && self.color_of(rt, wr)? == BLACK {
                    self.set(rt, log, w, &[(COLOR, RED)])?;
                    x = x_parent;
                    x_parent = ObjectId::from_raw(self.get(rt, x, PARENT)?);
                } else {
                    if self.color_of(rt, wr)? == BLACK {
                        self.set(rt, log, wl, &[(COLOR, BLACK)])?;
                        self.set(rt, log, w, &[(COLOR, RED)])?;
                        self.rotate_right(rt, log, w)?;
                        w = ObjectId::from_raw(self.get(rt, x_parent, RIGHT)?);
                    }
                    let pc = self.color_of(rt, x_parent)?;
                    self.set(rt, log, w, &[(COLOR, pc)])?;
                    self.set(rt, log, x_parent, &[(COLOR, BLACK)])?;
                    let wr = ObjectId::from_raw(self.get(rt, w, RIGHT)?);
                    if !wr.is_null() {
                        self.set(rt, log, wr, &[(COLOR, BLACK)])?;
                    }
                    self.rotate_left(rt, log, x_parent)?;
                    break;
                }
            } else {
                let mut w = ObjectId::from_raw(self.get(rt, x_parent, LEFT)?);
                if self.color_of(rt, w)? == RED {
                    self.set(rt, log, w, &[(COLOR, BLACK)])?;
                    self.set(rt, log, x_parent, &[(COLOR, RED)])?;
                    self.rotate_right(rt, log, x_parent)?;
                    w = ObjectId::from_raw(self.get(rt, x_parent, LEFT)?);
                }
                let wl = ObjectId::from_raw(self.get(rt, w, LEFT)?);
                let wr = ObjectId::from_raw(self.get(rt, w, RIGHT)?);
                if self.color_of(rt, wl)? == BLACK && self.color_of(rt, wr)? == BLACK {
                    self.set(rt, log, w, &[(COLOR, RED)])?;
                    x = x_parent;
                    x_parent = ObjectId::from_raw(self.get(rt, x, PARENT)?);
                } else {
                    if self.color_of(rt, wl)? == BLACK {
                        self.set(rt, log, wr, &[(COLOR, BLACK)])?;
                        self.set(rt, log, w, &[(COLOR, RED)])?;
                        self.rotate_left(rt, log, w)?;
                        w = ObjectId::from_raw(self.get(rt, x_parent, LEFT)?);
                    }
                    let pc = self.color_of(rt, x_parent)?;
                    self.set(rt, log, w, &[(COLOR, pc)])?;
                    self.set(rt, log, x_parent, &[(COLOR, BLACK)])?;
                    let wl = ObjectId::from_raw(self.get(rt, w, LEFT)?);
                    if !wl.is_null() {
                        self.set(rt, log, wl, &[(COLOR, BLACK)])?;
                    }
                    self.rotate_right(rt, log, x_parent)?;
                    break;
                }
            }
        }
        if !x.is_null() {
            self.set(rt, log, x, &[(COLOR, BLACK)])?;
        }
        Ok(())
    }

    /// Runs one Table 5 operation: search; remove if found, else insert.
    ///
    /// # Errors
    ///
    /// Propagates access/transaction failures.
    pub fn op(&mut self, rt: &mut Runtime, key: u64, rng: &mut StdRng) -> Result<(), PmemError> {
        if self.remove(rt, key, rng)? {
            return Ok(());
        }
        self.insert(rt, key, rng)?;
        Ok(())
    }

    /// In-order key traversal (test/diagnostic helper).
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    pub fn to_sorted_vec(&self, rt: &mut Runtime) -> Result<Vec<u64>, PmemError> {
        let mut out = Vec::new();
        let root = self.root(rt)?;
        self.walk(rt, root, &mut out)?;
        Ok(out)
    }

    fn walk(&self, rt: &mut Runtime, oid: ObjectId, out: &mut Vec<u64>) -> Result<(), PmemError> {
        if oid.is_null() {
            return Ok(());
        }
        let (n, _) = self.read_node(rt, oid, None)?;
        self.walk(rt, n.left, out)?;
        out.push(n.key);
        self.walk(rt, n.right, out)?;
        Ok(())
    }

    /// Verifies the red-black invariants, returning the black height.
    ///
    /// # Errors
    ///
    /// Propagates access failures.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated (test helper).
    pub fn check_invariants(&self, rt: &mut Runtime) -> Result<u32, PmemError> {
        let root = self.root(rt)?;
        if root.is_null() {
            return Ok(0);
        }
        assert_eq!(self.color_of(rt, root)?, BLACK, "root must be black");
        self.check_subtree(rt, root, ObjectId::NULL, None, None)
    }

    fn check_subtree(
        &self,
        rt: &mut Runtime,
        oid: ObjectId,
        expect_parent: ObjectId,
        lo: Option<u64>,
        hi: Option<u64>,
    ) -> Result<u32, PmemError> {
        if oid.is_null() {
            return Ok(1);
        }
        let (n, _) = self.read_node(rt, oid, None)?;
        assert_eq!(n.parent, expect_parent, "parent pointer consistent");
        if let Some(lo) = lo {
            assert!(n.key > lo, "BST order (lo)");
        }
        if let Some(hi) = hi {
            assert!(n.key < hi, "BST order (hi)");
        }
        if n.color == RED {
            assert_eq!(self.color_of(rt, n.left)?, BLACK, "no red-red");
            assert_eq!(self.color_of(rt, n.right)?, BLACK, "no red-red");
        }
        let bl = self.check_subtree(rt, n.left, oid, lo, Some(n.key))?;
        let br = self.check_subtree(rt, n.right, oid, Some(n.key), hi)?;
        assert_eq!(bl, br, "equal black heights");
        Ok(bl + u32::from(n.color == BLACK))
    }

    /// The pool set (for pool-count reporting).
    pub fn pools(&self) -> &PoolSet {
        &self.pools
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poat_pmem::RuntimeConfig;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn setup(pattern: Pattern) -> (Runtime, PersistentRbt, StdRng) {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let t = PersistentRbt::create(&mut rt, pattern).unwrap();
        (rt, t, StdRng::seed_from_u64(5))
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let (mut rt, mut t, mut rng) = setup(Pattern::All);
        for k in 0..64 {
            assert!(t.insert(&mut rt, k, &mut rng).unwrap());
            t.check_invariants(&mut rt).unwrap();
        }
        assert_eq!(
            t.to_sorted_vec(&mut rt).unwrap(),
            (0..64).collect::<Vec<_>>()
        );
        // A balanced 64-node RB tree has black height ≥ 3 (vs a 64-deep list).
        assert!(t.check_invariants(&mut rt).unwrap() >= 3);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (mut rt, mut t, mut rng) = setup(Pattern::All);
        assert!(t.insert(&mut rt, 7, &mut rng).unwrap());
        assert!(!t.insert(&mut rt, 7, &mut rng).unwrap());
    }

    #[test]
    fn removals_preserve_invariants() {
        let (mut rt, mut t, mut rng) = setup(Pattern::All);
        for k in 0..48 {
            t.insert(&mut rt, k * 3, &mut rng).unwrap();
        }
        for k in [0, 45, 21, 141, 72, 3, 69] {
            assert!(t.remove(&mut rt, k, &mut rng).unwrap(), "{k}");
            t.check_invariants(&mut rt).unwrap();
        }
        assert!(!t.remove(&mut rt, 1, &mut rng).unwrap());
    }

    #[test]
    fn matches_btreeset_reference_with_invariants() {
        for pattern in [Pattern::All, Pattern::Random] {
            let (mut rt, mut t, mut rng) = setup(pattern);
            let mut reference = BTreeSet::new();
            for i in 0..500 {
                let k = rng.gen_range(0..150u64);
                if reference.contains(&k) {
                    reference.remove(&k);
                    assert!(t.remove(&mut rt, k, &mut rng).unwrap());
                } else {
                    reference.insert(k);
                    assert!(t.insert(&mut rt, k, &mut rng).unwrap());
                }
                if i % 50 == 0 {
                    t.check_invariants(&mut rt).unwrap();
                }
            }
            t.check_invariants(&mut rt).unwrap();
            let want: Vec<u64> = reference.into_iter().collect();
            assert_eq!(t.to_sorted_vec(&mut rt).unwrap(), want, "{pattern}");
        }
    }

    #[test]
    fn each_pattern_and_crash_recovery() {
        let (mut rt, mut t, mut rng) = setup(Pattern::Each);
        for k in [9, 2, 14, 6, 1] {
            t.insert(&mut rt, k, &mut rng).unwrap();
        }
        assert_eq!(t.pools().pool_count(), 5);
        let mut rt2 = rt.crash_and_recover(13).unwrap();
        assert_eq!(t.to_sorted_vec(&mut rt2).unwrap(), vec![1, 2, 6, 9, 14]);
        t.check_invariants(&mut rt2).unwrap();
    }
}
